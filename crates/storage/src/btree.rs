//! B+-trees over byte-string keys, with range cursors, bulk loading and
//! overflow pages for large values.
//!
//! The XASR layer builds its clustered index (on `in`) and its secondary
//! indexes (on `(label, in)` and `(parent_in, in)`) from this structure;
//! milestone-4 physical operators (index-based selection, index
//! nested-loops join) are range scans over it.
//!
//! ## Design notes
//!
//! * Pages use the slotted layout of [`crate::node`] (format v2): a
//!   cell-offset directory lets the read path binary-search keys *in
//!   place* against the pinned frame bytes. `get`, `contains` and cursor
//!   descent run on [`crate::node::NodeView`]s and allocate only for rows
//!   actually returned; the write path still materializes whole nodes
//!   (parse → mutate → serialize), which keeps the free-space check
//!   trivial ("does the serialized node fit").
//! * Cursors copy the in-range cells of one leaf out per page acquire
//!   rather than pinning frames across `next()` calls — engine iterators
//!   nest as deep as the document, and pins held that long could exhaust
//!   the small pools the efficiency tests run under.
//! * Keys must compare lexicographically ([`crate::codec`] provides
//!   order-preserving encodings). Keys are unique; inserting an existing
//!   key replaces its value.
//! * Values up to an eighth of a page are stored inline; larger values go
//!   to a chain of overflow pages (XASR `value` columns hold whole text
//!   nodes, which in TREEBANK-like data can be long).
//! * Deletion removes leaf entries without rebalancing — updates in the
//!   course project were deliberately "as simple as possible". Pages are
//!   never reclaimed (no free list); dropped overflow chains leak until the
//!   file is rebuilt, which the bulk loader makes cheap.
//!
//! ```
//! use xmldb_storage::{BTree, Env};
//! let env = Env::memory();
//! let mut tree = BTree::create(&env, "idx").unwrap();
//! tree.insert(b"journal", b"value").unwrap();
//! assert_eq!(tree.get(b"journal").unwrap(), Some(b"value".to_vec()));
//! ```

use crate::env::{Env, FileId};
use crate::error::StorageError;
use crate::node::{
    internal_cell_size, leaf_cell_size, node_size, parse_node, serialize_node, LeafVal, Node,
    NodeBody, NodeView, ValueRef, NODE_HEADER, NO_SIBLING,
};
use crate::page::PageId;
use crate::temp::TempFile;
use crate::Result;
use std::ops::Bound;

const MAGIC: &[u8; 4] = b"SABT";
const META_ROOT: usize = 4;
const META_COUNT: usize = 12;
const META_HEIGHT: usize = 20;

/// A B+-tree. See module docs.
pub struct BTree {
    env: Env,
    file: FileId,
    _temp: Option<TempFile>,
    root: PageId,
    height: u32,
    count: u64,
}

enum InsertOutcome {
    Fit {
        replaced: bool,
    },
    Split {
        sep: Vec<u8>,
        right: u64,
        replaced: bool,
    },
}

/// One zero-copy descent step, computed entirely inside the page closure.
enum Step<T> {
    Descend(u64),
    Leaf(T),
}

impl BTree {
    // --- lifecycle ------------------------------------------------------------

    /// Creates an empty tree in a fresh file named `name`.
    pub fn create(env: &Env, name: &str) -> Result<BTree> {
        let file = env.create_file(name)?;
        Self::create_in(env, file)
    }

    /// Creates an empty tree in a self-deleting scratch file.
    pub fn temp(env: &Env) -> Result<BTree> {
        let tmp = TempFile::new(env)?;
        let file = tmp.id();
        let mut tree = Self::create_in(env, file)?;
        tree._temp = Some(tmp);
        Ok(tree)
    }

    /// Creates an empty tree in an existing, empty file.
    pub fn create_in(env: &Env, file: FileId) -> Result<BTree> {
        let meta = env.allocate_page(file)?;
        debug_assert_eq!(meta, PageId(0));
        let root = env.allocate_page(file)?;
        let tree = BTree {
            env: env.clone(),
            file,
            _temp: None,
            root,
            height: 1,
            count: 0,
        };
        tree.write_node(
            root,
            &Node {
                extra: NO_SIBLING,
                body: NodeBody::Leaf(Vec::new()),
            },
        )?;
        tree.write_meta()?;
        Ok(tree)
    }

    /// Opens an existing tree by file name.
    pub fn open(env: &Env, name: &str) -> Result<BTree> {
        let file = env.open_file(name)?;
        Self::open_in(env, file, name)
    }

    fn open_in(env: &Env, file: FileId, name: &str) -> Result<BTree> {
        let (root, count, height) = env.with_page(file, PageId(0), |data| {
            if &data[..4] != MAGIC {
                return Err(StorageError::corrupt(format!("{name}: bad btree magic")));
            }
            Ok((
                u64::from_le_bytes(data[META_ROOT..META_ROOT + 8].try_into().unwrap()),
                u64::from_le_bytes(data[META_COUNT..META_COUNT + 8].try_into().unwrap()),
                u32::from_le_bytes(data[META_HEIGHT..META_HEIGHT + 4].try_into().unwrap()),
            ))
        })??;
        Ok(BTree {
            env: env.clone(),
            file,
            _temp: None,
            root: PageId(root),
            height,
            count,
        })
    }

    /// The underlying file id.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Tree height (1 = root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Largest permitted key for this page size. An eighth of a page still
    /// guarantees at least three cells per node in the worst case (max key
    /// + max inline value), so splits always have a valid separator.
    pub fn max_key(&self) -> usize {
        self.env.page_size() / 8
    }

    fn inline_threshold(&self) -> usize {
        self.env.page_size() / 8
    }

    fn write_meta(&self) -> Result<()> {
        self.env.with_page_mut(self.file, PageId(0), |data| {
            data[..4].copy_from_slice(MAGIC);
            data[META_ROOT..META_ROOT + 8].copy_from_slice(&self.root.0.to_le_bytes());
            data[META_COUNT..META_COUNT + 8].copy_from_slice(&self.count.to_le_bytes());
            data[META_HEIGHT..META_HEIGHT + 4].copy_from_slice(&self.height.to_le_bytes());
        })
    }

    // --- node (de)serialization -------------------------------------------------

    /// Materializes a node (write path only — readers use [`NodeView`]s).
    fn read_node(&self, page: PageId) -> Result<Node> {
        self.env.with_page(self.file, page, parse_node)?
    }

    fn write_node(&self, page: PageId, node: &Node) -> Result<()> {
        self.env
            .with_page_mut(self.file, page, |data| serialize_node(node, data))?
    }

    /// Runs one descent step against the pinned page bytes: internal nodes
    /// resolve the child pointer in place, leaves are handed to `at_leaf`.
    fn view_step<T>(
        &self,
        page: PageId,
        key: &[u8],
        at_leaf: impl FnOnce(&crate::node::LeafView<'_>) -> T,
    ) -> Result<Step<T>> {
        let stats = self.env.counters();
        self.env.with_page(self.file, page, |data| {
            stats.note_node_view();
            stats.note_in_place_search();
            match NodeView::parse(data)? {
                NodeView::Internal(view) => Ok(Step::Descend(view.child_for(key))),
                NodeView::Leaf(view) => Ok(Step::Leaf(at_leaf(&view))),
            }
        })?
    }

    // --- point operations --------------------------------------------------------

    /// Looks up `key`, returning its value. The descent binary-searches
    /// each page in place; only the returned value is materialized.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut page = self.root;
        loop {
            let step = self.view_step(page, key, |leaf| {
                leaf.search(key).ok().map(|i| leaf.value(i).to_leaf_val())
            })?;
            match step {
                Step::Descend(child) => page = PageId(child),
                Step::Leaf(Some(val)) => return Ok(Some(self.load_value(val)?)),
                Step::Leaf(None) => return Ok(None),
            }
        }
    }

    /// True if `key` is present. Fully zero-copy: no cell is materialized.
    pub fn contains(&self, key: &[u8]) -> Result<bool> {
        let mut page = self.root;
        loop {
            match self.view_step(page, key, |leaf| leaf.search(key).is_ok())? {
                Step::Descend(child) => page = PageId(child),
                Step::Leaf(found) => return Ok(found),
            }
        }
    }

    /// Inserts `key → value`, replacing any existing value. Returns `true`
    /// if the key was new.
    pub fn insert(&mut self, key: &[u8], value: &[u8]) -> Result<bool> {
        if key.len() > self.max_key() {
            return Err(StorageError::KeyTooLarge {
                len: key.len(),
                max: self.max_key(),
            });
        }
        let val = self.store_value(value)?;
        match self.insert_rec(self.root, key, val)? {
            InsertOutcome::Fit { replaced } => {
                if !replaced {
                    self.count += 1;
                }
                self.write_meta()?;
                Ok(!replaced)
            }
            InsertOutcome::Split {
                sep,
                right,
                replaced,
            } => {
                let new_root = PageId(self.env.allocate_page(self.file)?.0);
                self.write_node(
                    new_root,
                    &Node {
                        extra: self.root.0,
                        body: NodeBody::Internal(vec![(sep, right)]),
                    },
                )?;
                self.root = new_root;
                self.height += 1;
                if !replaced {
                    self.count += 1;
                }
                self.write_meta()?;
                Ok(!replaced)
            }
        }
    }

    fn insert_rec(&mut self, page: PageId, key: &[u8], val: LeafVal) -> Result<InsertOutcome> {
        let mut node = self.read_node(page)?;
        match &mut node.body {
            NodeBody::Leaf(cells) => {
                let replaced = match cells.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(idx) => {
                        cells[idx].1 = val;
                        true
                    }
                    Err(idx) => {
                        cells.insert(idx, (key.to_vec(), val));
                        false
                    }
                };
                if node_size(&node) <= self.env.page_size() {
                    self.write_node(page, &node)?;
                    return Ok(InsertOutcome::Fit { replaced });
                }
                // Split the leaf.
                self.env.counters().note_split();
                let NodeBody::Leaf(cells) = node.body else {
                    unreachable!()
                };
                let split = split_point_leaf(&cells);
                let right_cells = cells[split..].to_vec();
                let left_cells = cells[..split].to_vec();
                let sep = right_cells[0].0.clone();
                let right_page = self.env.allocate_page(self.file)?;
                self.write_node(
                    right_page,
                    &Node {
                        extra: node.extra,
                        body: NodeBody::Leaf(right_cells),
                    },
                )?;
                self.write_node(
                    page,
                    &Node {
                        extra: right_page.0,
                        body: NodeBody::Leaf(left_cells),
                    },
                )?;
                Ok(InsertOutcome::Split {
                    sep,
                    right: right_page.0,
                    replaced,
                })
            }
            NodeBody::Internal(cells) => {
                let child = PageId(child_for(cells, node.extra, key));
                match self.insert_rec(child, key, val)? {
                    InsertOutcome::Fit { replaced } => Ok(InsertOutcome::Fit { replaced }),
                    InsertOutcome::Split {
                        sep,
                        right,
                        replaced,
                    } => {
                        let idx = match cells.binary_search_by(|(k, _)| k.as_slice().cmp(&sep)) {
                            Ok(i) => i + 1,
                            Err(i) => i,
                        };
                        cells.insert(idx, (sep, right));
                        if node_size(&node) <= self.env.page_size() {
                            self.write_node(page, &node)?;
                            return Ok(InsertOutcome::Fit { replaced });
                        }
                        // Split the internal node: the middle key moves up.
                        self.env.counters().note_split();
                        let NodeBody::Internal(cells) = node.body else {
                            unreachable!()
                        };
                        let mid = cells.len() / 2;
                        let sep_up = cells[mid].0.clone();
                        let right_extra = cells[mid].1;
                        let right_cells = cells[mid + 1..].to_vec();
                        let left_cells = cells[..mid].to_vec();
                        let right_page = self.env.allocate_page(self.file)?;
                        self.write_node(
                            right_page,
                            &Node {
                                extra: right_extra,
                                body: NodeBody::Internal(right_cells),
                            },
                        )?;
                        self.write_node(
                            page,
                            &Node {
                                extra: node.extra,
                                body: NodeBody::Internal(left_cells),
                            },
                        )?;
                        Ok(InsertOutcome::Split {
                            sep: sep_up,
                            right: right_page.0,
                            replaced,
                        })
                    }
                }
            }
        }
    }

    /// Removes `key`; returns `true` if it was present. Leaves are never
    /// rebalanced (see module docs). The descent is zero-copy; only the
    /// target leaf is materialized for rewriting.
    pub fn delete(&mut self, key: &[u8]) -> Result<bool> {
        let leaf = self.leaf_for(key)?;
        let mut node = self.read_node(leaf)?;
        let NodeBody::Leaf(cells) = &mut node.body else {
            return Err(StorageError::corrupt("leaf_for returned internal node"));
        };
        match cells.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
            Ok(idx) => {
                cells.remove(idx);
                self.write_node(leaf, &node)?;
                self.count -= 1;
                self.write_meta()?;
                Ok(true)
            }
            Err(_) => Ok(false),
        }
    }

    // --- values -------------------------------------------------------------------

    fn store_value(&self, value: &[u8]) -> Result<LeafVal> {
        if value.len() <= self.inline_threshold() {
            return Ok(LeafVal::Inline(value.to_vec()));
        }
        // Write the overflow chain back-to-front so each page can point to
        // the next.
        let page_size = self.env.page_size();
        let chunk_size = page_size - 12;
        let mut next = NO_SIBLING;
        let chunks: Vec<&[u8]> = value.chunks(chunk_size).collect();
        for chunk in chunks.iter().rev() {
            let page = self.env.allocate_page(self.file)?;
            self.env.with_page_mut(self.file, page, |data| {
                data[..8].copy_from_slice(&next.to_le_bytes());
                data[8..12].copy_from_slice(&(chunk.len() as u32).to_le_bytes());
                data[12..12 + chunk.len()].copy_from_slice(chunk);
            })?;
            next = page.0;
        }
        Ok(LeafVal::Overflow {
            page: next,
            len: value.len() as u32,
        })
    }

    fn load_value(&self, val: LeafVal) -> Result<Vec<u8>> {
        match val {
            LeafVal::Inline(bytes) => Ok(bytes),
            LeafVal::Overflow { page, len } => {
                let mut out = Vec::with_capacity(len as usize);
                let mut next = page;
                while next != NO_SIBLING {
                    next = self.env.with_page(self.file, PageId(next), |data| {
                        let n = u64::from_le_bytes(data[..8].try_into().unwrap());
                        let chunk_len =
                            u32::from_le_bytes(data[8..12].try_into().unwrap()) as usize;
                        out.extend_from_slice(&data[12..12 + chunk_len]);
                        n
                    })?;
                }
                if out.len() != len as usize {
                    return Err(StorageError::corrupt("overflow chain length mismatch"));
                }
                Ok(out)
            }
        }
    }

    // --- range scans -----------------------------------------------------------------

    /// Range cursor over `[lower, upper]` bounds, in key order.
    pub fn range(&self, lower: Bound<&[u8]>, upper: Bound<&[u8]>) -> Cursor<'_> {
        Cursor {
            tree: self,
            state: CursorState::Unseeked {
                lower: clone_bound(lower),
            },
            upper: clone_bound(upper),
        }
    }

    /// Cursor over every entry.
    pub fn iter(&self) -> Cursor<'_> {
        self.range(Bound::Unbounded, Bound::Unbounded)
    }

    /// Cursor over every key with prefix `prefix` (works because keys are
    /// compared lexicographically).
    pub fn prefix(&self, prefix: &[u8]) -> Cursor<'_> {
        let upper = match prefix_successor(prefix) {
            Some(succ) => Bound::Excluded(succ),
            // Prefix was all 0xFF: everything ≥ prefix matches.
            None => Bound::Unbounded,
        };
        Cursor {
            tree: self,
            state: CursorState::Unseeked {
                lower: Bound::Included(prefix.to_vec()),
            },
            upper,
        }
    }

    /// Visits every `(key, value)` pair with keys in `[lower, upper]`, in
    /// ascending order, without materializing rows: `visit` receives
    /// slices borrowed straight from the pinned page (only overflow
    /// values are assembled into a scratch buffer first). Scanning stops
    /// early when `visit` returns `false`.
    ///
    /// This is the fast path the slotted layout exists for — a full scan
    /// allocates nothing per row. `visit` runs while the leaf's frame is
    /// pinned under a read latch, so it must not write to this
    /// environment; nested *reads* (even on this tree) are fine.
    pub fn scan_range(
        &self,
        lower: Bound<&[u8]>,
        upper: Bound<&[u8]>,
        mut visit: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<()> {
        let mut leaf = match lower {
            Bound::Unbounded => self.leftmost_leaf()?,
            Bound::Included(k) | Bound::Excluded(k) => self.leaf_for(k)?,
        };
        let stats = self.env.counters();
        let mut first = true;
        loop {
            let next = self
                .env
                .with_page(self.file, leaf, |data| -> Result<u64> {
                    stats.note_node_view();
                    let NodeView::Leaf(view) = NodeView::parse(data)? else {
                        return Err(StorageError::corrupt("expected leaf page in scan"));
                    };
                    let start = if first {
                        match lower {
                            Bound::Unbounded => 0,
                            Bound::Included(k) => {
                                stats.note_in_place_search();
                                view.search(k).unwrap_or_else(|i| i)
                            }
                            Bound::Excluded(k) => {
                                stats.note_in_place_search();
                                match view.search(k) {
                                    Ok(i) => i + 1,
                                    Err(i) => i,
                                }
                            }
                        }
                    } else {
                        0
                    };
                    for i in start..view.nkeys() {
                        let (key, val) = view.cell(i);
                        let in_range = match upper {
                            Bound::Unbounded => true,
                            Bound::Included(u) => key <= u,
                            Bound::Excluded(u) => key < u,
                        };
                        if !in_range {
                            return Ok(NO_SIBLING);
                        }
                        let keep = match val {
                            ValueRef::Inline(v) => visit(key, v),
                            ValueRef::Overflow { page, len } => {
                                let owned = self.load_value(LeafVal::Overflow { page, len })?;
                                visit(key, &owned)
                            }
                        };
                        if !keep {
                            return Ok(NO_SIBLING);
                        }
                    }
                    Ok(view.next_leaf())
                })??;
            if next == NO_SIBLING {
                return Ok(());
            }
            first = false;
            leaf = PageId(next);
        }
    }

    /// Visits every entry in key order without materializing rows; see
    /// [`BTree::scan_range`].
    pub fn scan(&self, visit: impl FnMut(&[u8], &[u8]) -> bool) -> Result<()> {
        self.scan_range(Bound::Unbounded, Bound::Unbounded, visit)
    }

    /// Visits every entry whose key starts with `prefix`, zero-copy; see
    /// [`BTree::scan_range`].
    pub fn scan_prefix(
        &self,
        prefix: &[u8],
        visit: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<()> {
        match prefix_successor(prefix) {
            Some(succ) => self.scan_range(Bound::Included(prefix), Bound::Excluded(&succ), visit),
            None => self.scan_range(Bound::Included(prefix), Bound::Unbounded, visit),
        }
    }

    /// Leaf page that would hold `key`, found by zero-copy descent.
    fn leaf_for(&self, key: &[u8]) -> Result<PageId> {
        let mut page = self.root;
        loop {
            match self.view_step(page, key, |_| ())? {
                Step::Descend(child) => page = PageId(child),
                Step::Leaf(()) => return Ok(page),
            }
        }
    }

    fn leftmost_leaf(&self) -> Result<PageId> {
        let mut page = self.root;
        loop {
            let stats = self.env.counters();
            let step = self
                .env
                .with_page(self.file, page, |data| -> Result<Step<()>> {
                    stats.note_node_view();
                    match NodeView::parse(data)? {
                        NodeView::Internal(view) => Ok(Step::Descend(view.leftmost())),
                        NodeView::Leaf(_) => Ok(Step::Leaf(())),
                    }
                })??;
            match step {
                Step::Descend(child) => page = PageId(child),
                Step::Leaf(()) => return Ok(page),
            }
        }
    }

    // --- bulk loading -------------------------------------------------------------------

    /// Builds a tree from an iterator of strictly-ascending `(key, value)`
    /// pairs, replacing the current (empty) contents. Pages are filled to
    /// ~90% so subsequent trickle inserts don't immediately split.
    ///
    /// # Errors
    /// `Corrupt` if keys are not strictly ascending; the tree must be empty.
    pub fn bulk_load<I>(&mut self, entries: I) -> Result<()>
    where
        I: IntoIterator<Item = (Vec<u8>, Vec<u8>)>,
    {
        if !self.is_empty() {
            return Err(StorageError::corrupt("bulk_load requires an empty tree"));
        }
        let fill_limit = self.env.page_size() * 9 / 10;
        let mut leaf_index: Vec<(Vec<u8>, u64)> = Vec::new();
        let mut cells: Vec<(Vec<u8>, LeafVal)> = Vec::new();
        let mut size = NODE_HEADER;
        // The ascending-order check reuses one buffer instead of cloning
        // every key.
        let mut prev_key: Vec<u8> = Vec::new();
        let mut have_prev = false;
        let mut count = 0u64;
        let mut pending_leaf: Option<(PageId, Node)> = None;

        for (key, value) in entries {
            if key.len() > self.max_key() {
                return Err(StorageError::KeyTooLarge {
                    len: key.len(),
                    max: self.max_key(),
                });
            }
            if have_prev && prev_key.as_slice() >= key.as_slice() {
                return Err(StorageError::corrupt("bulk_load keys must strictly ascend"));
            }
            prev_key.clear();
            prev_key.extend_from_slice(&key);
            have_prev = true;
            let val = self.store_value(&value)?;
            let cell = leaf_cell_size(&key, &val);
            if size + cell > fill_limit && !cells.is_empty() {
                let page = self.env.allocate_page(self.file)?;
                let node = Node {
                    extra: NO_SIBLING,
                    body: NodeBody::Leaf(std::mem::take(&mut cells)),
                };
                if let Some((prev_page, mut prev_node)) = pending_leaf.take() {
                    prev_node.extra = page.0;
                    self.write_node(prev_page, &prev_node)?;
                }
                let first = match &node.body {
                    NodeBody::Leaf(c) => c[0].0.clone(),
                    _ => unreachable!(),
                };
                leaf_index.push((first, page.0));
                pending_leaf = Some((page, node));
                size = NODE_HEADER;
            }
            size += cell;
            cells.push((key, val));
            count += 1;
        }
        // Flush the final leaf.
        let page = self.env.allocate_page(self.file)?;
        let node = Node {
            extra: NO_SIBLING,
            body: NodeBody::Leaf(cells),
        };
        if let Some((prev_page, mut prev_node)) = pending_leaf.take() {
            prev_node.extra = page.0;
            self.write_node(prev_page, &prev_node)?;
        }
        let first = match &node.body {
            NodeBody::Leaf(c) if !c.is_empty() => c[0].0.clone(),
            _ => Vec::new(),
        };
        self.write_node(page, &node)?;
        leaf_index.push((first, page.0));

        // Build internal levels bottom-up.
        let mut level = leaf_index;
        let mut height = 1u32;
        while level.len() > 1 {
            height += 1;
            let mut next_level: Vec<(Vec<u8>, u64)> = Vec::new();
            let mut iter = level.into_iter();
            let mut group_first: Option<Vec<u8>> = None;
            let mut extra: Option<u64> = None;
            let mut node_cells: Vec<(Vec<u8>, u64)> = Vec::new();
            let mut node_bytes = NODE_HEADER;
            for (key, child) in &mut iter {
                match extra {
                    None => {
                        group_first = Some(key);
                        extra = Some(child);
                    }
                    Some(_) => {
                        let cell = internal_cell_size(&key);
                        if node_bytes + cell > fill_limit && !node_cells.is_empty() {
                            let page = self.env.allocate_page(self.file)?;
                            self.write_node(
                                page,
                                &Node {
                                    extra: extra.take().expect("group has leftmost child"),
                                    body: NodeBody::Internal(std::mem::take(&mut node_cells)),
                                },
                            )?;
                            next_level
                                .push((group_first.take().expect("group has first key"), page.0));
                            // Start the next group with this entry as its
                            // leftmost child.
                            group_first = Some(key);
                            extra = Some(child);
                            node_bytes = NODE_HEADER;
                            continue;
                        }
                        node_bytes += cell;
                        node_cells.push((key, child));
                    }
                }
            }
            let page = self.env.allocate_page(self.file)?;
            self.write_node(
                page,
                &Node {
                    extra: extra.expect("at least one child"),
                    body: NodeBody::Internal(node_cells),
                },
            )?;
            next_level.push((group_first.expect("at least one key"), page.0));
            level = next_level;
        }
        self.root = PageId(level[0].1);
        self.height = height;
        self.count = count;
        self.write_meta()?;
        Ok(())
    }

    /// First key in the tree (document-order start for XASR scans).
    pub fn first_key(&self) -> Result<Option<Vec<u8>>> {
        match self.iter().next() {
            Some(Ok((k, _))) => Ok(Some(k)),
            Some(Err(e)) => Err(e),
            None => Ok(None),
        }
    }
}

// --- helpers -------------------------------------------------------------------

/// Child page for `key` within an owned internal node (write path).
fn child_for(cells: &[(Vec<u8>, u64)], extra: u64, key: &[u8]) -> u64 {
    // Rightmost cell with key_i ≤ key, else leftmost child.
    match cells.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
        Ok(idx) => cells[idx].1,
        Err(0) => extra,
        Err(idx) => cells[idx - 1].1,
    }
}

/// Smallest byte string greater than every key starting with `prefix`,
/// or `None` when no such bound exists (the prefix is empty or all 0xFF).
fn prefix_successor(prefix: &[u8]) -> Option<Vec<u8>> {
    let last = prefix.iter().rposition(|&b| b != 0xFF)?;
    let mut succ = prefix[..=last].to_vec();
    succ[last] += 1;
    Some(succ)
}

/// Split index for an oversized leaf: the first index where the left half's
/// serialized size reaches half the total, clamped to keep both sides
/// non-empty.
fn split_point_leaf(cells: &[(Vec<u8>, LeafVal)]) -> usize {
    let total: usize = cells.iter().map(|(k, v)| leaf_cell_size(k, v)).sum();
    let mut acc = 0usize;
    for (i, (k, v)) in cells.iter().enumerate() {
        acc += leaf_cell_size(k, v);
        if acc >= total / 2 {
            return (i + 1).clamp(1, cells.len() - 1);
        }
    }
    cells.len() / 2
}

fn clone_bound(b: Bound<&[u8]>) -> Bound<Vec<u8>> {
    match b {
        Bound::Included(k) => Bound::Included(k.to_vec()),
        Bound::Excluded(k) => Bound::Excluded(k.to_vec()),
        Bound::Unbounded => Bound::Unbounded,
    }
}

// --- cursor --------------------------------------------------------------------

/// Copies the in-range cells of one leaf out under a single page acquire.
///
/// Returns the copied rows and the next leaf to visit ([`NO_SIBLING`] when
/// the scan is finished — either the leaf chain ended or a key crossed
/// `upper`, in which case no later leaf can be in range). The start
/// position comes from an in-place binary search when `lower` is given
/// (initial seek) and is 0 otherwise (sibling steps).
/// Rows copied out of one leaf plus the next leaf page to visit.
type LeafBatch = (Vec<(Vec<u8>, LeafVal)>, u64);

fn load_leaf(
    tree: &BTree,
    upper: &Bound<Vec<u8>>,
    page: PageId,
    lower: Option<&Bound<Vec<u8>>>,
) -> Result<LeafBatch> {
    let stats = tree.env.counters();
    tree.env.with_page(tree.file, page, |data| {
        stats.note_node_view();
        let NodeView::Leaf(view) = NodeView::parse(data)? else {
            return Err(StorageError::corrupt("expected leaf page in cursor"));
        };
        let start = match lower {
            None | Some(Bound::Unbounded) => 0,
            Some(Bound::Included(k)) => {
                stats.note_in_place_search();
                view.search(k).unwrap_or_else(|i| i)
            }
            Some(Bound::Excluded(k)) => {
                stats.note_in_place_search();
                match view.search(k) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                }
            }
        };
        let mut rows = Vec::with_capacity(view.nkeys().saturating_sub(start));
        let mut next = view.next_leaf();
        for i in start..view.nkeys() {
            let (key, val) = view.cell(i);
            let in_range = match upper {
                Bound::Unbounded => true,
                Bound::Included(u) => key <= u.as_slice(),
                Bound::Excluded(u) => key < u.as_slice(),
            };
            if !in_range {
                next = NO_SIBLING;
                break;
            }
            rows.push((key.to_vec(), val.to_leaf_val()));
        }
        Ok((rows, next))
    })?
}

enum CursorState {
    Unseeked {
        lower: Bound<Vec<u8>>,
    },
    /// Draining the in-range rows copied out of one leaf.
    At {
        rows: std::vec::IntoIter<(Vec<u8>, LeafVal)>,
        next_leaf: u64,
    },
    Done,
}

/// Forward range iterator over a [`BTree`]. Yields `(key, value)` pairs in
/// ascending key order.
pub struct Cursor<'a> {
    tree: &'a BTree,
    state: CursorState,
    upper: Bound<Vec<u8>>,
}

impl<'a> Cursor<'a> {
    fn seek(&mut self, lower: Bound<Vec<u8>>) -> Result<()> {
        let leaf = match &lower {
            Bound::Unbounded => self.tree.leftmost_leaf()?,
            Bound::Included(k) | Bound::Excluded(k) => self.tree.leaf_for(k)?,
        };
        let (rows, next_leaf) = load_leaf(self.tree, &self.upper, leaf, Some(&lower))?;
        self.state = CursorState::At {
            rows: rows.into_iter(),
            next_leaf,
        };
        Ok(())
    }

    fn advance(&mut self) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        if matches!(self.state, CursorState::Unseeked { .. }) {
            let CursorState::Unseeked { lower } =
                std::mem::replace(&mut self.state, CursorState::Done)
            else {
                unreachable!("matched Unseeked above")
            };
            self.seek(lower)?;
        }
        loop {
            let next_page = match &mut self.state {
                CursorState::Done | CursorState::Unseeked { .. } => return Ok(None),
                CursorState::At { rows, next_leaf } => {
                    if let Some((key, val)) = rows.next() {
                        let value = self.tree.load_value(val)?;
                        return Ok(Some((key, value)));
                    }
                    if *next_leaf == NO_SIBLING {
                        self.state = CursorState::Done;
                        return Ok(None);
                    }
                    PageId(*next_leaf)
                }
            };
            let (rows, next_leaf) = load_leaf(self.tree, &self.upper, next_page, None)?;
            self.state = CursorState::At {
                rows: rows.into_iter(),
                next_leaf,
            };
        }
    }
}

impl<'a> Iterator for Cursor<'a> {
    type Item = Result<(Vec<u8>, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.advance() {
            Ok(Some(pair)) => Some(Ok(pair)),
            Ok(None) => None,
            Err(e) => {
                self.state = CursorState::Done;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EnvConfig;

    fn key(i: u64) -> Vec<u8> {
        let mut k = Vec::new();
        crate::codec::put_u64(&mut k, i);
        k
    }

    #[test]
    fn insert_get_small() {
        let env = Env::memory();
        let mut t = BTree::create(&env, "t").unwrap();
        assert!(t.insert(b"b", b"2").unwrap());
        assert!(t.insert(b"a", b"1").unwrap());
        assert!(t.insert(b"c", b"3").unwrap());
        assert_eq!(t.get(b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(t.get(b"b").unwrap(), Some(b"2".to_vec()));
        assert_eq!(t.get(b"c").unwrap(), Some(b"3".to_vec()));
        assert_eq!(t.get(b"d").unwrap(), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn replace_value() {
        let env = Env::memory();
        let mut t = BTree::create(&env, "t").unwrap();
        assert!(t.insert(b"k", b"old").unwrap());
        assert!(!t.insert(b"k", b"new").unwrap());
        assert_eq!(t.get(b"k").unwrap(), Some(b"new".to_vec()));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn many_inserts_split_and_stay_sorted() {
        let env = Env::memory_with(EnvConfig {
            page_size: 512,
            pool_bytes: 64 * 512,
        });
        let mut t = BTree::create(&env, "t").unwrap();
        // Insert in a scrambled order.
        let n = 2000u64;
        let mut order: Vec<u64> = (0..n).collect();
        // Deterministic shuffle.
        for i in 0..order.len() {
            let j = (i * 7919 + 13) % order.len();
            order.swap(i, j);
        }
        for &i in &order {
            t.insert(&key(i), format!("v{i}").as_bytes()).unwrap();
        }
        assert_eq!(t.len(), n);
        assert!(t.height() > 1, "tree should have split");
        for i in 0..n {
            assert_eq!(t.get(&key(i)).unwrap(), Some(format!("v{i}").into_bytes()));
        }
        // Full scan is sorted and complete.
        let keys: Vec<Vec<u8>> = t.iter().map(|r| r.unwrap().0).collect();
        assert_eq!(keys.len(), n as usize);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn range_scan_bounds() {
        let env = Env::memory();
        let mut t = BTree::create(&env, "t").unwrap();
        for i in 0..100u64 {
            t.insert(&key(i), b"").unwrap();
        }
        let collect = |lo: Bound<&[u8]>, hi: Bound<&[u8]>| -> Vec<u64> {
            t.range(lo, hi)
                .map(|r| {
                    let (k, _) = r.unwrap();
                    let mut pos = 0;
                    crate::codec::get_u64(&k, &mut pos)
                })
                .collect()
        };
        let k10 = key(10);
        let k20 = key(20);
        assert_eq!(
            collect(Bound::Included(&k10), Bound::Excluded(&k20)),
            (10..20).collect::<Vec<u64>>()
        );
        assert_eq!(
            collect(Bound::Excluded(&k10), Bound::Included(&k20)),
            (11..=20).collect::<Vec<u64>>()
        );
        assert_eq!(
            collect(Bound::Unbounded, Bound::Excluded(&k10)),
            (0..10).collect::<Vec<u64>>()
        );
        assert_eq!(
            collect(Bound::Included(&key(95)), Bound::Unbounded),
            (95..100).collect::<Vec<u64>>()
        );
        assert_eq!(
            collect(Bound::Included(&key(200)), Bound::Unbounded),
            Vec::<u64>::new()
        );
    }

    #[test]
    fn seek_at_leaf_boundaries() {
        // Small pages force many leaves; exercise Included/Excluded seeks
        // landing on every cell, including each leaf's last one (where an
        // Excluded bound must step to the sibling leaf).
        let env = Env::memory_with(EnvConfig {
            page_size: 256,
            pool_bytes: 64 * 256,
        });
        let mut t = BTree::create(&env, "t").unwrap();
        let n = 300u64;
        for i in 0..n {
            t.insert(&key(i), b"v").unwrap();
        }
        assert!(t.height() > 1, "need multiple leaves");
        for i in 0..n {
            let ki = key(i);
            let first = t
                .range(Bound::Included(&ki), Bound::Unbounded)
                .next()
                .unwrap()
                .unwrap()
                .0;
            assert_eq!(first, ki, "Included seek lands on the key");
            let after = t.range(Bound::Excluded(&ki), Bound::Unbounded).next();
            if i + 1 < n {
                assert_eq!(
                    after.unwrap().unwrap().0,
                    key(i + 1),
                    "Excluded seek steps past the key (i={i})"
                );
            } else {
                assert!(after.is_none(), "Excluded seek past the last key is empty");
            }
            assert_eq!(
                t.range(Bound::Included(&ki), Bound::Included(&ki)).count(),
                1
            );
            assert_eq!(
                t.range(Bound::Included(&ki), Bound::Excluded(&ki)).count(),
                0
            );
        }
    }

    #[test]
    fn prefix_scan() {
        let env = Env::memory();
        let mut t = BTree::create(&env, "t").unwrap();
        for (k, v) in [
            ("author\x001", "a1"),
            ("author\x002", "a2"),
            ("journal\x001", "j1"),
            ("title\x001", "t1"),
        ] {
            t.insert(k.as_bytes(), v.as_bytes()).unwrap();
        }
        let hits: Vec<Vec<u8>> = t.prefix(b"author\x00").map(|r| r.unwrap().1).collect();
        assert_eq!(hits, vec![b"a1".to_vec(), b"a2".to_vec()]);
        assert_eq!(t.prefix(b"volume\x00").count(), 0);
        assert_eq!(t.prefix(b"journal\x00").count(), 1);
    }

    #[test]
    fn prefix_successor_bumps_and_saturates() {
        assert_eq!(prefix_successor(b"ab"), Some(b"ac".to_vec()));
        assert_eq!(prefix_successor(b"a\xFF"), Some(b"b".to_vec()));
        assert_eq!(prefix_successor(&[0xFF, 0xFF]), None);
        assert_eq!(prefix_successor(b""), None);
    }

    #[test]
    fn prefix_scan_all_ff_prefix() {
        let env = Env::memory();
        let mut t = BTree::create(&env, "t").unwrap();
        t.insert(&[0xFF, 0x01], b"a").unwrap();
        t.insert(&[0xFF, 0xFF], b"b").unwrap();
        t.insert(&[0xFF, 0xFF, 0x00], b"c").unwrap();
        t.insert(&[0x10], b"d").unwrap();
        let hits: Vec<Vec<u8>> = t.prefix(&[0xFF]).map(|r| r.unwrap().1).collect();
        assert_eq!(hits, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
        let hits: Vec<Vec<u8>> = t.prefix(&[0xFF, 0xFF]).map(|r| r.unwrap().1).collect();
        assert_eq!(hits, vec![b"b".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn scan_matches_cursor() {
        let env = Env::memory_with(EnvConfig {
            page_size: 256,
            pool_bytes: 64 * 256,
        });
        let mut t = BTree::create(&env, "t").unwrap();
        for i in 0..500u64 {
            t.insert(&key(i), format!("v{i}").as_bytes()).unwrap();
        }
        let mut scanned: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        t.scan(|k, v| {
            scanned.push((k.to_vec(), v.to_vec()));
            true
        })
        .unwrap();
        let cursored: Vec<(Vec<u8>, Vec<u8>)> = t.iter().map(|r| r.unwrap()).collect();
        assert_eq!(scanned, cursored);

        // Bounded scans respect both bounds and early exit.
        let mut ranged: Vec<Vec<u8>> = Vec::new();
        t.scan_range(
            Bound::Excluded(&key(10)),
            Bound::Included(&key(20)),
            |k, _| {
                ranged.push(k.to_vec());
                true
            },
        )
        .unwrap();
        assert_eq!(ranged, (11..=20).map(key).collect::<Vec<_>>());
        let mut seen = 0;
        t.scan(|_, _| {
            seen += 1;
            seen < 7
        })
        .unwrap();
        assert_eq!(seen, 7, "visitor returning false stops the scan");
    }

    #[test]
    fn scan_handles_overflow_values() {
        let env = Env::memory_with(EnvConfig {
            page_size: 512,
            pool_bytes: 64 * 512,
        });
        let mut t = BTree::create(&env, "t").unwrap();
        let big = vec![0xCDu8; 3000];
        t.insert(b"big", &big).unwrap();
        t.insert(b"tiny", b"t").unwrap();
        let mut got: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        t.scan(|k, v| {
            got.push((k.to_vec(), v.to_vec()));
            true
        })
        .unwrap();
        assert_eq!(
            got,
            vec![(b"big".to_vec(), big), (b"tiny".to_vec(), b"t".to_vec())]
        );
    }

    #[test]
    fn scan_prefix_matches_prefix_cursor() {
        let env = Env::memory();
        let mut t = BTree::create(&env, "t").unwrap();
        for (k, v) in [
            ("author\x001", "a1"),
            ("author\x002", "a2"),
            ("journal\x001", "j1"),
        ] {
            t.insert(k.as_bytes(), v.as_bytes()).unwrap();
        }
        let mut vals: Vec<Vec<u8>> = Vec::new();
        t.scan_prefix(b"author\x00", |_, v| {
            vals.push(v.to_vec());
            true
        })
        .unwrap();
        assert_eq!(vals, vec![b"a1".to_vec(), b"a2".to_vec()]);
    }

    #[test]
    fn delete_removes_entries() {
        let env = Env::memory();
        let mut t = BTree::create(&env, "t").unwrap();
        for i in 0..50u64 {
            t.insert(&key(i), b"x").unwrap();
        }
        for i in (0..50u64).step_by(2) {
            assert!(t.delete(&key(i)).unwrap());
        }
        assert!(!t.delete(&key(0)).unwrap(), "double delete");
        assert_eq!(t.len(), 25);
        for i in 0..50u64 {
            assert_eq!(t.get(&key(i)).unwrap().is_some(), i % 2 == 1);
        }
    }

    #[test]
    fn overflow_values_roundtrip() {
        let env = Env::memory_with(EnvConfig {
            page_size: 512,
            pool_bytes: 64 * 512,
        });
        let mut t = BTree::create(&env, "t").unwrap();
        let big = vec![0xABu8; 5000]; // ~10 overflow pages at 512B
        t.insert(b"big", &big).unwrap();
        t.insert(b"small", b"s").unwrap();
        assert_eq!(t.get(b"big").unwrap(), Some(big.clone()));
        // Cursor also materializes overflow values.
        let all: Vec<(Vec<u8>, Vec<u8>)> = t.iter().map(|r| r.unwrap()).collect();
        assert_eq!(all[0], (b"big".to_vec(), big));
    }

    #[test]
    fn bulk_load_matches_inserts() {
        let env = Env::memory_with(EnvConfig {
            page_size: 512,
            pool_bytes: 64 * 512,
        });
        let n = 5000u64;
        let mut bulk = BTree::create(&env, "bulk").unwrap();
        bulk.bulk_load((0..n).map(|i| (key(i), format!("v{i}").into_bytes())))
            .unwrap();
        assert_eq!(bulk.len(), n);
        for i in (0..n).step_by(97) {
            assert_eq!(
                bulk.get(&key(i)).unwrap(),
                Some(format!("v{i}").into_bytes())
            );
        }
        let keys: Vec<Vec<u8>> = bulk.iter().map(|r| r.unwrap().0).collect();
        assert_eq!(keys.len(), n as usize);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        // Bulk-loaded trees accept subsequent inserts.
        let mut bulk = bulk;
        bulk.insert(&key(n + 1), b"late").unwrap();
        assert_eq!(bulk.get(&key(n + 1)).unwrap(), Some(b"late".to_vec()));
    }

    #[test]
    fn bulk_load_rejects_unsorted() {
        let env = Env::memory();
        let mut t = BTree::create(&env, "t").unwrap();
        let err = t
            .bulk_load(vec![(key(2), vec![]), (key(1), vec![])])
            .unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)));
    }

    #[test]
    fn bulk_load_rejects_duplicates() {
        let env = Env::memory();
        let mut t = BTree::create(&env, "t").unwrap();
        let err = t
            .bulk_load(vec![(key(1), vec![]), (key(1), vec![])])
            .unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)));
    }

    #[test]
    fn bulk_load_empty_iter() {
        let env = Env::memory();
        let mut t = BTree::create(&env, "t").unwrap();
        t.bulk_load(Vec::new()).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.iter().count(), 0);
        // And still usable.
        t.insert(b"x", b"y").unwrap();
        assert_eq!(t.get(b"x").unwrap(), Some(b"y".to_vec()));
    }

    #[test]
    fn key_too_large_rejected() {
        let env = Env::memory_with(EnvConfig {
            page_size: 512,
            pool_bytes: 64 * 512,
        });
        let mut t = BTree::create(&env, "t").unwrap();
        let err = t.insert(&[0u8; 100], b"").unwrap_err();
        assert!(matches!(err, StorageError::KeyTooLarge { .. }));
    }

    #[test]
    fn v1_format_pages_rejected() {
        let env = Env::memory();
        let mut t = BTree::create(&env, "t").unwrap();
        t.insert(b"k", b"v").unwrap();
        // Rewrite the root as a v1-style page: the old format had no
        // version byte — byte 0 held the node type directly.
        env.with_page_mut(t.file_id(), PageId(1), |data| {
            data[0] = crate::node::TYPE_LEAF;
        })
        .unwrap();
        let err = t.get(b"k").unwrap_err();
        assert!(
            matches!(&err, StorageError::Corrupt(m) if m.contains("page format v1, expected v2")),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn read_path_counters_tick() {
        let env = Env::memory();
        let mut t = BTree::create(&env, "t").unwrap();
        for i in 0..100u64 {
            t.insert(&key(i), b"v").unwrap();
        }
        let before = env.io_stats();
        assert_eq!(t.get(&key(42)).unwrap(), Some(b"v".to_vec()));
        let after = env.io_stats();
        let delta = after.delta(&before);
        assert!(delta.node_views >= 1, "descent parses at least one view");
        assert!(delta.in_place_searches >= 1, "leaf search happens in place");
    }

    #[test]
    fn persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("saardb-btree-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let env = Env::open_dir(&dir, EnvConfig::default()).unwrap();
            let mut t = BTree::create(&env, "idx").unwrap();
            for i in 0..1000u64 {
                t.insert(&key(i), format!("v{i}").as_bytes()).unwrap();
            }
            env.flush().unwrap();
        }
        {
            let env = Env::open_dir(&dir, EnvConfig::default()).unwrap();
            let t = BTree::open(&env, "idx").unwrap();
            assert_eq!(t.len(), 1000);
            assert_eq!(t.get(&key(500)).unwrap(), Some(b"v500".to_vec()));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn temp_tree_self_deletes() {
        let env = Env::memory();
        let id;
        {
            let mut t = BTree::temp(&env).unwrap();
            t.insert(b"k", b"v").unwrap();
            id = t.file_id();
        }
        assert!(env.page_count(id).is_err());
    }

    #[test]
    fn first_key_and_contains() {
        let env = Env::memory();
        let mut t = BTree::create(&env, "t").unwrap();
        assert_eq!(t.first_key().unwrap(), None);
        t.insert(&key(5), b"").unwrap();
        t.insert(&key(3), b"").unwrap();
        assert_eq!(t.first_key().unwrap(), Some(key(3)));
        assert!(t.contains(&key(5)).unwrap());
        assert!(!t.contains(&key(4)).unwrap());
    }
}
