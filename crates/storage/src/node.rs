//! B+-tree node pages: the slotted layout (format v2) and zero-copy views.
//!
//! ## Page layout (format v2)
//!
//! ```text
//! offset  size       field
//! 0       1          format byte: FORMAT_V2 (0xB2)
//! 1       1          node type: TYPE_LEAF | TYPE_INTERNAL
//! 2       2          cell count (u16 LE)
//! 4       8          extra (u64 LE): leaf → right sibling, internal →
//!                    leftmost child
//! 12      2·n        slot directory: u16 LE byte offset of cell i
//! …                  cells, packed in slot order
//! ```
//!
//! Leaf cell: `flags u8 | key_len u16 | val_len u32 | key | value`, where
//! `flags & 1` marks an overflow value (`value` is then `page u64 |
//! len u32`). Internal cell: `key_len u16 | child u64 | key`.
//!
//! The slot directory is what makes the read path zero-copy: a key can be
//! binary-searched *in place* against the pinned frame bytes by chasing
//! slot offsets, so point lookups and descent steps materialize nothing.
//! [`LeafView`] / [`InternalView`] wrap a `&[u8]` page with exactly that
//! access pattern; the owned [`Node`] (parse → mutate → serialize) remains
//! for the write path, where whole-node rewrites keep the free-space check
//! trivial.
//!
//! Format v1 (the pre-slotted layout, no version byte: byte 0 held the
//! node type) is deliberately *not* readable — v1 pages are rejected with
//! a clear [`StorageError::Corrupt`] instead of a garbage decode.

use crate::error::StorageError;
use crate::Result;

/// Format byte of slotted node pages. v1 pages began with the node type
/// (1 or 2), so any v2 value must avoid that range; `0xB2` reads as
/// "saardb, layout 2".
pub(crate) const FORMAT_V2: u8 = 0xB2;
pub(crate) const TYPE_LEAF: u8 = 1;
pub(crate) const TYPE_INTERNAL: u8 = 2;
/// Fixed node-page header size (before the slot directory).
pub(crate) const NODE_HEADER: usize = 12;
/// Per-cell slot-directory entry size.
pub(crate) const SLOT_SIZE: usize = 2;
/// "No right sibling" sentinel for a leaf's `extra` field.
pub(crate) const NO_SIBLING: u64 = u64::MAX;

const OFF_TYPE: usize = 1;
const OFF_NKEYS: usize = 2;
const OFF_EXTRA: usize = 4;

/// A leaf value: small values inline, large ones in an overflow chain.
#[derive(Debug, Clone)]
pub(crate) enum LeafVal {
    Inline(Vec<u8>),
    Overflow { page: u64, len: u32 },
}

/// A borrowed leaf value, pointing into pinned frame bytes.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ValueRef<'a> {
    Inline(&'a [u8]),
    Overflow { page: u64, len: u32 },
}

impl ValueRef<'_> {
    /// Copies the referenced value out of the page (the one allocation a
    /// returned row pays).
    pub(crate) fn to_leaf_val(self) -> LeafVal {
        match self {
            ValueRef::Inline(bytes) => LeafVal::Inline(bytes.to_vec()),
            ValueRef::Overflow { page, len } => LeafVal::Overflow { page, len },
        }
    }
}

/// Owned node body (write path).
#[derive(Debug, Clone)]
pub(crate) enum NodeBody {
    /// Sorted `(key, value)` cells.
    Leaf(Vec<(Vec<u8>, LeafVal)>),
    /// Sorted `(key, child)` cells; keys ≥ `key_i` and < `key_{i+1}` live
    /// under `child_i`.
    Internal(Vec<(Vec<u8>, u64)>),
}

/// Owned node (write path).
#[derive(Debug, Clone)]
pub(crate) struct Node {
    /// Leaf: right sibling page (or [`NO_SIBLING`]); internal: leftmost
    /// child.
    pub extra: u64,
    pub body: NodeBody,
}

/// Validates the v2 header, returning `(type, nkeys, extra)`.
fn parse_header(data: &[u8]) -> Result<(u8, usize, u64)> {
    match data[0] {
        FORMAT_V2 => {}
        TYPE_LEAF | TYPE_INTERNAL => {
            // A v1 page: byte 0 held the node type directly.
            return Err(StorageError::corrupt("page format v1, expected v2"));
        }
        other => {
            return Err(StorageError::corrupt(format!(
                "unknown page format {other:#04x}, expected v2"
            )));
        }
    }
    let node_type = data[OFF_TYPE];
    if node_type != TYPE_LEAF && node_type != TYPE_INTERNAL {
        return Err(StorageError::corrupt(format!(
            "unknown btree node type {node_type}"
        )));
    }
    let nkeys = u16::from_le_bytes([data[OFF_NKEYS], data[OFF_NKEYS + 1]]) as usize;
    let extra = u64::from_le_bytes(data[OFF_EXTRA..OFF_EXTRA + 8].try_into().unwrap());
    Ok((node_type, nkeys, extra))
}

#[inline]
fn slot(data: &[u8], i: usize) -> usize {
    let off = NODE_HEADER + SLOT_SIZE * i;
    u16::from_le_bytes([data[off], data[off + 1]]) as usize
}

/// A zero-copy view of a node page: either kind, parsed from the header.
#[derive(Debug)]
pub(crate) enum NodeView<'a> {
    Leaf(LeafView<'a>),
    Internal(InternalView<'a>),
}

impl<'a> NodeView<'a> {
    /// Wraps pinned page bytes, validating the format header only — cells
    /// are decoded lazily, per slot access.
    pub(crate) fn parse(data: &'a [u8]) -> Result<NodeView<'a>> {
        let (node_type, nkeys, extra) = parse_header(data)?;
        Ok(match node_type {
            TYPE_LEAF => NodeView::Leaf(LeafView { data, nkeys, extra }),
            _ => NodeView::Internal(InternalView { data, nkeys, extra }),
        })
    }
}

/// Zero-copy view of a leaf page.
#[derive(Debug)]
pub(crate) struct LeafView<'a> {
    data: &'a [u8],
    nkeys: usize,
    extra: u64,
}

impl<'a> LeafView<'a> {
    pub(crate) fn nkeys(&self) -> usize {
        self.nkeys
    }

    /// Right sibling page, or [`NO_SIBLING`].
    pub(crate) fn next_leaf(&self) -> u64 {
        self.extra
    }

    /// Key of cell `i`, in place.
    pub(crate) fn key(&self, i: usize) -> &'a [u8] {
        let off = slot(self.data, i);
        let key_len = u16::from_le_bytes([self.data[off + 1], self.data[off + 2]]) as usize;
        &self.data[off + 7..off + 7 + key_len]
    }

    /// Key and value of cell `i`, decoding the cell header once.
    pub(crate) fn cell(&self, i: usize) -> (&'a [u8], ValueRef<'a>) {
        let off = slot(self.data, i);
        let flags = self.data[off];
        let key_len = u16::from_le_bytes([self.data[off + 1], self.data[off + 2]]) as usize;
        let val_len = u32::from_le_bytes(self.data[off + 3..off + 7].try_into().unwrap());
        let val_off = off + 7 + key_len;
        let key = &self.data[off + 7..val_off];
        let val = if flags & 1 != 0 {
            ValueRef::Overflow {
                page: u64::from_le_bytes(self.data[val_off..val_off + 8].try_into().unwrap()),
                len: u32::from_le_bytes(self.data[val_off + 8..val_off + 12].try_into().unwrap()),
            }
        } else {
            ValueRef::Inline(&self.data[val_off..val_off + val_len as usize])
        };
        (key, val)
    }

    /// Value of cell `i`, in place (inline) or as an overflow pointer.
    pub(crate) fn value(&self, i: usize) -> ValueRef<'a> {
        let off = slot(self.data, i);
        let flags = self.data[off];
        let key_len = u16::from_le_bytes([self.data[off + 1], self.data[off + 2]]) as usize;
        let val_len = u32::from_le_bytes(self.data[off + 3..off + 7].try_into().unwrap());
        let val_off = off + 7 + key_len;
        if flags & 1 != 0 {
            ValueRef::Overflow {
                page: u64::from_le_bytes(self.data[val_off..val_off + 8].try_into().unwrap()),
                len: u32::from_le_bytes(self.data[val_off + 8..val_off + 12].try_into().unwrap()),
            }
        } else {
            ValueRef::Inline(&self.data[val_off..val_off + val_len as usize])
        }
    }

    /// In-place binary search for `key` over the slot directory: `Ok(i)`
    /// when cell `i` holds it, `Err(i)` for its insertion point.
    pub(crate) fn search(&self, key: &[u8]) -> std::result::Result<usize, usize> {
        binary_search(self.nkeys, key, |i| self.key(i))
    }
}

/// Zero-copy view of an internal page.
#[derive(Debug)]
pub(crate) struct InternalView<'a> {
    data: &'a [u8],
    nkeys: usize,
    extra: u64,
}

impl<'a> InternalView<'a> {
    /// Leftmost child page.
    pub(crate) fn leftmost(&self) -> u64 {
        self.extra
    }

    /// Separator key of cell `i`, in place.
    pub(crate) fn key(&self, i: usize) -> &'a [u8] {
        let off = slot(self.data, i);
        let key_len = u16::from_le_bytes([self.data[off], self.data[off + 1]]) as usize;
        &self.data[off + 10..off + 10 + key_len]
    }

    /// Child pointer of cell `i`.
    pub(crate) fn child(&self, i: usize) -> u64 {
        let off = slot(self.data, i);
        u64::from_le_bytes(self.data[off + 2..off + 10].try_into().unwrap())
    }

    /// Child page for `key`: the rightmost cell with `key_i ≤ key`, else
    /// the leftmost child. One in-place binary search.
    pub(crate) fn child_for(&self, key: &[u8]) -> u64 {
        match binary_search(self.nkeys, key, |i| self.key(i)) {
            Ok(i) => self.child(i),
            Err(0) => self.extra,
            Err(i) => self.child(i - 1),
        }
    }
}

/// Binary search over `n` sorted keys addressed by `key_at`.
fn binary_search<'a>(
    n: usize,
    needle: &[u8],
    key_at: impl Fn(usize) -> &'a [u8],
) -> std::result::Result<usize, usize> {
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match key_at(mid).cmp(needle) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Ok(mid),
        }
    }
    Err(lo)
}

// --- owned parse / serialize (write path) ----------------------------------

/// Serialized size of a leaf cell, including its slot-directory entry.
pub(crate) fn leaf_cell_size(key: &[u8], val: &LeafVal) -> usize {
    SLOT_SIZE
        + 7
        + key.len()
        + match val {
            LeafVal::Inline(v) => v.len(),
            LeafVal::Overflow { .. } => 12,
        }
}

/// Serialized size of an internal cell, including its slot entry.
pub(crate) fn internal_cell_size(key: &[u8]) -> usize {
    SLOT_SIZE + 10 + key.len()
}

/// Serialized size of a whole node.
pub(crate) fn node_size(node: &Node) -> usize {
    NODE_HEADER
        + match &node.body {
            NodeBody::Leaf(cells) => cells
                .iter()
                .map(|(k, v)| leaf_cell_size(k, v))
                .sum::<usize>(),
            NodeBody::Internal(cells) => cells
                .iter()
                .map(|(k, _)| internal_cell_size(k))
                .sum::<usize>(),
        }
}

/// Materializes a page into an owned [`Node`] (write path: parse → mutate
/// → serialize).
pub(crate) fn parse_node(data: &[u8]) -> Result<Node> {
    match NodeView::parse(data)? {
        NodeView::Leaf(view) => {
            let cells = (0..view.nkeys())
                .map(|i| (view.key(i).to_vec(), view.value(i).to_leaf_val()))
                .collect();
            Ok(Node {
                extra: view.next_leaf(),
                body: NodeBody::Leaf(cells),
            })
        }
        NodeView::Internal(view) => {
            let cells = (0..view.nkeys)
                .map(|i| (view.key(i).to_vec(), view.child(i)))
                .collect();
            Ok(Node {
                extra: view.leftmost(),
                body: NodeBody::Internal(cells),
            })
        }
    }
}

/// Serializes `node` into a page, building the slot directory.
pub(crate) fn serialize_node(node: &Node, data: &mut [u8]) -> Result<()> {
    debug_assert!(node_size(node) <= data.len(), "node does not fit page");
    data[0] = FORMAT_V2;
    data[OFF_EXTRA..OFF_EXTRA + 8].copy_from_slice(&node.extra.to_le_bytes());
    match &node.body {
        NodeBody::Leaf(cells) => {
            data[OFF_TYPE] = TYPE_LEAF;
            data[OFF_NKEYS..OFF_NKEYS + 2].copy_from_slice(&(cells.len() as u16).to_le_bytes());
            let mut pos = NODE_HEADER + SLOT_SIZE * cells.len();
            for (i, (key, val)) in cells.iter().enumerate() {
                let so = NODE_HEADER + SLOT_SIZE * i;
                data[so..so + 2].copy_from_slice(&(pos as u16).to_le_bytes());
                let (flags, val_len) = match val {
                    LeafVal::Inline(v) => (0u8, v.len() as u32),
                    LeafVal::Overflow { len, .. } => (1u8, *len),
                };
                data[pos] = flags;
                data[pos + 1..pos + 3].copy_from_slice(&(key.len() as u16).to_le_bytes());
                data[pos + 3..pos + 7].copy_from_slice(&val_len.to_le_bytes());
                pos += 7;
                data[pos..pos + key.len()].copy_from_slice(key);
                pos += key.len();
                match val {
                    LeafVal::Inline(v) => {
                        data[pos..pos + v.len()].copy_from_slice(v);
                        pos += v.len();
                    }
                    LeafVal::Overflow { page, len } => {
                        data[pos..pos + 8].copy_from_slice(&page.to_le_bytes());
                        data[pos + 8..pos + 12].copy_from_slice(&len.to_le_bytes());
                        pos += 12;
                    }
                }
            }
        }
        NodeBody::Internal(cells) => {
            data[OFF_TYPE] = TYPE_INTERNAL;
            data[OFF_NKEYS..OFF_NKEYS + 2].copy_from_slice(&(cells.len() as u16).to_le_bytes());
            let mut pos = NODE_HEADER + SLOT_SIZE * cells.len();
            for (i, (key, child)) in cells.iter().enumerate() {
                let so = NODE_HEADER + SLOT_SIZE * i;
                data[so..so + 2].copy_from_slice(&(pos as u16).to_le_bytes());
                data[pos..pos + 2].copy_from_slice(&(key.len() as u16).to_le_bytes());
                data[pos + 2..pos + 10].copy_from_slice(&child.to_le_bytes());
                pos += 10;
                data[pos..pos + key.len()].copy_from_slice(key);
                pos += key.len();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: usize = 512;

    fn leaf_node() -> Node {
        Node {
            extra: 77,
            body: NodeBody::Leaf(vec![
                (b"alpha".to_vec(), LeafVal::Inline(b"1".to_vec())),
                (b"beta".to_vec(), LeafVal::Overflow { page: 9, len: 4000 }),
                (b"gamma".to_vec(), LeafVal::Inline(vec![])),
            ]),
        }
    }

    #[test]
    fn leaf_roundtrip_via_view() {
        let mut page = vec![0u8; PAGE];
        serialize_node(&leaf_node(), &mut page).unwrap();
        let NodeView::Leaf(view) = NodeView::parse(&page).unwrap() else {
            panic!("expected leaf view");
        };
        assert_eq!(view.nkeys(), 3);
        assert_eq!(view.next_leaf(), 77);
        assert_eq!(view.key(0), b"alpha");
        assert_eq!(view.key(2), b"gamma");
        assert!(matches!(view.value(0), ValueRef::Inline(b"1")));
        assert!(matches!(
            view.value(1),
            ValueRef::Overflow { page: 9, len: 4000 }
        ));
        assert!(matches!(view.value(2), ValueRef::Inline(&[])));
        assert_eq!(view.search(b"beta"), Ok(1));
        assert_eq!(view.search(b"b"), Err(1));
        assert_eq!(view.search(b"zzz"), Err(3));
        assert_eq!(view.search(b""), Err(0));
    }

    #[test]
    fn leaf_roundtrip_via_owned_parse() {
        let mut page = vec![0u8; PAGE];
        serialize_node(&leaf_node(), &mut page).unwrap();
        let node = parse_node(&page).unwrap();
        assert_eq!(node.extra, 77);
        let NodeBody::Leaf(cells) = node.body else {
            panic!("leaf");
        };
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[0].0, b"alpha");
        assert!(matches!(
            &cells[1].1,
            LeafVal::Overflow { page: 9, len: 4000 }
        ));
    }

    #[test]
    fn internal_roundtrip_and_child_for() {
        let node = Node {
            extra: 100,
            body: NodeBody::Internal(vec![
                (b"f".to_vec(), 101),
                (b"m".to_vec(), 102),
                (b"t".to_vec(), 103),
            ]),
        };
        let mut page = vec![0u8; PAGE];
        serialize_node(&node, &mut page).unwrap();
        let NodeView::Internal(view) = NodeView::parse(&page).unwrap() else {
            panic!("expected internal view");
        };
        assert_eq!(view.leftmost(), 100);
        assert_eq!(view.child_for(b"a"), 100);
        assert_eq!(view.child_for(b"f"), 101);
        assert_eq!(view.child_for(b"g"), 101);
        assert_eq!(view.child_for(b"m"), 102);
        assert_eq!(view.child_for(b"z"), 103);
        let owned = parse_node(&page).unwrap();
        let NodeBody::Internal(cells) = owned.body else {
            panic!("internal");
        };
        assert_eq!(
            cells,
            vec![
                (b"f".to_vec(), 101),
                (b"m".to_vec(), 102),
                (b"t".to_vec(), 103)
            ]
        );
    }

    #[test]
    fn v1_pages_rejected_with_clear_error() {
        // A v1 page began with the node type byte directly.
        for type_byte in [TYPE_LEAF, TYPE_INTERNAL] {
            let mut page = vec![0u8; PAGE];
            page[0] = type_byte;
            let err = NodeView::parse(&page).unwrap_err();
            assert!(
                matches!(&err, StorageError::Corrupt(m) if m.contains("page format v1, expected v2")),
                "unexpected error: {err}"
            );
        }
    }

    #[test]
    fn unknown_format_rejected() {
        let page = vec![0u8; PAGE]; // zeroed page: format byte 0
        let err = NodeView::parse(&page).unwrap_err();
        assert!(
            matches!(&err, StorageError::Corrupt(m) if m.contains("unknown page format")),
            "unexpected error: {err}"
        );
    }
}
