//! Order-preserving byte encodings for composite B+-tree keys, plus simple
//! little-endian record codecs.
//!
//! Lexicographic comparison of encoded bytes must equal the natural order of
//! the encoded values. For the XASR indexes the composite keys are
//! `(in)`, `(label, in)` and `(parent_in, in)`; `u64`s are encoded
//! big-endian and strings are terminated with `0x00` (values never contain
//! NUL — enforced by the XML layer, which rejects NUL as an invalid
//! character in names and resolves entities to valid chars only; the
//! encoder double-checks).

use std::cmp::Ordering;

/// Appends a big-endian `u64` (order-preserving).
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Reads a big-endian `u64` at `pos`, advancing it.
pub fn get_u64(buf: &[u8], pos: &mut usize) -> u64 {
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(&buf[*pos..*pos + 8]);
    *pos += 8;
    u64::from_be_bytes(bytes)
}

/// Appends a NUL-terminated string (order-preserving for NUL-free strings).
///
/// # Panics
/// Debug-asserts the string contains no NUL byte.
pub fn put_str_terminated(out: &mut Vec<u8>, s: &str) {
    debug_assert!(!s.as_bytes().contains(&0), "NUL in key string");
    out.extend_from_slice(s.as_bytes());
    out.push(0);
}

/// Reads a NUL-terminated string at `pos`, advancing past the terminator.
pub fn get_str_terminated<'a>(buf: &'a [u8], pos: &mut usize) -> &'a str {
    let start = *pos;
    let end = buf[start..]
        .iter()
        .position(|&b| b == 0)
        .map(|i| start + i)
        .expect("missing NUL terminator");
    *pos = end + 1;
    std::str::from_utf8(&buf[start..end]).expect("key strings are UTF-8")
}

/// Appends a length-prefixed byte slice (u32 LE length). Not
/// order-preserving; for record payloads only.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Reads a length-prefixed byte slice at `pos`.
pub fn get_bytes<'a>(buf: &'a [u8], pos: &mut usize) -> &'a [u8] {
    let mut len_bytes = [0u8; 4];
    len_bytes.copy_from_slice(&buf[*pos..*pos + 4]);
    let len = u32::from_le_bytes(len_bytes) as usize;
    *pos += 4;
    let out = &buf[*pos..*pos + len];
    *pos += len;
    out
}

/// Compares two encoded keys (plain lexicographic byte order — the codec's
/// whole contract is that this is the right comparison).
#[inline]
pub fn compare_keys(a: &[u8], b: &[u8]) -> Ordering {
    a.cmp(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip_and_order() {
        let values = [0u64, 1, 255, 256, u32::MAX as u64, u64::MAX - 1, u64::MAX];
        let mut encoded: Vec<Vec<u8>> = Vec::new();
        for &v in &values {
            let mut buf = Vec::new();
            put_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_u64(&buf, &mut pos), v);
            assert_eq!(pos, 8);
            encoded.push(buf);
        }
        for w in encoded.windows(2) {
            assert!(w[0] < w[1], "order not preserved");
        }
    }

    #[test]
    fn str_roundtrip_and_order() {
        let values = ["", "a", "ab", "b", "journal", "journals"];
        for &v in &values {
            let mut buf = Vec::new();
            put_str_terminated(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_str_terminated(&buf, &mut pos), v);
            assert_eq!(pos, buf.len());
        }
        // "a" < "ab": terminator 0x00 sorts before 'b', preserving prefix
        // order.
        let mut a = Vec::new();
        let mut ab = Vec::new();
        put_str_terminated(&mut a, "a");
        put_str_terminated(&mut ab, "ab");
        assert!(a < ab);
    }

    #[test]
    fn composite_key_order_matches_tuple_order() {
        // (label, in) composite: compare as tuples, then as bytes.
        let tuples = [
            ("author", 5u64),
            ("author", 9),
            ("journal", 1),
            ("title", 2),
        ];
        let encode = |(s, n): (&str, u64)| {
            let mut buf = Vec::new();
            put_str_terminated(&mut buf, s);
            put_u64(&mut buf, n);
            buf
        };
        for a in tuples {
            for b in tuples {
                let byte_order = compare_keys(&encode(a), &encode(b));
                let tuple_order = a.cmp(&b);
                assert_eq!(byte_order, tuple_order, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn bytes_roundtrip() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, b"hello");
        put_bytes(&mut buf, b"");
        put_bytes(&mut buf, &[0u8, 1, 2]);
        let mut pos = 0;
        assert_eq!(get_bytes(&buf, &mut pos), b"hello");
        assert_eq!(get_bytes(&buf, &mut pos), b"");
        assert_eq!(get_bytes(&buf, &mut pos), &[0u8, 1, 2]);
        assert_eq!(pos, buf.len());
    }
}
