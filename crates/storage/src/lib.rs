#![warn(missing_docs)]

//! Paged storage manager for saardb — the substitute for the Berkeley DB
//! storage manager the course built on.
//!
//! The paper's milestone 2 requires "efficient secondary storage structures"
//! that fetch "only those nodes into main memory that are currently
//! necessary"; milestone 4 adds clustered and unclustered B+-tree indexes,
//! and the efficiency tests run under a 20 MB memory budget. This crate
//! provides exactly that substrate:
//!
//! * [`env::Env`] — a storage *environment*: a set of named paged files
//!   (on disk or in memory) sharing one buffer pool with a byte budget,
//! * [`buffer`] — the buffer pool: clock eviction, pin counts, dirty
//!   write-back, hit/miss accounting for the cost model,
//! * [`btree::BTree`] — B+-trees over byte-string keys with range cursors,
//!   bulk loading, and overflow pages for large values,
//! * [`heap::HeapFile`] — append-only record files for materialized
//!   intermediate results (the paper allowed engines to "write to disk each
//!   intermediate result"),
//! * [`sort::ExternalSorter`] — run-generation + k-way-merge external sort
//!   (the paper laments BDB made this hard to do "properly by the book";
//!   here it is by the book),
//! * [`temp::TempFile`] — scratch files that free themselves,
//! * [`governor::Governor`] — the per-query resource governor: cooperative
//!   cancellation, wall-clock deadlines and byte-accounted memory budgets
//!   (the honest version of the testbed's time and memory limits).
//!
//! Unlike Berkeley DB, this storage manager supports block-based *writing*
//! as well as reading, so block-oriented operators can be implemented
//! faithfully.
//!
//! ## Key encoding
//!
//! B+-tree keys are ordered lexicographically as byte strings. The
//! [`codec`] module provides order-preserving encodings (big-endian `u64`,
//! length-framed strings) so composite XASR keys sort correctly.

pub mod backend;
pub mod btree;
pub mod buffer;
pub mod codec;
pub mod env;
pub mod fault;
pub mod governor;
pub mod heap;
pub mod sort;
pub mod temp;
pub mod txn;
pub mod wal;

mod error;
mod node;
mod page;

pub use btree::{BTree, Cursor};
pub use buffer::{IoSnapshot, IoStats};
pub use env::{BackendDecorator, Env, EnvConfig, FileId};
pub use error::StorageError;
pub use fault::{FaultBackend, FaultState, KillMode};
pub use governor::{Governor, GovernorScope, GovernorSnapshot, MemReservation};
pub use heap::HeapFile;
pub use page::{PageId, DEFAULT_PAGE_SIZE};
pub use sort::{ExternalSorter, SortedRecords};
pub use temp::TempFile;
pub use txn::{Txn, TxnScope};
pub use wal::{crc32, Appended, RecoveryReport, Wal};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, StorageError>;
