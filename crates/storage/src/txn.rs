//! Transactions: begin/commit/rollback handles, page-granularity strict
//! two-phase locking with wait-for-graph deadlock detection, and the
//! bookkeeping that ties both into the WAL's group-commit path.
//!
//! The paper's term-project engine was strictly single-user; this module
//! is the concurrency layer ROADMAP item #1 calls for. The design follows
//! the classic textbook shape (and the SimpleDB lineage noted in
//! PAPERS.md):
//!
//! * **[`Txn`] handles** are cheap clones of a shared state. A thread
//!   makes a transaction *current* with [`Txn::install`] (the same
//!   thread-local stack discipline as [`crate::Governor`]); while
//!   installed, every [`crate::Env::with_page`] /
//!   [`crate::Env::with_page_mut`] on that environment routes through the
//!   lock table. Code with no installed transaction pays one thread-local
//!   probe and takes no locks — the single-user fast path is unchanged.
//! * **Strict 2PL at page granularity.** Reads take shared locks, writes
//!   exclusive locks (with S→X upgrade); everything is held to commit or
//!   rollback. The first exclusive touch of a page captures its
//!   *pre-image* — the undo record and the WAL before-image in one.
//! * **Deadlock detection, not timeouts.** A blocked request adds its
//!   edge to the wait-for graph and searches for a cycle through itself;
//!   if found, the *requester* is the victim: it is rolled back on the
//!   spot and the operation fails with [`StorageError::Deadlock`] — a
//!   retryable error, exactly like the governor's `Cancelled`.
//! * **Group commit.** Commit appends the write set's tagged page images
//!   plus a `TxnCommit` marker and calls [`crate::wal::Wal::sync_to`]:
//!   concurrent committers batch behind a single `sync_data`, so
//!   `saardb_wal_syncs` grows sublinearly in committers. A read-only
//!   transaction appends nothing and costs no fsync at all.
//!
//! Crash semantics: pages dirtied under a transaction may be *stolen* to
//! disk at any time (the pool's steal/no-force policy); the steal hook
//! tags their WAL images with the owning transaction so recovery can redo
//! winners and undo losers of interleaved transactions — see
//! [`crate::wal::replay`].

use crate::env::{Env, FileId};
use crate::error::StorageError;
use crate::governor::Governor;
use crate::page::PageId;
use crate::Result;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::Duration;
use xmldb_obs::{Counter, Registry};

/// A page lock's mode. `Exclusive` subsumes `Shared` (ordering used for
/// the already-held fast path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum LockMode {
    Shared,
    Exclusive,
}

type PageKey = (FileId, PageId);

/// How long a blocked lock request sleeps between governor checks. Purely
/// a responsiveness bound for cancellation/deadlines while parked — wakeups
/// for lock releases come through the condvar immediately.
const LOCK_WAIT_TICK: Duration = Duration::from_millis(25);

#[derive(Default)]
struct LockState {
    /// Per page: which transactions hold it, in which mode. An exclusive
    /// holder is always alone (modulo its own earlier shared entry, which
    /// upgrade replaces).
    holders: HashMap<PageKey, HashMap<u64, LockMode>>,
    /// Per blocked transaction: the request it is parked on — the edges of
    /// the wait-for graph.
    waiting: HashMap<u64, (PageKey, LockMode)>,
    /// Per transaction: every key it holds (release index).
    held: HashMap<u64, HashSet<PageKey>>,
}

/// The lock table: page-granularity strict 2PL with wait-for-graph
/// deadlock detection. One table per environment. Built on `std::sync`
/// primitives — the blocked path needs a condvar, which the vendored
/// `parking_lot` shim does not provide.
pub(crate) struct LockTable {
    state: Mutex<LockState>,
    cv: Condvar,
}

fn can_grant(st: &LockState, txn: u64, key: PageKey, mode: LockMode) -> bool {
    let Some(holders) = st.holders.get(&key) else {
        return true;
    };
    match mode {
        LockMode::Shared => holders
            .iter()
            .all(|(&h, &m)| h == txn || m == LockMode::Shared),
        LockMode::Exclusive => holders.keys().all(|&h| h == txn),
    }
}

/// Does `start`'s just-recorded wait edge close a cycle? DFS over
/// "waiter → holders of the key it waits on".
fn closes_cycle(st: &LockState, start: u64) -> bool {
    let mut stack = vec![start];
    let mut seen: HashSet<u64> = HashSet::new();
    while let Some(t) = stack.pop() {
        let Some(&(key, _)) = st.waiting.get(&t) else {
            continue;
        };
        let Some(holders) = st.holders.get(&key) else {
            continue;
        };
        for &h in holders.keys() {
            if h == t {
                continue; // waiting to upgrade past itself
            }
            if h == start {
                return true;
            }
            if seen.insert(h) {
                stack.push(h);
            }
        }
    }
    false
}

impl LockTable {
    fn new() -> LockTable {
        LockTable {
            state: Mutex::new(LockState::default()),
            cv: Condvar::new(),
        }
    }

    /// Acquires (or upgrades to) `mode` on `key` for `txn`, blocking while
    /// conflicting holders exist. Fails with [`StorageError::Deadlock`]
    /// when the request closes a wait-for cycle (the requester is the
    /// victim), or with a governor error if the thread's installed
    /// governor trips while parked.
    fn lock(&self, txn: u64, key: PageKey, mode: LockMode, waits: &Counter) -> Result<()> {
        let mut st = self.state.lock().unwrap();
        if st
            .holders
            .get(&key)
            .and_then(|h| h.get(&txn))
            .is_some_and(|&held| held >= mode)
        {
            return Ok(());
        }
        let mut counted_wait = false;
        loop {
            if can_grant(&st, txn, key, mode) {
                st.holders.entry(key).or_default().insert(txn, mode);
                st.held.entry(txn).or_default().insert(key);
                return Ok(());
            }
            st.waiting.insert(txn, (key, mode));
            if closes_cycle(&st, txn) {
                st.waiting.remove(&txn);
                drop(st);
                // The victim's locks are about to be released by its
                // rollback; wake conflicting waiters so they re-check.
                self.cv.notify_all();
                return Err(StorageError::Deadlock { txn });
            }
            if !counted_wait {
                waits.inc();
                counted_wait = true;
            }
            let (guard, _timeout) = self.cv.wait_timeout(st, LOCK_WAIT_TICK).unwrap();
            st = guard;
            st.waiting.remove(&txn);
            Governor::check_current()?;
        }
    }

    /// Releases every lock `txn` holds and clears its wait edge.
    fn release_all(&self, txn: u64) {
        let mut st = self.state.lock().unwrap();
        if let Some(keys) = st.held.remove(&txn) {
            for key in keys {
                if let Some(holders) = st.holders.get_mut(&key) {
                    holders.remove(&txn);
                    if holders.is_empty() {
                        st.holders.remove(&key);
                    }
                }
            }
        }
        st.waiting.remove(&txn);
        drop(st);
        self.cv.notify_all();
    }

    #[cfg(test)]
    fn held_count(&self, txn: u64) -> usize {
        self.state
            .lock()
            .unwrap()
            .held
            .get(&txn)
            .map_or(0, HashSet::len)
    }
}

/// Registry-backed per-transaction counters (shared exposition with the
/// pool/WAL/engine metrics).
pub(crate) struct TxnCounters {
    pub(crate) begins: Arc<Counter>,
    pub(crate) commits: Arc<Counter>,
    pub(crate) rollbacks: Arc<Counter>,
    pub(crate) deadlocks: Arc<Counter>,
    pub(crate) lock_waits: Arc<Counter>,
    pub(crate) group_followers: Arc<Counter>,
}

impl TxnCounters {
    fn new(registry: &Registry) -> TxnCounters {
        registry.help("saardb_txn_begins_total", "Transactions begun.");
        registry.help("saardb_txn_commits_total", "Transactions committed.");
        registry.help(
            "saardb_txn_rollbacks_total",
            "Transactions rolled back (explicit, dropped, or deadlock victims).",
        );
        registry.help(
            "saardb_txn_deadlocks_total",
            "Lock requests aborted as deadlock victims.",
        );
        registry.help(
            "saardb_txn_lock_waits_total",
            "Lock requests that blocked at least once.",
        );
        registry.help(
            "saardb_txn_group_commit_followers_total",
            "Commits made durable by another committer's fsync (group commit).",
        );
        TxnCounters {
            begins: registry.counter("saardb_txn_begins_total", &[]),
            commits: registry.counter("saardb_txn_commits_total", &[]),
            rollbacks: registry.counter("saardb_txn_rollbacks_total", &[]),
            deadlocks: registry.counter("saardb_txn_deadlocks_total", &[]),
            lock_waits: registry.counter("saardb_txn_lock_waits_total", &[]),
            group_followers: registry.counter("saardb_txn_group_commit_followers_total", &[]),
        }
    }
}

/// Per-environment transaction bookkeeping: id allocation, the lock
/// table, the set of live transactions, and the page→owner index the
/// buffer pool's steal hook consults to tag WAL images.
pub(crate) struct TxnManager {
    next_id: AtomicU64,
    /// Live transactions by id. `Weak`: the entry must not keep a dropped
    /// handle's state alive (last-handle drop triggers auto-rollback).
    active: Mutex<HashMap<u64, Weak<TxnInner>>>,
    /// Which active transaction currently owns (has exclusively written)
    /// each page. Consulted on the steal path, so lookups take each lock
    /// briefly and never nested.
    owners: Mutex<HashMap<PageKey, u64>>,
    pub(crate) locks: LockTable,
    pub(crate) counters: TxnCounters,
}

impl TxnManager {
    pub(crate) fn new(registry: &Registry) -> TxnManager {
        TxnManager {
            next_id: AtomicU64::new(0),
            active: Mutex::new(HashMap::new()),
            owners: Mutex::new(HashMap::new()),
            locks: LockTable::new(),
            counters: TxnCounters::new(registry),
        }
    }

    /// Number of live transactions. Gates log truncation: a checkpoint
    /// while a transaction is in flight would discard its undo records.
    pub(crate) fn active_count(&self) -> usize {
        let mut active = self.active.lock().unwrap();
        active.retain(|_, w| w.strong_count() > 0);
        active.len()
    }

    /// The owning transaction and its captured pre-image for `page`, if an
    /// active transaction has written it. Used by the steal hook to log a
    /// transaction-tagged image whose before-image is the page content at
    /// the transaction's first touch (so recovery's undo lands there no
    /// matter how many steals happened since).
    pub(crate) fn owner_pre_image(&self, file: FileId, page: PageId) -> Option<(u64, Vec<u8>)> {
        let id = *self.owners.lock().unwrap().get(&(file, page))?;
        let inner = self.active.lock().unwrap().get(&id)?.upgrade()?;
        let data = inner.data.lock().unwrap();
        data.writes
            .iter()
            .find(|w| w.file == file && w.page == page)
            .map(|w| (id, w.pre_image.clone()))
    }

    fn register_owner(&self, file: FileId, page: PageId, txn: u64) {
        self.owners.lock().unwrap().insert((file, page), txn);
    }

    fn clear_owners(&self, txn: u64, keys: impl Iterator<Item = PageKey>) {
        let mut owners = self.owners.lock().unwrap();
        for key in keys {
            if owners.get(&key) == Some(&txn) {
                owners.remove(&key);
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnStatus {
    Active,
    Committed,
    RolledBack,
}

/// One captured write: the page and its content at the transaction's
/// first exclusive touch.
#[derive(Clone)]
struct WriteEntry {
    file: FileId,
    page: PageId,
    pre_image: Vec<u8>,
}

struct TxnData {
    status: TxnStatus,
    /// First-touch order; rollback restores in reverse.
    writes: Vec<WriteEntry>,
    written: HashSet<PageKey>,
}

struct TxnInner {
    id: u64,
    data: Mutex<TxnData>,
}

/// A transaction handle: cheap to clone; all clones share one state.
/// Dropping the last clone of an active transaction rolls it back.
#[derive(Clone)]
pub struct Txn {
    env: Env,
    inner: Arc<TxnInner>,
}

thread_local! {
    /// Stack of installed transactions (innermost last) — the same
    /// discipline as the governor's thread-local stack.
    static CURRENT: RefCell<Vec<Txn>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard of [`Txn::install`]: pops the thread's current transaction
/// on drop (restoring the previously installed one, if any).
pub struct TxnScope {
    _priv: (),
}

impl Drop for TxnScope {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// The thread's innermost installed transaction, if any (a clone).
fn current() -> Option<Txn> {
    CURRENT.with(|c| c.borrow().last().cloned())
}

/// Fast probe: is any transaction installed on this thread? Avoids the
/// handle clone on the (overwhelmingly common) untransacted path.
#[inline]
fn installed() -> bool {
    CURRENT.with(|c| !c.borrow().is_empty())
}

/// Page-read hook for [`Env::with_page`]: under an installed transaction
/// on `env`, takes (and holds, per strict 2PL) a shared lock on the page.
#[inline]
pub(crate) fn read_hook(env: &Env, file: FileId, page: PageId) -> Result<()> {
    if !installed() {
        return Ok(());
    }
    match current() {
        Some(txn) if txn.env.same_env(env) => txn.touch(file, page, LockMode::Shared),
        _ => Ok(()),
    }
}

/// Page-write hook for [`Env::with_page_mut`]: under an installed
/// transaction on `env`, takes an exclusive lock and captures the page's
/// pre-image on first touch.
#[inline]
pub(crate) fn write_hook(env: &Env, file: FileId, page: PageId) -> Result<()> {
    if !installed() {
        return Ok(());
    }
    match current() {
        Some(txn) if txn.env.same_env(env) => txn.touch(file, page, LockMode::Exclusive),
        _ => Ok(()),
    }
}

impl Txn {
    pub(crate) fn begin(env: &Env) -> Txn {
        let mgr = env.txns();
        let id = mgr.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let inner = Arc::new(TxnInner {
            id,
            data: Mutex::new(TxnData {
                status: TxnStatus::Active,
                writes: Vec::new(),
                written: HashSet::new(),
            }),
        });
        mgr.active
            .lock()
            .unwrap()
            .insert(id, Arc::downgrade(&inner));
        mgr.counters.begins.inc();
        Txn {
            env: env.clone(),
            inner,
        }
    }

    /// This transaction's id (unique within the environment's session;
    /// also the tag on its WAL records).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// True while the transaction can still read, write and commit.
    pub fn is_active(&self) -> bool {
        self.inner.data.lock().unwrap().status == TxnStatus::Active
    }

    /// Pages this transaction has written (its undo set).
    pub fn write_set_len(&self) -> usize {
        self.inner.data.lock().unwrap().writes.len()
    }

    /// The calling thread's innermost installed transaction, if any (a
    /// clone). The parallel executor uses this to carry the coordinator's
    /// transaction onto pool workers (each worker re-installs it for the
    /// duration of its morsel).
    pub fn current() -> Option<Txn> {
        current()
    }

    /// Makes this transaction the thread's current one for the lifetime of
    /// the returned scope: page accesses on its environment acquire locks
    /// and capture pre-images. Nesting installs restore correctly (a
    /// stack, like [`Governor::install`]).
    pub fn install(&self) -> TxnScope {
        CURRENT.with(|c| c.borrow_mut().push(self.clone()));
        TxnScope { _priv: () }
    }

    /// Lock acquisition + first-touch pre-image capture. On deadlock the
    /// transaction (the victim) is rolled back before the error returns,
    /// so its locks are already free when the caller sees
    /// [`StorageError::Deadlock`].
    fn touch(&self, file: FileId, page: PageId, mode: LockMode) -> Result<()> {
        {
            let data = self.inner.data.lock().unwrap();
            if data.status != TxnStatus::Active {
                return Err(StorageError::TxnInactive { txn: self.inner.id });
            }
            if mode == LockMode::Exclusive && data.written.contains(&(file, page)) {
                return Ok(()); // already ours, pre-image captured
            }
        }
        let Some((_, temp)) = self.env.file_meta(file) else {
            // Unknown file id: let the pool produce its NoSuchFile.
            return Ok(());
        };
        if temp {
            return Ok(()); // scratch files are private to their query
        }
        let mgr = self.env.txns();
        match mgr
            .locks
            .lock(self.inner.id, (file, page), mode, &mgr.counters.lock_waits)
        {
            Ok(()) => {}
            Err(e @ StorageError::Deadlock { .. }) => {
                mgr.counters.deadlocks.inc();
                let _ = self.rollback();
                return Err(e);
            }
            Err(e) => return Err(e),
        }
        if mode == LockMode::Exclusive {
            self.capture_pre_image(file, page)?;
        }
        Ok(())
    }

    /// Reads the page's current (logical, pool-resident) content and
    /// records it as the undo image, then marks this transaction as the
    /// page's owner for steal-tagging. Called with the exclusive lock
    /// held, never with `data` locked across the page read (the read can
    /// evict, and the steal hook locks `data` of owning transactions).
    fn capture_pre_image(&self, file: FileId, page: PageId) -> Result<()> {
        let pre = self.env.read_page_vec(file, page)?;
        {
            let mut data = self.inner.data.lock().unwrap();
            if !data.written.insert((file, page)) {
                return Ok(()); // raced with ourselves (multi-thread txn)
            }
            data.writes.push(WriteEntry {
                file,
                page,
                pre_image: pre,
            });
        }
        self.env.txns().register_owner(file, page, self.inner.id);
        Ok(())
    }

    /// Commits: appends the write set's transaction-tagged images and the
    /// commit marker to the WAL, makes them durable through the
    /// group-commit gate, then releases every lock. A transaction that
    /// wrote nothing commits without touching the log (and without an
    /// fsync). On error the transaction stays active — roll it back (or
    /// drop it) and retry from `begin`.
    pub fn commit(&self) -> Result<()> {
        let writes = {
            let data = self.inner.data.lock().unwrap();
            if data.status != TxnStatus::Active {
                return Err(StorageError::TxnInactive { txn: self.inner.id });
            }
            data.writes.clone()
        };
        let mgr = self.env.txns();
        if !writes.is_empty() {
            if let Some(wal) = self.env.wal() {
                let stats = self.env.counters();
                let mut appended = 0u64;
                let mut bytes = 0u64;
                for w in &writes {
                    let Some((name, temp)) = self.env.file_meta(w.file) else {
                        continue; // file dropped mid-transaction
                    };
                    if temp {
                        continue;
                    }
                    let after = self.env.read_page_vec(w.file, w.page)?;
                    let a = self.env.note_wal(wal.append_txn_page_image(
                        self.inner.id,
                        &name,
                        w.page,
                        &w.pre_image,
                        &after,
                    ))?;
                    appended += 1;
                    bytes += a.bytes;
                }
                let counts = self.env.durable_file_counts();
                let a = self.env.note_wal(wal.append_txn_commit(
                    self.inner.id,
                    self.env.page_size(),
                    counts,
                ))?;
                appended += 1;
                bytes += a.bytes;
                stats.wal_appends.add(appended);
                stats.wal_bytes.add(bytes);
                if self.env.note_wal(wal.sync_to(a.end))? {
                    stats.wal_syncs.inc();
                } else {
                    mgr.counters.group_followers.inc();
                }
            }
        }
        self.finish(TxnStatus::Committed);
        mgr.counters.commits.inc();
        Ok(())
    }

    /// Rolls back: restores every written page to its pre-image (newest
    /// first), appends an abort marker, and releases every lock.
    /// Idempotent on an already-rolled-back transaction; an error on a
    /// committed one.
    pub fn rollback(&self) -> Result<()> {
        let writes = {
            let data = self.inner.data.lock().unwrap();
            match data.status {
                TxnStatus::Active => data.writes.clone(),
                TxnStatus::RolledBack => return Ok(()),
                TxnStatus::Committed => {
                    return Err(StorageError::TxnInactive { txn: self.inner.id })
                }
            }
        };
        // Best effort: a page whose file was dropped mid-transaction (or
        // whose backend is dead under fault injection) cannot be restored
        // here — crash recovery restores it from the tagged WAL images.
        for w in writes.iter().rev() {
            let _ = self.env.write_page_raw(w.file, w.page, &w.pre_image);
        }
        if !writes.is_empty() {
            if let Some(wal) = self.env.wal() {
                if let Ok(a) = wal.append_txn_abort(self.inner.id) {
                    let stats = self.env.counters();
                    stats.wal_appends.inc();
                    stats.wal_bytes.add(a.bytes);
                }
            }
        }
        self.finish(TxnStatus::RolledBack);
        self.env.txns().counters.rollbacks.inc();
        Ok(())
    }

    /// Marks the terminal status, then drops ownership and locks. Lock
    /// release comes last: until then no other transaction can observe the
    /// pages (strict 2PL's cascading-abort freedom).
    fn finish(&self, status: TxnStatus) {
        let keys: Vec<PageKey> = {
            let mut data = self.inner.data.lock().unwrap();
            data.status = status;
            data.writes.iter().map(|w| (w.file, w.page)).collect()
        };
        let mgr = self.env.txns();
        mgr.active.lock().unwrap().remove(&self.inner.id);
        mgr.clear_owners(self.inner.id, keys.into_iter());
        mgr.locks.release_all(self.inner.id);
    }
}

impl Drop for Txn {
    fn drop(&mut self) {
        // Last handle of a still-active transaction: auto-rollback, so a
        // forgotten (or panicked-over) transaction cannot pin its locks
        // and uncommitted pages forever.
        if Arc::strong_count(&self.inner) == 1 && self.is_active() {
            let _ = self.rollback();
        }
    }
}

impl std::fmt::Debug for Txn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let data = self.inner.data.lock().unwrap();
        f.debug_struct("Txn")
            .field("id", &self.inner.id)
            .field("status", &data.status)
            .field("writes", &data.writes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EnvConfig;

    fn mem_env() -> Env {
        Env::memory_with(EnvConfig {
            page_size: 128,
            pool_bytes: 16 * 128,
        })
    }

    #[test]
    fn commit_makes_writes_visible_and_releases_locks() {
        let env = mem_env();
        let f = env.create_file("t").unwrap();
        let p = env.allocate_page(f).unwrap();
        let txn = env.begin_txn();
        {
            let _scope = txn.install();
            env.with_page_mut(f, p, |d| d[0] = 7).unwrap();
        }
        assert_eq!(txn.write_set_len(), 1);
        txn.commit().unwrap();
        assert!(!txn.is_active());
        assert_eq!(env.txns().locks.held_count(txn.id()), 0);
        assert_eq!(env.with_page(f, p, |d| d[0]).unwrap(), 7);
    }

    #[test]
    fn rollback_restores_pre_images_in_reverse() {
        let env = mem_env();
        let f = env.create_file("t").unwrap();
        let p0 = env.allocate_page(f).unwrap();
        let p1 = env.allocate_page(f).unwrap();
        env.with_page_mut(f, p0, |d| d[0] = 1).unwrap();
        env.with_page_mut(f, p1, |d| d[0] = 2).unwrap();
        let txn = env.begin_txn();
        {
            let _scope = txn.install();
            env.with_page_mut(f, p0, |d| d[0] = 10).unwrap();
            env.with_page_mut(f, p1, |d| d[0] = 20).unwrap();
            env.with_page_mut(f, p0, |d| d[0] = 11).unwrap();
        }
        txn.rollback().unwrap();
        assert_eq!(env.with_page(f, p0, |d| d[0]).unwrap(), 1);
        assert_eq!(env.with_page(f, p1, |d| d[0]).unwrap(), 2);
        // Idempotent.
        txn.rollback().unwrap();
        assert!(matches!(
            txn.commit(),
            Err(StorageError::TxnInactive { .. })
        ));
    }

    #[test]
    fn dropping_last_handle_rolls_back() {
        let env = mem_env();
        let f = env.create_file("t").unwrap();
        let p = env.allocate_page(f).unwrap();
        {
            let txn = env.begin_txn();
            let clone = txn.clone();
            let _scope = txn.install();
            env.with_page_mut(f, p, |d| d[0] = 42).unwrap();
            drop(clone); // not the last handle: nothing happens
            assert!(txn.is_active());
        }
        // Scope and last handle dropped: auto-rollback ran.
        assert_eq!(env.with_page(f, p, |d| d[0]).unwrap(), 0);
        assert_eq!(env.txns().active_count(), 0);
    }

    #[test]
    fn conflicting_writers_serialize() {
        let env = mem_env();
        let f = env.create_file("t").unwrap();
        let p = env.allocate_page(f).unwrap();
        let t1 = env.begin_txn();
        {
            let _s = t1.install();
            env.with_page_mut(f, p, |d| d[0] = 1).unwrap();
        }
        let env2 = env.clone();
        let waiter = std::thread::spawn(move || {
            let t2 = env2.begin_txn();
            let _s = t2.install();
            // Blocks until t1 commits, then sees t1's write.
            let seen = env2.with_page_mut(f, p, |d| {
                let v = d[0];
                d[0] = 2;
                v
            });
            t2.commit().unwrap();
            seen
        });
        std::thread::sleep(Duration::from_millis(50));
        t1.commit().unwrap();
        assert_eq!(waiter.join().unwrap().unwrap(), 1);
        assert_eq!(env.with_page(f, p, |d| d[0]).unwrap(), 2);
    }

    #[test]
    fn deadlock_victim_aborts_and_other_proceeds() {
        let env = mem_env();
        let f = env.create_file("t").unwrap();
        let pa = env.allocate_page(f).unwrap();
        let pb = env.allocate_page(f).unwrap();
        let t1 = env.begin_txn();
        {
            let _s = t1.install();
            env.with_page_mut(f, pa, |d| d[0] = 1).unwrap();
        }
        let env2 = env.clone();
        let other = std::thread::spawn(move || {
            let t2 = env2.begin_txn();
            let _s = t2.install();
            env2.with_page_mut(f, pb, |d| d[0] = 2).unwrap();
            // Now wait for pa (held by t1) — t1 will come for pb, closing
            // the cycle; exactly one of the two is the victim.
            let r = env2.with_page_mut(f, pa, |d| d[0] = 22);
            match r {
                Ok(()) => {
                    t2.commit().unwrap();
                    Ok(())
                }
                Err(e) => Err(e),
            }
        });
        std::thread::sleep(Duration::from_millis(50));
        let mine = {
            let _s = t1.install();
            env.with_page_mut(f, pb, |d| d[0] = 11)
        };
        let theirs = other.join().unwrap();
        let deadlocks = [&mine, &theirs]
            .iter()
            .filter(|r| matches!(r, Err(StorageError::Deadlock { .. })))
            .count();
        assert_eq!(deadlocks, 1, "exactly one victim: {mine:?} / {theirs:?}");
        // The victim was rolled back automatically; the survivor holds or
        // released its locks normally. Either way the table drains.
        if mine.is_ok() {
            t1.commit().unwrap();
        } else {
            assert!(!t1.is_active(), "victim must be auto-rolled-back");
        }
        assert_eq!(env.txns().active_count(), 0);
        assert_eq!(env.txns().counters.deadlocks.get(), 1);
    }

    #[test]
    fn shared_locks_coexist_and_block_writers() {
        let env = mem_env();
        let f = env.create_file("t").unwrap();
        let p = env.allocate_page(f).unwrap();
        let t1 = env.begin_txn();
        let t2 = env.begin_txn();
        {
            let _s = t1.install();
            env.with_page(f, p, |_| ()).unwrap();
        }
        {
            let _s = t2.install();
            env.with_page(f, p, |_| ()).unwrap(); // S + S: fine
        }
        // Upgrade contest: t1 wants X while t2 holds S and vice versa is
        // the classic upgrade deadlock; here only t1 upgrades, so it just
        // waits until t2 ends.
        let env2 = env.clone();
        let t1c = t1.clone();
        let up = std::thread::spawn(move || {
            let _s = t1c.install();
            env2.with_page_mut(f, p, |d| d[0] = 9)
        });
        std::thread::sleep(Duration::from_millis(50));
        assert!(!up.is_finished(), "upgrade must wait for the S holder");
        t2.commit().unwrap();
        up.join().unwrap().unwrap();
        t1.commit().unwrap();
        assert_eq!(env.with_page(f, p, |d| d[0]).unwrap(), 9);
    }

    #[test]
    fn no_txn_installed_means_no_locking() {
        let env = mem_env();
        let f = env.create_file("t").unwrap();
        let p = env.allocate_page(f).unwrap();
        let txn = env.begin_txn();
        {
            let _s = txn.install();
            env.with_page_mut(f, p, |d| d[0] = 5).unwrap();
        }
        // A plain (auto-commit) access on another thread ignores the lock
        // table entirely — the single-user fast path.
        let env2 = env.clone();
        std::thread::spawn(move || env2.with_page(f, p, |d| d[0]).unwrap())
            .join()
            .unwrap();
        txn.commit().unwrap();
    }

    #[test]
    fn counters_track_lifecycle() {
        let env = mem_env();
        let f = env.create_file("t").unwrap();
        let p = env.allocate_page(f).unwrap();
        let c = &env.txns().counters;
        let t1 = env.begin_txn();
        {
            let _s = t1.install();
            env.with_page_mut(f, p, |d| d[0] = 1).unwrap();
        }
        t1.commit().unwrap();
        let t2 = env.begin_txn();
        t2.rollback().unwrap();
        assert_eq!(c.begins.get(), 2);
        assert_eq!(c.commits.get(), 1);
        assert_eq!(c.rollbacks.get(), 1);
    }
}
