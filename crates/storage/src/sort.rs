//! External merge sort: run generation under a memory budget, then k-way
//! merge over spilled runs.
//!
//! Milestone 3's approach (a) to the ordering problem — "if we sort the
//! tuples in the intermediary relation ... e.g. by implementing external
//! sorting, we suffer no further restrictions on how to evaluate the
//! relational algebra expression". The paper notes BDB's lack of
//! block-based writing made this hard for students to do "properly by the
//! book"; our heap files write blocks, so this is the textbook algorithm.

use crate::env::Env;
use crate::governor::{Governor, MemReservation};
use crate::heap::HeapFile;
use crate::Result;
use std::cmp::Ordering;

/// Record comparator used by the sorter.
pub type RecordCmp = Box<dyn Fn(&[u8], &[u8]) -> Ordering + Send>;

/// External sorter over opaque byte records. See module docs.
pub struct ExternalSorter {
    env: Env,
    cmp: RecordCmp,
    /// In-memory buffer for the current run.
    buffer: Vec<Vec<u8>>,
    buffered_bytes: usize,
    budget_bytes: usize,
    /// Spilled, individually sorted runs.
    runs: Vec<HeapFile>,
    pushed: u64,
    governor: Governor,
    /// Accounts the buffered records against the governor's memory budget;
    /// releases itself on drop (including on a cancellation unwind).
    reservation: MemReservation,
}

impl ExternalSorter {
    /// Creates a sorter that spills once the buffered records exceed
    /// `budget_bytes` (plus bookkeeping). Buffered bytes are accounted
    /// against the calling thread's installed [`Governor`], if any:
    /// governor budget pressure forces an early spill exactly like the
    /// sorter's own budget does.
    pub fn new(
        env: &Env,
        budget_bytes: usize,
        cmp: impl Fn(&[u8], &[u8]) -> Ordering + Send + 'static,
    ) -> ExternalSorter {
        Self::with_governor(env, budget_bytes, Governor::current(), cmp)
    }

    /// [`ExternalSorter::new`] with an explicit governor instead of the
    /// thread's installed one.
    pub fn with_governor(
        env: &Env,
        budget_bytes: usize,
        governor: Governor,
        cmp: impl Fn(&[u8], &[u8]) -> Ordering + Send + 'static,
    ) -> ExternalSorter {
        let reservation = MemReservation::empty(&governor);
        ExternalSorter {
            env: env.clone(),
            cmp: Box::new(cmp),
            buffer: Vec::new(),
            buffered_bytes: 0,
            budget_bytes: budget_bytes.max(1),
            runs: Vec::new(),
            pushed: 0,
            governor,
            reservation,
        }
    }

    /// Convenience constructor for plain lexicographic byte order.
    pub fn lexicographic(env: &Env, budget_bytes: usize) -> ExternalSorter {
        Self::new(env, budget_bytes, |a, b| a.cmp(b))
    }

    /// Number of records pushed so far.
    pub fn len(&self) -> u64 {
        self.pushed
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.pushed == 0
    }

    /// Number of runs spilled to disk so far.
    pub fn spilled_runs(&self) -> usize {
        self.runs.len()
    }

    /// Adds a record. A record the governor's budget cannot cover forces a
    /// spill first (graceful degradation: disk instead of an error); only
    /// a record too large for the *whole* budget fails with
    /// [`crate::StorageError::MemoryExceeded`].
    pub fn push(&mut self, record: Vec<u8>) -> Result<()> {
        let cost = record.len() + std::mem::size_of::<Vec<u8>>();
        if !self.reservation.grow(cost) {
            self.spill()?;
            if !self.reservation.grow(cost) {
                return Err(crate::StorageError::MemoryExceeded {
                    used: self.governor.mem_used() + cost,
                    budget: self.governor.mem_budget().unwrap_or(0),
                });
            }
        }
        self.buffered_bytes += cost;
        self.buffer.push(record);
        self.pushed += 1;
        if self.buffered_bytes > self.budget_bytes {
            self.spill()?;
        }
        Ok(())
    }

    fn spill(&mut self) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let span = xmldb_obs::span("sort.spill");
        span.attr_u64("bytes", self.buffered_bytes as u64);
        span.attr_u64("records", self.buffer.len() as u64);
        let cmp = &self.cmp;
        self.buffer.sort_by(|a, b| cmp(a, b));
        let mut run = HeapFile::temp(&self.env)?;
        for record in self.buffer.drain(..) {
            run.append(&record)?;
        }
        self.governor.note_spill(self.buffered_bytes as u64);
        let registry = self.env.registry();
        registry.counter("saardb_sort_spills_total", &[]).inc();
        registry
            .counter("saardb_sort_spill_bytes_total", &[])
            .add(self.buffered_bytes as u64);
        self.buffered_bytes = 0;
        self.reservation.release_all();
        self.runs.push(run);
        Ok(())
    }

    /// Finishes and returns the records in sorted order.
    pub fn finish(mut self) -> Result<SortedRecords> {
        if self.runs.is_empty() {
            // Everything fit in memory: no merge needed. The reservation
            // moves into the iterator — the records stay accounted until
            // the consumer is done with them.
            let cmp = &self.cmp;
            self.buffer.sort_by(|a, b| cmp(a, b));
            return Ok(SortedRecords {
                memory: self.buffer.into_iter(),
                merge: None,
                _reservation: self.reservation,
            });
        }
        self.spill()?;
        Ok(SortedRecords {
            memory: Vec::new().into_iter(),
            merge: Some(MergeState::new(self.runs, self.cmp)?),
            _reservation: self.reservation,
        })
    }
}

/// Iterator over sorted records produced by [`ExternalSorter::finish`].
pub struct SortedRecords {
    memory: std::vec::IntoIter<Vec<u8>>,
    merge: Option<MergeState>,
    /// Keeps the in-memory records accounted against the governor until
    /// the iterator drops.
    _reservation: MemReservation,
}

impl Iterator for SortedRecords {
    type Item = Result<Vec<u8>>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some(merge) = &mut self.merge {
            return merge.next_record().transpose();
        }
        self.memory.next().map(Ok)
    }
}

/// K-way merge over spilled runs. Runs are few (dozens at most for the
/// Figure 7 workloads), so min-selection is a linear scan of run heads.
struct MergeState {
    /// `(run, head)` pairs; `head` is the next unconsumed record.
    runs: Vec<RunCursor>,
    cmp: RecordCmp,
}

struct RunCursor {
    /// Streams the run page-at-a-time and keeps its scratch file alive.
    records: crate::heap::OwnedScan,
    head: Option<Vec<u8>>,
}

impl RunCursor {
    fn step(&mut self) -> Result<()> {
        self.head = self.records.next().transpose()?;
        Ok(())
    }
}

impl MergeState {
    fn new(runs: Vec<HeapFile>, cmp: RecordCmp) -> Result<MergeState> {
        let mut cursors = Vec::with_capacity(runs.len());
        for heap in runs {
            let mut cursor = RunCursor {
                records: heap.into_scan(),
                head: None,
            };
            cursor.step()?;
            cursors.push(cursor);
        }
        Ok(MergeState { runs: cursors, cmp })
    }

    fn next_record(&mut self) -> Result<Option<Vec<u8>>> {
        let mut best: Option<usize> = None;
        for (i, run) in self.runs.iter().enumerate() {
            let Some(head) = &run.head else { continue };
            match best {
                None => best = Some(i),
                Some(b) => {
                    let best_head = self.runs[b].head.as_ref().expect("best has head");
                    if (self.cmp)(head, best_head) == Ordering::Less {
                        best = Some(i);
                    }
                }
            }
        }
        let Some(i) = best else { return Ok(None) };
        let run = &mut self.runs[i];
        let out = run.head.take();
        run.step()?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EnvConfig;

    #[test]
    fn in_memory_sort() {
        let env = Env::memory();
        let mut sorter = ExternalSorter::lexicographic(&env, 1 << 20);
        for rec in [b"cherry".to_vec(), b"apple".to_vec(), b"banana".to_vec()] {
            sorter.push(rec).unwrap();
        }
        assert_eq!(sorter.spilled_runs(), 0);
        let out: Vec<Vec<u8>> = sorter.finish().unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(
            out,
            vec![b"apple".to_vec(), b"banana".to_vec(), b"cherry".to_vec()]
        );
    }

    #[test]
    fn spilling_sort_merges_runs() {
        let env = Env::memory_with(EnvConfig {
            page_size: 512,
            pool_bytes: 32 * 512,
        });
        // Tiny budget forces many runs.
        let mut sorter = ExternalSorter::lexicographic(&env, 512);
        let n = 1000u32;
        for i in 0..n {
            // Scrambled order, fixed-width keys so byte order = numeric order.
            let v = (i * 7919 + 13) % n;
            sorter.push(format!("{v:08}").into_bytes()).unwrap();
        }
        assert!(
            sorter.spilled_runs() > 2,
            "expected spills, got {}",
            sorter.spilled_runs()
        );
        let out: Vec<Vec<u8>> = sorter.finish().unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(out.len(), n as usize);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
        // All inputs present exactly once ((i*7919+13) mod 1000 is a bijection
        // because gcd(7919, 1000) = 1).
        let expected: Vec<Vec<u8>> = (0..n).map(|i| format!("{i:08}").into_bytes()).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn custom_comparator_descending() {
        let env = Env::memory();
        let mut sorter = ExternalSorter::new(&env, 64, |a, b| b.cmp(a));
        for i in 0..100u32 {
            sorter
                .push(format!("{:04}", (i * 37) % 100).into_bytes())
                .unwrap();
        }
        let out: Vec<Vec<u8>> = sorter.finish().unwrap().map(|r| r.unwrap()).collect();
        assert!(out.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn duplicates_preserved() {
        let env = Env::memory();
        let mut sorter = ExternalSorter::lexicographic(&env, 32);
        for _ in 0..10 {
            sorter.push(b"same".to_vec()).unwrap();
        }
        let out: Vec<Vec<u8>> = sorter.finish().unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn empty_sorter() {
        let env = Env::memory();
        let sorter = ExternalSorter::lexicographic(&env, 1024);
        assert!(sorter.is_empty());
        assert_eq!(sorter.finish().unwrap().count(), 0);
    }

    #[test]
    fn governor_pressure_spills_instead_of_failing() {
        let env = Env::memory();
        // The sorter's own budget is generous; the governor's is not.
        let gov = Governor::with_limits(None, Some(400));
        let mut sorter = ExternalSorter::with_governor(&env, 1 << 20, gov.clone(), |a, b| a.cmp(b));
        for i in 0..200u32 {
            sorter
                .push(format!("{:08}", (i * 37) % 200).into_bytes())
                .unwrap();
        }
        assert!(sorter.spilled_runs() > 0, "governor pressure must spill");
        let out: Vec<Vec<u8>> = sorter.finish().unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(out.len(), 200);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
        let snap = gov.snapshot();
        assert!(snap.spill_count > 0);
        assert!(snap.spill_bytes > 0);
        assert!(
            snap.peak_bytes <= 400,
            "peak {} over budget",
            snap.peak_bytes
        );
        assert_eq!(gov.mem_used(), 0, "all reservations released");
    }

    #[test]
    fn oversized_record_fails_with_memory_exceeded() {
        let env = Env::memory();
        let gov = Governor::with_limits(None, Some(64));
        let mut sorter = ExternalSorter::with_governor(&env, 1 << 20, gov.clone(), |a, b| a.cmp(b));
        let err = sorter.push(vec![0u8; 1000]).unwrap_err();
        assert!(
            matches!(err, crate::StorageError::MemoryExceeded { budget: 64, .. }),
            "{err}"
        );
        drop(sorter);
        assert_eq!(gov.mem_used(), 0, "reservation released after failure");
    }

    #[test]
    fn in_memory_records_stay_accounted_until_iterator_drops() {
        let env = Env::memory();
        let gov = Governor::with_limits(None, Some(1 << 20));
        let mut sorter = ExternalSorter::with_governor(&env, 1 << 20, gov.clone(), |a, b| a.cmp(b));
        for i in 0..10u32 {
            sorter.push(format!("{i:04}").into_bytes()).unwrap();
        }
        let sorted = sorter.finish().unwrap();
        assert!(gov.mem_used() > 0, "in-memory results remain accounted");
        drop(sorted);
        assert_eq!(gov.mem_used(), 0);
    }

    #[test]
    fn temp_runs_cleaned_up() {
        let env = Env::memory();
        {
            let mut sorter = ExternalSorter::lexicographic(&env, 16);
            for i in 0..100u32 {
                sorter.push(format!("{i:06}").into_bytes()).unwrap();
            }
            let sorted = sorter.finish().unwrap();
            let out: Vec<std::result::Result<Vec<u8>, _>> = sorted.collect();
            assert_eq!(out.len(), 100);
        }
        // After the iterator drops, no run files remain registered: a fresh
        // temp file gets a fresh id and the env accepts it.
        let t = crate::TempFile::new(&env).unwrap();
        env.allocate_page(t.id()).unwrap();
    }
}
