//! Physical page stores: an on-disk file or an in-memory vector.
//!
//! Backends are deliberately dumb — fixed-size page reads/writes and
//! append-allocation. Caching, eviction and accounting live in the buffer
//! pool; structure lives in the B+-tree and heap-file layers.

use crate::error::StorageError;
use crate::page::PageId;
use crate::Result;
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};

/// A physical store of fixed-size pages.
pub trait Backend: Send + Sync {
    /// Reads page `id` into `buf` (`buf.len()` equals the page size).
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()>;

    /// Writes `buf` to page `id`.
    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()>;

    /// Appends a zeroed page and returns its id.
    fn allocate_page(&self) -> Result<PageId>;

    /// Number of pages in the store.
    fn page_count(&self) -> u64;

    /// Flushes to durable storage (no-op for memory).
    fn sync(&self) -> Result<()>;

    /// Path of the underlying file, if any.
    fn path(&self) -> Option<&Path> {
        None
    }
}

/// File-backed page store using positional I/O.
pub struct FileBackend {
    file: File,
    path: PathBuf,
    page_size: usize,
    /// Cached page count; protected so allocation is atomic.
    pages: Mutex<u64>,
}

impl FileBackend {
    /// Opens (creating if missing) the file at `path`.
    ///
    /// A length that is not a page multiple is the signature of a crash
    /// mid-extension (`allocate_page`'s `write_all_at` failing part-way):
    /// the torn tail is trimmed to whole pages instead of refusing the
    /// file — the partial page was never handed out, so no data is lost.
    pub fn open(path: &Path, page_size: usize) -> Result<FileBackend> {
        // Never truncate: opening an existing file must preserve its pages.
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        let torn = len % page_size as u64;
        if torn != 0 {
            file.set_len(len - torn)?;
        }
        Ok(FileBackend {
            file,
            path: path.to_path_buf(),
            page_size,
            pages: Mutex::new(len / page_size as u64),
        })
    }

    fn check_bounds(&self, id: PageId) -> Result<()> {
        let pages = *self.pages.lock();
        if id.0 >= pages {
            return Err(StorageError::PageOutOfBounds { page: id.0, pages });
        }
        Ok(())
    }

    fn check_buf(&self, buf: &[u8]) -> Result<()> {
        if buf.len() != self.page_size {
            return Err(StorageError::PageBufferSize {
                len: buf.len(),
                page_size: self.page_size,
            });
        }
        Ok(())
    }
}

impl Backend for FileBackend {
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.check_buf(buf)?;
        self.check_bounds(id)?;
        self.file.read_exact_at(buf, id.offset(self.page_size))?;
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.check_buf(buf)?;
        self.check_bounds(id)?;
        self.file.write_all_at(buf, id.offset(self.page_size))?;
        Ok(())
    }

    fn allocate_page(&self) -> Result<PageId> {
        use std::os::unix::fs::FileExt;
        let mut pages = self.pages.lock();
        let id = PageId(*pages);
        let zeros = vec![0u8; self.page_size];
        if let Err(e) = self.file.write_all_at(&zeros, id.offset(self.page_size)) {
            // A failed extension may leave a torn tail; trim it back to the
            // page boundary so the file stays openable (best effort — a
            // crash here is repaired by the round-down in `open`).
            let _ = self.file.set_len(id.offset(self.page_size));
            return Err(e.into());
        }
        *pages += 1;
        Ok(id)
    }

    fn page_count(&self) -> u64 {
        *self.pages.lock()
    }

    fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    fn path(&self) -> Option<&Path> {
        Some(&self.path)
    }
}

/// In-memory page store (testing, and the milestone-1 engine's scratch
/// space).
pub struct MemBackend {
    page_size: usize,
    pages: Mutex<Vec<Box<[u8]>>>,
}

impl MemBackend {
    /// Creates an empty in-memory store.
    pub fn new(page_size: usize) -> MemBackend {
        MemBackend {
            page_size,
            pages: Mutex::new(Vec::new()),
        }
    }
}

impl MemBackend {
    fn check_buf(&self, buf: &[u8]) -> Result<()> {
        if buf.len() != self.page_size {
            return Err(StorageError::PageBufferSize {
                len: buf.len(),
                page_size: self.page_size,
            });
        }
        Ok(())
    }
}

impl Backend for MemBackend {
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        self.check_buf(buf)?;
        let pages = self.pages.lock();
        let page = pages
            .get(id.0 as usize)
            .ok_or(StorageError::PageOutOfBounds {
                page: id.0,
                pages: pages.len() as u64,
            })?;
        buf.copy_from_slice(page);
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        self.check_buf(buf)?;
        let mut pages = self.pages.lock();
        let count = pages.len() as u64;
        let page = pages
            .get_mut(id.0 as usize)
            .ok_or(StorageError::PageOutOfBounds {
                page: id.0,
                pages: count,
            })?;
        page.copy_from_slice(buf);
        Ok(())
    }

    fn allocate_page(&self) -> Result<PageId> {
        let mut pages = self.pages.lock();
        let id = PageId(pages.len() as u64);
        pages.push(vec![0u8; self.page_size].into_boxed_slice());
        Ok(id)
    }

    fn page_count(&self) -> u64 {
        self.pages.lock().len() as u64
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(backend: &dyn Backend, page_size: usize) {
        assert_eq!(backend.page_count(), 0);
        let p0 = backend.allocate_page().unwrap();
        let p1 = backend.allocate_page().unwrap();
        assert_eq!((p0, p1), (PageId(0), PageId(1)));
        assert_eq!(backend.page_count(), 2);

        let mut buf = vec![0u8; page_size];
        buf[0] = 0xAB;
        buf[page_size - 1] = 0xCD;
        backend.write_page(p1, &buf).unwrap();

        let mut read = vec![0u8; page_size];
        backend.read_page(p1, &mut read).unwrap();
        assert_eq!(read, buf);

        backend.read_page(p0, &mut read).unwrap();
        assert!(read.iter().all(|&b| b == 0), "fresh pages are zeroed");

        assert!(matches!(
            backend.read_page(PageId(9), &mut read),
            Err(StorageError::PageOutOfBounds { page: 9, pages: 2 })
        ));

        // A buffer of the wrong size is a typed error, not a torn file or
        // a panic — and the page keeps its old content.
        let short = vec![0xEEu8; page_size / 2];
        assert!(matches!(
            backend.write_page(p1, &short),
            Err(StorageError::PageBufferSize { .. })
        ));
        let mut long = vec![0xEEu8; page_size + 1];
        assert!(matches!(
            backend.read_page(p1, &mut long),
            Err(StorageError::PageBufferSize { .. })
        ));
        backend.read_page(p1, &mut read).unwrap();
        assert_eq!(read, buf, "rejected writes must not change the page");

        backend.sync().unwrap();
    }

    #[test]
    fn mem_backend_roundtrip() {
        let b = MemBackend::new(512);
        exercise(&b, 512);
    }

    #[test]
    fn file_backend_roundtrip() {
        let dir = std::env::temp_dir().join(format!("saardb-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("backend-roundtrip.sdb");
        let _ = std::fs::remove_file(&path);
        {
            let b = FileBackend::open(&path, 512).unwrap();
            exercise(&b, 512);
        }
        // Reopen: data persists.
        {
            let b = FileBackend::open(&path, 512).unwrap();
            assert_eq!(b.page_count(), 2);
            let mut read = vec![0u8; 512];
            b.read_page(PageId(1), &mut read).unwrap();
            assert_eq!(read[0], 0xAB);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_backend_trims_torn_tail_on_open() {
        let dir = std::env::temp_dir().join(format!("saardb-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.sdb");
        // One whole page plus a torn 100-byte tail from a crashed
        // extension: the page survives, the tail is trimmed.
        let mut bytes = vec![0xABu8; 512];
        bytes.extend_from_slice(&[0u8; 100]);
        std::fs::write(&path, &bytes).unwrap();
        {
            let b = FileBackend::open(&path, 512).unwrap();
            assert_eq!(b.page_count(), 1);
            let mut read = vec![0u8; 512];
            b.read_page(PageId(0), &mut read).unwrap();
            assert_eq!(read[0], 0xAB);
        }
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 512);
        std::fs::remove_file(&path).unwrap();
    }
}
