//! The buffer pool: a fixed set of page frames shared by every file of an
//! environment, with clock (second-chance) eviction, pin counting and dirty
//! write-back.
//!
//! The pool's byte budget is the knob that models the paper's efficiency
//! tests ("we allowed only 20 MB of memory"): a query whose working set
//! exceeds the budget pays physical I/O, which is exactly what the cost
//! model must predict.
//!
//! ## Sharding
//!
//! The pool is split into up to [`MAX_SHARDS`] shards, each with its own
//! frame set, its own `Mutex<PoolState>` (frame table + pin counts) and its
//! own clock hand. A page's shard is fixed by `hash(file, page)`, so
//! concurrent engines — the testbed runs queries on worker threads against
//! clones of one environment — only contend when they touch pages that
//! land in the same shard, instead of serializing every access on one
//! global lock. Each shard keeps at least [`MIN_SHARD_FRAMES`] frames so
//! multi-page operations (B+-tree splits, overflow chains) can always pin
//! their working set no matter how the pages hash.

use crate::backend::Backend;
use crate::env::FileId;
use crate::error::StorageError;
use crate::page::PageId;
use crate::Result;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;
use xmldb_obs::{Counter, Registry};

/// Upper bound on the number of pool shards.
pub const MAX_SHARDS: usize = 16;

/// Minimum frames per shard (the old whole-pool floor, now per shard, so a
/// worst-case hash distribution still leaves room for a B+-tree split's
/// pinned working set).
pub const MIN_SHARD_FRAMES: usize = 8;

/// One shard's traffic counters, registered in the environment's metrics
/// registry under a `shard="<i>"` label. The shard increments its own
/// counters on the fetch path (no cross-shard contention beyond what the
/// seed had); [`IoStats::snapshot`] aggregates across shards.
#[derive(Clone)]
pub(crate) struct ShardStats {
    pub(crate) hits: Arc<Counter>,
    pub(crate) misses: Arc<Counter>,
    pub(crate) evictions: Arc<Counter>,
    pub(crate) physical_reads: Arc<Counter>,
    pub(crate) physical_writes: Arc<Counter>,
}

impl ShardStats {
    fn new(registry: &Registry, shard: usize) -> ShardStats {
        let s = shard.to_string();
        let labels: [(&str, &str); 1] = [("shard", &s)];
        ShardStats {
            hits: registry.counter("saardb_pool_hits_total", &labels),
            misses: registry.counter("saardb_pool_misses_total", &labels),
            evictions: registry.counter("saardb_pool_evictions_total", &labels),
            physical_reads: registry.counter("saardb_pool_physical_reads_total", &labels),
            physical_writes: registry.counter("saardb_pool_physical_writes_total", &labels),
        }
    }

    fn counters(&self) -> [&Counter; 5] {
        [
            &self.hits,
            &self.misses,
            &self.evictions,
            &self.physical_reads,
            &self.physical_writes,
        ]
    }
}

/// Counters describing pool and backend traffic since the last reset.
/// All counters are registry-backed: the same cells feed EXPLAIN ANALYZE
/// deltas, `saardb stats` and the testbed's efficiency reports — one
/// telemetry path. Per-shard counters (hits/misses/evictions/physical
/// I/O) live on the shards; this struct holds the pool- and WAL-level
/// ones plus handles for aggregation.
pub struct IoStats {
    shards: Vec<ShardStats>,
    /// Zero-copy B+-tree node views constructed over pinned frame bytes
    /// (read path only — one per page visited without materialization).
    pub node_views: Arc<Counter>,
    /// Binary searches executed in place against pinned frame bytes
    /// (internal-node descent steps and leaf probes).
    pub in_place_searches: Arc<Counter>,
    /// Shard-lock acquisitions on the page-fetch path (one per pin).
    pub shard_locks: Arc<Counter>,
    /// B+-tree node splits (leaf and internal) on the insert path.
    pub btree_splits: Arc<Counter>,
    /// WAL records appended (page images, commits, deletes).
    pub wal_appends: Arc<Counter>,
    /// Bytes appended to the WAL.
    pub wal_bytes: Arc<Counter>,
    /// WAL fsyncs issued (one per eviction steal, one per group-commit
    /// leader).
    pub wal_syncs: Arc<Counter>,
    /// Snapshot cuts that never stabilized: [`IoStats::snapshot`] gave up
    /// after its bounded retries and returned the last read. Non-zero is
    /// not an error — it means concurrent committers kept the counters
    /// moving for every retry — but a growing value says snapshots taken
    /// under load are best-effort cuts, not exact ones.
    pub snapshot_unstable: Arc<Counter>,
}

/// A point-in-time copy of [`IoStats`], aggregated across shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Pool hits.
    pub hits: u64,
    /// Pool misses (physical reads required).
    pub misses: u64,
    /// Frames whose previous occupant was displaced to load a new page.
    pub evictions: u64,
    /// Physical page reads.
    pub physical_reads: u64,
    /// Physical page writes.
    pub physical_writes: u64,
    /// Zero-copy node views constructed.
    pub node_views: u64,
    /// In-place binary searches over pinned frames.
    pub in_place_searches: u64,
    /// Shard-lock acquisitions on the fetch path.
    pub shard_locks: u64,
    /// B+-tree node splits.
    pub btree_splits: u64,
    /// WAL records appended.
    pub wal_appends: u64,
    /// Bytes appended to the WAL.
    pub wal_bytes: u64,
    /// WAL fsyncs issued.
    pub wal_syncs: u64,
}

/// Upper bound on double-read retries in [`stable_cut`]. Without a cap
/// the loop could spin unboundedly once concurrent committers keep the
/// counters moving on every pass (16 threads in a commit storm do exactly
/// that); with it, the cut degrades to best-effort and the caller counts
/// the give-up.
const STABLE_CUT_RETRIES: usize = 8;

/// Reads a value group until two consecutive passes agree — the "single
/// consistent cut" a snapshot needs. Returns the values and whether they
/// stabilized; after [`STABLE_CUT_RETRIES`] moving passes the last read
/// is returned with `false`.
fn stable_cut<const N: usize>(mut read: impl FnMut() -> [u64; N]) -> ([u64; N], bool) {
    let mut prev = read();
    for _ in 0..STABLE_CUT_RETRIES {
        let cur = read();
        if cur == prev {
            return (cur, true);
        }
        prev = cur;
    }
    (prev, false)
}

/// [`stable_cut`] over registry counters. The counters are monotonic
/// between resets, so pass `n` equalling pass `n+1` proves no increment
/// landed between the two passes and the group is internally consistent
/// (a field-by-field read could pair a post-query `misses` with a
/// pre-query `physical_reads` torn by a concurrent engine). A cut that
/// never stabilizes bumps `unstable` and falls back to the last read.
fn read_stable<const N: usize>(counters: [&Counter; N], unstable: &Counter) -> [u64; N] {
    let (vals, stable) = stable_cut(|| counters.map(Counter::get));
    if !stable {
        unstable.inc();
    }
    vals
}

impl IoStats {
    /// Creates the counter set in `registry`, one shard group per pool
    /// shard.
    pub(crate) fn new(registry: &Registry, nshards: usize) -> IoStats {
        registry.help(
            "saardb_pool_hits_total",
            "Page requests satisfied from the buffer pool.",
        );
        registry.help(
            "saardb_pool_misses_total",
            "Page requests that required a physical read.",
        );
        registry.help(
            "saardb_pool_evictions_total",
            "Pool frames whose occupant was displaced for a new page.",
        );
        registry.help(
            "saardb_btree_node_views_total",
            "Zero-copy B+-tree node views over pinned frames.",
        );
        registry.help(
            "saardb_btree_splits_total",
            "B+-tree node splits (leaf and internal).",
        );
        registry.help(
            "saardb_wal_appends_total",
            "WAL records appended (page images, commits, deletes).",
        );
        registry.help(
            "saardb_snapshot_unstable_total",
            "I/O-counter snapshots that fell back to a best-effort cut.",
        );
        IoStats {
            shards: (0..nshards.max(1))
                .map(|i| ShardStats::new(registry, i))
                .collect(),
            node_views: registry.counter("saardb_btree_node_views_total", &[]),
            in_place_searches: registry.counter("saardb_btree_in_place_searches_total", &[]),
            shard_locks: registry.counter("saardb_pool_shard_locks_total", &[]),
            btree_splits: registry.counter("saardb_btree_splits_total", &[]),
            wal_appends: registry.counter("saardb_wal_appends_total", &[]),
            wal_bytes: registry.counter("saardb_wal_bytes_total", &[]),
            wal_syncs: registry.counter("saardb_wal_syncs_total", &[]),
            snapshot_unstable: registry.counter("saardb_snapshot_unstable_total", &[]),
        }
    }

    /// Takes a consistent snapshot: one stable read pass per counter
    /// group (each shard, the read-path group, the WAL group) instead of
    /// field-by-field reads that can tear against concurrent queries.
    pub fn snapshot(&self) -> IoSnapshot {
        let unstable = &*self.snapshot_unstable;
        let mut snap = IoSnapshot::default();
        for shard in &self.shards {
            let [hits, misses, evictions, reads, writes] = read_stable(shard.counters(), unstable);
            snap.hits += hits;
            snap.misses += misses;
            snap.evictions += evictions;
            snap.physical_reads += reads;
            snap.physical_writes += writes;
        }
        let [node_views, in_place_searches, shard_locks, btree_splits] = read_stable(
            [
                &*self.node_views,
                &*self.in_place_searches,
                &*self.shard_locks,
                &*self.btree_splits,
            ],
            unstable,
        );
        snap.node_views = node_views;
        snap.in_place_searches = in_place_searches;
        snap.shard_locks = shard_locks;
        snap.btree_splits = btree_splits;
        let [wal_appends, wal_bytes, wal_syncs] = read_stable(
            [&*self.wal_appends, &*self.wal_bytes, &*self.wal_syncs],
            unstable,
        );
        snap.wal_appends = wal_appends;
        snap.wal_bytes = wal_bytes;
        snap.wal_syncs = wal_syncs;
        snap
    }

    /// Zeroes all counters.
    pub fn reset(&self) {
        for shard in &self.shards {
            for c in shard.counters() {
                c.reset();
            }
        }
        for c in [
            &self.node_views,
            &self.in_place_searches,
            &self.shard_locks,
            &self.btree_splits,
            &self.wal_appends,
            &self.wal_bytes,
            &self.wal_syncs,
            &self.snapshot_unstable,
        ] {
            c.reset();
        }
    }

    pub(crate) fn note_node_view(&self) {
        self.node_views.inc();
    }

    pub(crate) fn note_in_place_search(&self) {
        self.in_place_searches.inc();
    }

    pub(crate) fn note_split(&self) {
        self.btree_splits.inc();
    }
}

impl std::fmt::Debug for IoStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoStats")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

impl IoSnapshot {
    /// Total logical page requests.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]`; 1.0 when there were no requests.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.requests();
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter-wise difference `self − earlier`, saturating at zero — the
    /// per-query I/O attribution used by EXPLAIN ANALYZE (snapshot before,
    /// snapshot after, delta). Saturation matters when another handle
    /// resets the shared counters between the two snapshots.
    pub fn delta(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            physical_reads: self.physical_reads.saturating_sub(earlier.physical_reads),
            physical_writes: self.physical_writes.saturating_sub(earlier.physical_writes),
            node_views: self.node_views.saturating_sub(earlier.node_views),
            in_place_searches: self
                .in_place_searches
                .saturating_sub(earlier.in_place_searches),
            shard_locks: self.shard_locks.saturating_sub(earlier.shard_locks),
            btree_splits: self.btree_splits.saturating_sub(earlier.btree_splits),
            wal_appends: self.wal_appends.saturating_sub(earlier.wal_appends),
            wal_bytes: self.wal_bytes.saturating_sub(earlier.wal_bytes),
            wal_syncs: self.wal_syncs.saturating_sub(earlier.wal_syncs),
        }
    }
}

/// Access mode for a page fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// Read-only access.
    Read,
    /// Mutating access (marks the frame dirty).
    Write,
}

#[derive(Debug)]
struct FrameMeta {
    tag: Option<(FileId, PageId)>,
    pin: u32,
    refbit: bool,
    dirty: bool,
}

struct PoolState {
    metas: Vec<FrameMeta>,
    table: HashMap<(FileId, PageId), usize>,
    clock: usize,
}

/// One pool shard: a private frame set behind a private lock with its own
/// clock hand.
struct Shard {
    state: Mutex<PoolState>,
    /// Frame contents. Indexed in lockstep with `PoolState::metas`.
    data: Vec<RwLock<Box<[u8]>>>,
    /// This shard's registry-backed traffic counters.
    stats: ShardStats,
}

/// The environment services the pool needs on the write-back path:
/// backend resolution plus write-ahead logging. The WAL hooks enforce
/// *WAL-before-steal*: a dirty page's before/after images must be durable
/// in the log before the page overwrites its slot in the data file.
/// Environments without a WAL (in-memory) implement the hooks as no-ops.
pub(crate) trait PoolIo {
    /// Resolves a [`FileId`] to its backend.
    fn backend(&self, file: FileId) -> Result<Arc<dyn Backend>>;

    /// Appends `after` (and the page's current on-disk content as the
    /// before-image) to the WAL. Not yet durable — see [`PoolIo::wal_sync`].
    fn wal_page_image(&self, file: FileId, page: PageId, after: &[u8]) -> Result<()>;

    /// Forces appended WAL records to durable storage.
    fn wal_sync(&self) -> Result<()>;
}

/// Plain resolvers (tests, scratch pools) get no-op WAL hooks.
impl<F> PoolIo for F
where
    F: Fn(FileId) -> Result<Arc<dyn Backend>>,
{
    fn backend(&self, file: FileId) -> Result<Arc<dyn Backend>> {
        self(file)
    }

    fn wal_page_image(&self, _file: FileId, _page: PageId, _after: &[u8]) -> Result<()> {
        Ok(())
    }

    fn wal_sync(&self) -> Result<()> {
        Ok(())
    }
}

/// The buffer pool. See module docs.
pub struct BufferPool {
    shards: Vec<Shard>,
    page_size: usize,
    stats: IoStats,
}

/// Number of shards for a pool of `capacity` frames: the largest power of
/// two that still leaves [`MIN_SHARD_FRAMES`] frames per shard, capped at
/// [`MAX_SHARDS`].
fn shard_count(capacity: usize) -> usize {
    let mut n = 1;
    while n * 2 * MIN_SHARD_FRAMES <= capacity && n * 2 <= MAX_SHARDS {
        n *= 2;
    }
    n
}

impl BufferPool {
    /// Creates a pool of `capacity` frames of `page_size` bytes, split into
    /// shards (see module docs). Capacity is clamped to at least
    /// [`MIN_SHARD_FRAMES`] frames. Counters land in a private registry;
    /// environments that expose metrics use [`BufferPool::with_registry`].
    pub fn new(capacity: usize, page_size: usize) -> BufferPool {
        BufferPool::with_registry(capacity, page_size, &Registry::new())
    }

    /// Creates a pool whose counters are registered in `registry` (the
    /// counter cells stay alive through the pool's `Arc` handles even if
    /// the registry is dropped first).
    pub fn with_registry(capacity: usize, page_size: usize, registry: &Registry) -> BufferPool {
        let capacity = capacity.max(MIN_SHARD_FRAMES);
        let nshards = shard_count(capacity);
        let stats = IoStats::new(registry, nshards);
        let shards = (0..nshards)
            .map(|i| {
                // Distribute frames as evenly as possible; the remainder
                // goes to the first shards.
                let frames = capacity / nshards + usize::from(i < capacity % nshards);
                Shard {
                    state: Mutex::new(PoolState {
                        metas: (0..frames)
                            .map(|_| FrameMeta {
                                tag: None,
                                pin: 0,
                                refbit: false,
                                dirty: false,
                            })
                            .collect(),
                        table: HashMap::new(),
                        clock: 0,
                    }),
                    data: (0..frames)
                        .map(|_| RwLock::new(vec![0u8; page_size].into_boxed_slice()))
                        .collect(),
                    stats: stats.shards[i].clone(),
                }
            })
            .collect();
        BufferPool {
            shards,
            page_size,
            stats,
        }
    }

    /// Number of frames across all shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.data.len()).sum()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Traffic counters.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// The shard holding `(file, page)`. Fibonacci multiplicative hash over
    /// the page id with the file id folded in; shard counts are powers of
    /// two, so the top bits mask cleanly.
    fn shard_of(&self, file: FileId, page: PageId) -> usize {
        let n = self.shards.len();
        if n == 1 {
            return 0;
        }
        let h = (page.0 ^ ((file.0 as u64) << 40)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) as usize) & (n - 1)
    }

    /// Runs `f` on the read-only contents of `(file, page)`, faulting it in
    /// if necessary. Takes the frame's *read* lock, so concurrent readers
    /// of the same hot page (e.g. an index root) proceed in parallel;
    /// writers are excluded by the `RwLock`, and eviction cannot touch the
    /// frame while the pin is held.
    pub(crate) fn with_frame_read<R>(
        &self,
        file: FileId,
        page: PageId,
        io: &dyn PoolIo,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        let pin = PinGuard::new(self, self.acquire(file, page, AccessMode::Read, io)?);
        let result = {
            let guard = self.shards[pin.shard].data[pin.idx].read();
            f(&guard)
        };
        Ok(result)
    }

    /// Runs `f` on the mutable contents of `(file, page)`, faulting it in
    /// if necessary and marking the frame dirty.
    pub(crate) fn with_frame_write<R>(
        &self,
        file: FileId,
        page: PageId,
        io: &dyn PoolIo,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R> {
        let pin = PinGuard::new(self, self.acquire(file, page, AccessMode::Write, io)?);
        // Frame data lock is only ever contended by another fetch of the
        // same page; the shard lock is not held here.
        let result = {
            let mut guard = self.shards[pin.shard].data[pin.idx].write();
            f(&mut guard)
        };
        Ok(result)
    }

    /// Pins the frame holding `(file, page)`, loading it on a miss. Returns
    /// `(shard, frame)` with `pin` already incremented.
    fn acquire(
        &self,
        file: FileId,
        page: PageId,
        mode: AccessMode,
        io: &dyn PoolIo,
    ) -> Result<(usize, usize)> {
        // Page acquires are the structural choke point every
        // storage-touching engine passes through: check the thread's
        // installed governor here so cancellation and deadlines reach even
        // code that never sees an `ExecContext` (B+-tree descents, the
        // XASR axis cursors, recovery replays nothing — it runs before any
        // governor is installed).
        crate::governor::Governor::check_current()?;
        let shard_idx = self.shard_of(file, page);
        let shard = &self.shards[shard_idx];
        self.stats.shard_locks.inc();
        let mut state = shard.state.lock();
        if let Some(&idx) = state.table.get(&(file, page)) {
            let meta = &mut state.metas[idx];
            meta.pin += 1;
            meta.refbit = true;
            if mode == AccessMode::Write {
                meta.dirty = true;
            }
            shard.stats.hits.inc();
            return Ok((shard_idx, idx));
        }
        shard.stats.misses.inc();
        let idx = find_victim(&mut state)?;

        // Write back the victim while still holding the shard lock, so no
        // other fetch can read stale bytes for the evicted page. This is a
        // *steal* — the page may carry uncommitted changes — so its images
        // must be durable in the WAL before the data file is touched.
        let old = state.metas[idx].tag;
        if let Some((old_file, old_page)) = old {
            if state.metas[idx].dirty {
                let backend = io.backend(old_file)?;
                let data = shard.data[idx].read();
                io.wal_page_image(old_file, old_page, &data)?;
                io.wal_sync()?;
                backend.write_page(old_page, &data)?;
                shard.stats.physical_writes.inc();
            }
            state.table.remove(&(old_file, old_page));
            shard.stats.evictions.inc();
        }

        // Claim the frame and load under the shard lock: holding the lock
        // keeps this shard's table exact, and only this shard is blocked.
        {
            let backend = io.backend(file)?;
            let mut data = shard.data[idx].write();
            backend.read_page(page, &mut data)?;
            shard.stats.physical_reads.inc();
        }
        state.table.insert((file, page), idx);
        let meta = &mut state.metas[idx];
        meta.tag = Some((file, page));
        meta.pin = 1;
        meta.refbit = true;
        meta.dirty = mode == AccessMode::Write;
        Ok((shard_idx, idx))
    }

    fn release(&self, shard: usize, idx: usize) {
        let mut state = self.shards[shard].state.lock();
        let meta = &mut state.metas[idx];
        debug_assert!(meta.pin > 0, "release of unpinned frame");
        meta.pin -= 1;
    }

    /// Writes back every dirty frame and syncs the touched files.
    ///
    /// All shard locks are held for the duration so no frame can be
    /// re-dirtied mid-flush, which makes the dirty-bit protocol sound: a
    /// frame's dirty bit is cleared only once the owning file's
    /// `Backend::sync` has returned `Ok` (clearing it after the write but
    /// before the sync would make a retried flush skip the page and lose
    /// the write if the first sync failed). Frames that are still pinned
    /// (an operator may be mid-mutation) are written back but stay dirty.
    ///
    /// WAL ordering: every dirty page's images are appended first and
    /// synced with a single fsync, and only then do the data-file writes
    /// begin.
    pub(crate) fn flush(&self, io: &dyn PoolIo) -> Result<()> {
        let mut states: Vec<_> = self.shards.iter().map(|s| s.state.lock()).collect();

        // Phase 1: log every dirty page, then force the log once.
        let mut logged = false;
        for (si, shard) in self.shards.iter().enumerate() {
            for idx in 0..states[si].metas.len() {
                let meta = &states[si].metas[idx];
                if let (Some((file, page)), true) = (meta.tag, meta.dirty) {
                    let data = shard.data[idx].read();
                    io.wal_page_image(file, page, &data)?;
                    logged = true;
                }
            }
        }
        if logged {
            io.wal_sync()?;
        }

        // Phase 2: write every dirty page, grouping frames by file.
        let mut by_file: HashMap<FileId, Vec<(usize, usize)>> = HashMap::new();
        for (si, shard) in self.shards.iter().enumerate() {
            for idx in 0..states[si].metas.len() {
                let meta = &states[si].metas[idx];
                if let (Some((file, page)), true) = (meta.tag, meta.dirty) {
                    let backend = io.backend(file)?;
                    let data = shard.data[idx].read();
                    backend.write_page(page, &data)?;
                    shard.stats.physical_writes.inc();
                    by_file.entry(file).or_default().push((si, idx));
                }
            }
        }

        // Phase 3: per file, sync — and only on success clear the dirty
        // bits of the frames written for that file.
        for (file, frames) in by_file {
            io.backend(file)?.sync()?;
            for (si, idx) in frames {
                let meta = &mut states[si].metas[idx];
                if meta.pin == 0 {
                    meta.dirty = false;
                }
            }
        }
        Ok(())
    }

    /// Drops every frame belonging to `file` without write-back (the file
    /// is being removed). Refuses with [`StorageError::FileBusy`] if any of
    /// the file's frames is still pinned — silently unmapping a page
    /// another operator holds would hand it a frame whose identity can
    /// change under it. All shard locks are held together so the
    /// pinned-check and the unmapping are one atomic step.
    pub(crate) fn invalidate_file(&self, file: FileId) -> Result<()> {
        // Lock shards in index order (the only place multiple shard locks
        // are held at once, so lock ordering is trivially consistent).
        let mut states: Vec<_> = self.shards.iter().map(|s| s.state.lock()).collect();
        let pinned = states
            .iter()
            .flat_map(|state| state.metas.iter())
            .filter(|m| matches!(m.tag, Some((f, _)) if f == file) && m.pin > 0)
            .count();
        if pinned > 0 {
            return Err(StorageError::FileBusy {
                file: format!("{file}"),
                pinned,
            });
        }
        for state in &mut states {
            for idx in 0..state.metas.len() {
                if matches!(state.metas[idx].tag, Some((f, _)) if f == file) {
                    if let Some(tag) = state.metas[idx].tag.take() {
                        state.table.remove(&tag);
                    }
                    state.metas[idx].dirty = false;
                    state.metas[idx].refbit = false;
                }
            }
        }
        Ok(())
    }

    /// Page size of frames in this pool.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of frames with a non-zero pin count across all shards.
    /// Zero whenever no operation is in flight — the cancellation-torture
    /// sweep asserts this after every cancelled query to prove no pin
    /// leaked on the unwind path.
    pub fn pinned_frames(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.state.lock().metas.iter().filter(|m| m.pin > 0).count())
            .sum()
    }
}

/// Unpins a frame on drop, so `with_frame_read`/`with_frame_write` release
/// their pin even when the caller's closure panics (a crashing engine must
/// not leave the pool with stuck pins — `catch_unwind` in the testbed
/// relies on this to keep the pool usable after a `Crashed` submission).
struct PinGuard<'a> {
    pool: &'a BufferPool,
    shard: usize,
    idx: usize,
}

impl<'a> PinGuard<'a> {
    fn new(pool: &'a BufferPool, (shard, idx): (usize, usize)) -> PinGuard<'a> {
        PinGuard { pool, shard, idx }
    }
}

impl Drop for PinGuard<'_> {
    fn drop(&mut self) {
        self.pool.release(self.shard, self.idx);
    }
}

/// Clock (second-chance) victim selection among one shard's unpinned
/// frames.
fn find_victim(state: &mut PoolState) -> Result<usize> {
    let n = state.metas.len();
    // Two sweeps: the first clears reference bits, the second takes the
    // first unpinned frame.
    for _ in 0..2 * n {
        let idx = state.clock;
        state.clock = (state.clock + 1) % n;
        let meta = &mut state.metas[idx];
        if meta.pin > 0 {
            continue;
        }
        if meta.tag.is_none() {
            return Ok(idx);
        }
        if meta.refbit {
            meta.refbit = false;
        } else {
            return Ok(idx);
        }
    }
    Err(StorageError::PoolExhausted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    const PS: usize = 256;

    fn setup(pool_frames: usize) -> (BufferPool, Arc<dyn Backend>) {
        let pool = BufferPool::new(pool_frames, PS);
        let backend: Arc<dyn Backend> = Arc::new(MemBackend::new(PS));
        (pool, backend)
    }

    fn resolver(backend: &Arc<dyn Backend>) -> impl Fn(FileId) -> Result<Arc<dyn Backend>> + '_ {
        move |_| Ok(Arc::clone(backend))
    }

    #[test]
    fn read_after_write_roundtrips() {
        let (pool, backend) = setup(8);
        let r = resolver(&backend);
        let f = FileId(0);
        let p = backend.allocate_page().unwrap();
        pool.with_frame_write(f, p, &r, |data| data[0] = 42)
            .unwrap();
        let v = pool.with_frame_read(f, p, &r, |data| data[0]).unwrap();
        assert_eq!(v, 42);
        let snap = pool.stats().snapshot();
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.hits, 1);
        assert_eq!(snap.shard_locks, 2, "one shard-lock acquisition per pin");
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (pool, backend) = setup(8); // clamped min is 8
        let r = resolver(&backend);
        let f = FileId(0);
        let pages: Vec<PageId> = (0..20).map(|_| backend.allocate_page().unwrap()).collect();
        for (i, &p) in pages.iter().enumerate() {
            pool.with_frame_write(f, p, &r, |data| data[0] = i as u8)
                .unwrap();
        }
        // All 20 pages were written through a pool of 8 frames; re-reading
        // each must see its value (write-back on eviction + reload).
        for (i, &p) in pages.iter().enumerate() {
            let v = pool.with_frame_read(f, p, &r, |data| data[0]).unwrap();
            assert_eq!(v, i as u8, "page {p}");
        }
    }

    #[test]
    fn flush_persists_without_eviction() {
        let (pool, backend) = setup(8);
        let r = resolver(&backend);
        let f = FileId(0);
        let p = backend.allocate_page().unwrap();
        pool.with_frame_write(f, p, &r, |d| d[0] = 7).unwrap();
        // Backend still has zeros (no eviction yet).
        let mut raw = vec![0u8; PS];
        backend.read_page(p, &mut raw).unwrap();
        assert_eq!(raw[0], 0);
        pool.flush(&r).unwrap();
        backend.read_page(p, &mut raw).unwrap();
        assert_eq!(raw[0], 7);
    }

    #[test]
    fn hit_ratio_accounting() {
        let (pool, backend) = setup(8);
        let r = resolver(&backend);
        let f = FileId(0);
        let p = backend.allocate_page().unwrap();
        for _ in 0..9 {
            pool.with_frame_read(f, p, &r, |_| ()).unwrap();
        }
        let snap = pool.stats().snapshot();
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.hits, 8);
        assert!((snap.hit_ratio() - 8.0 / 9.0).abs() < 1e-9);
        pool.stats().reset();
        assert_eq!(pool.stats().snapshot(), IoSnapshot::default());
    }

    #[test]
    fn invalidate_file_forgets_frames() {
        let (pool, backend) = setup(8);
        let r = resolver(&backend);
        let f = FileId(3);
        let p = backend.allocate_page().unwrap();
        pool.with_frame_write(f, p, &r, |d| d[0] = 9).unwrap();
        pool.invalidate_file(f).unwrap();
        // Refetch misses and reads from the backend (which has zeros, since
        // the dirty frame was dropped, not flushed).
        let v = pool.with_frame_read(f, p, &r, |d| d[0]).unwrap();
        assert_eq!(v, 0);
        assert_eq!(pool.stats().snapshot().misses, 2);
    }

    #[test]
    fn capacity_clamped_to_minimum() {
        let pool = BufferPool::new(1, PS);
        assert_eq!(pool.capacity(), 8);
        assert_eq!(pool.shard_count(), 1);
    }

    #[test]
    fn sharding_scales_with_capacity() {
        // 8 frames per shard minimum: 64 frames → 8 shards, 512 → capped
        // at MAX_SHARDS; capacity is preserved exactly in every case.
        for (frames, shards) in [(8, 1), (15, 1), (16, 2), (64, 8), (512, 16), (513, 16)] {
            let pool = BufferPool::new(frames, PS);
            assert_eq!(pool.capacity(), frames, "{frames} frames");
            assert_eq!(pool.shard_count(), shards, "{frames} frames");
        }
    }

    #[test]
    fn pages_spread_across_shards() {
        let (pool, backend) = setup(128); // 16 shards of 8
        assert_eq!(pool.shard_count(), 16);
        let r = resolver(&backend);
        let f = FileId(0);
        // 64 distinct pages must not all land in one 8-frame shard; with
        // everything resident, re-reads are all hits.
        let pages: Vec<PageId> = (0..64).map(|_| backend.allocate_page().unwrap()).collect();
        for &p in &pages {
            pool.with_frame_write(f, p, &r, |d| d[0] = (p.0 & 0xFF) as u8)
                .unwrap();
        }
        for &p in &pages {
            let v = pool.with_frame_read(f, p, &r, |d| d[0]).unwrap();
            assert_eq!(v, (p.0 & 0xFF) as u8);
        }
        let snap = pool.stats().snapshot();
        assert_eq!(snap.physical_writes, 0, "64 pages fit a 128-frame pool");
        assert_eq!(snap.hits, 64);
    }

    #[test]
    fn invalidate_file_refuses_pinned_frames() {
        let (pool, backend) = setup(8);
        let r = resolver(&backend);
        let f = FileId(5);
        let p = backend.allocate_page().unwrap();
        let (shard, idx) = pool.acquire(f, p, AccessMode::Read, &r).unwrap();
        let err = pool.invalidate_file(f).unwrap_err();
        assert!(
            matches!(err, StorageError::FileBusy { pinned: 1, .. }),
            "unexpected error: {err}"
        );
        pool.release(shard, idx);
        pool.invalidate_file(f).unwrap();
        // Frame was unmapped: the next fetch is a miss.
        pool.with_frame_read(f, p, &r, |_| ()).unwrap();
        assert_eq!(pool.stats().snapshot().misses, 2);
    }

    #[test]
    fn panicking_closure_releases_its_pin() {
        let (pool, backend) = setup(8);
        let r = resolver(&backend);
        let f = FileId(0);
        let p = backend.allocate_page().unwrap();
        pool.with_frame_write(f, p, &r, |d| d[0] = 1).unwrap();
        assert_eq!(pool.pinned_frames(), 0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.with_frame_read(f, p, &r, |_| panic!("engine bug"))
        }));
        assert!(result.is_err());
        // The pin was released during unwinding: the file can still be
        // invalidated and the pool reports no stuck pins.
        assert_eq!(pool.pinned_frames(), 0);
        pool.invalidate_file(f).unwrap();
    }

    #[test]
    fn acquire_honors_installed_governor() {
        use crate::governor::Governor;
        let (pool, backend) = setup(8);
        let r = resolver(&backend);
        let f = FileId(0);
        let p = backend.allocate_page().unwrap();
        let gov = Governor::unlimited();
        let _scope = gov.install();
        pool.with_frame_read(f, p, &r, |_| ()).unwrap();
        gov.cancel();
        let err = pool.with_frame_read(f, p, &r, |_| ()).unwrap_err();
        assert!(matches!(err, StorageError::Cancelled), "{err}");
        assert_eq!(pool.pinned_frames(), 0);
    }

    #[test]
    fn stable_cut_converges_on_quiet_counters() {
        let (vals, stable) = stable_cut(|| [1u64, 2, 3]);
        assert!(stable);
        assert_eq!(vals, [1, 2, 3]);
    }

    #[test]
    fn stable_cut_is_bounded_under_constant_motion() {
        // Regression: a counter that moves on every pass must not spin the
        // snapshot forever — the cut gives up after its retry cap and
        // reports instability.
        let mut ticks = 0u64;
        let (vals, stable) = stable_cut(|| {
            ticks += 1;
            [ticks]
        });
        assert!(!stable);
        assert_eq!(ticks, STABLE_CUT_RETRIES as u64 + 1);
        assert_eq!(vals, [ticks], "falls back to the last read");
    }

    #[test]
    fn unstable_snapshot_bumps_counter() {
        let pool = BufferPool::new(8, PS);
        let c = Counter::default();
        // Quiet counters: no instability recorded.
        read_stable([&pool.stats().wal_syncs], &c);
        assert_eq!(c.get(), 0);
        // A group that moves under the reader records the give-up.
        let moving = Counter::default();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    moving.inc();
                }
            });
            for _ in 0..64 {
                read_stable([&moving], &c);
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        // A tight incrementer on another core almost always outruns 8
        // retry passes at least once in 64 snapshots; but even if it never
        // does, the snapshot terminated — which is the property under test.
        assert!(c.get() <= 64);
    }

    #[test]
    fn snapshot_delta_is_per_interval() {
        let (pool, backend) = setup(8);
        let r = resolver(&backend);
        let f = FileId(0);
        let p = backend.allocate_page().unwrap();
        pool.with_frame_read(f, p, &r, |_| ()).unwrap();
        let before = pool.stats().snapshot();
        pool.with_frame_read(f, p, &r, |_| ()).unwrap();
        pool.with_frame_read(f, p, &r, |_| ()).unwrap();
        let d = pool.stats().snapshot().delta(&before);
        assert_eq!(
            d,
            IoSnapshot {
                hits: 2,
                shard_locks: 2,
                ..IoSnapshot::default()
            }
        );
        // Saturates instead of underflowing if counters were reset between
        // the snapshots.
        pool.stats().reset();
        assert_eq!(
            pool.stats().snapshot().delta(&before),
            IoSnapshot::default()
        );
    }
}
