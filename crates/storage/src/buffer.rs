//! The buffer pool: a fixed set of page frames shared by every file of an
//! environment, with clock (second-chance) eviction, pin counting and dirty
//! write-back.
//!
//! The pool's byte budget is the knob that models the paper's efficiency
//! tests ("we allowed only 20 MB of memory"): a query whose working set
//! exceeds the budget pays physical I/O, which is exactly what the cost
//! model must predict.

use crate::backend::Backend;
use crate::env::FileId;
use crate::error::StorageError;
use crate::page::PageId;
use crate::Result;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters describing pool and backend traffic since the last reset.
#[derive(Debug, Default)]
pub struct IoStats {
    /// Page requests satisfied from the pool.
    pub hits: AtomicU64,
    /// Page requests that required a physical read.
    pub misses: AtomicU64,
    /// Physical page reads issued to backends.
    pub physical_reads: AtomicU64,
    /// Physical page writes issued to backends.
    pub physical_writes: AtomicU64,
}

/// A point-in-time copy of [`IoStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Pool hits.
    pub hits: u64,
    /// Pool misses (physical reads required).
    pub misses: u64,
    /// Physical page reads.
    pub physical_reads: u64,
    /// Physical page writes.
    pub physical_writes: u64,
}

impl IoStats {
    /// Takes a snapshot of the counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            physical_reads: self.physical_reads.load(Ordering::Relaxed),
            physical_writes: self.physical_writes.load(Ordering::Relaxed),
        }
    }

    /// Zeroes all counters.
    pub fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.physical_reads.store(0, Ordering::Relaxed);
        self.physical_writes.store(0, Ordering::Relaxed);
    }
}

impl IoSnapshot {
    /// Total logical page requests.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]`; 1.0 when there were no requests.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.requests();
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter-wise difference `self − earlier`, saturating at zero — the
    /// per-query I/O attribution used by EXPLAIN ANALYZE (snapshot before,
    /// snapshot after, delta). Saturation matters when another handle
    /// resets the shared counters between the two snapshots.
    pub fn delta(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            physical_reads: self.physical_reads.saturating_sub(earlier.physical_reads),
            physical_writes: self.physical_writes.saturating_sub(earlier.physical_writes),
        }
    }
}

/// Access mode for a page fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// Read-only access.
    Read,
    /// Mutating access (marks the frame dirty).
    Write,
}

#[derive(Debug)]
struct FrameMeta {
    tag: Option<(FileId, PageId)>,
    pin: u32,
    refbit: bool,
    dirty: bool,
}

struct PoolState {
    metas: Vec<FrameMeta>,
    table: HashMap<(FileId, PageId), usize>,
    clock: usize,
}

/// Resolves a [`FileId`] to its backend; provided by the environment so the
/// pool can write back dirty victims belonging to any file.
pub(crate) type Resolver<'a> = dyn Fn(FileId) -> Result<Arc<dyn Backend>> + 'a;

/// The buffer pool. See module docs.
pub struct BufferPool {
    state: Mutex<PoolState>,
    /// Frame contents. Indexed in lockstep with `PoolState::metas`.
    data: Vec<Arc<RwLock<Box<[u8]>>>>,
    page_size: usize,
    stats: IoStats,
}

impl BufferPool {
    /// Creates a pool of `capacity` frames of `page_size` bytes. Capacity is
    /// clamped to at least 8 frames so multi-page operations (B+-tree
    /// splits) can always pin their working set.
    pub fn new(capacity: usize, page_size: usize) -> BufferPool {
        let capacity = capacity.max(8);
        let metas = (0..capacity)
            .map(|_| FrameMeta {
                tag: None,
                pin: 0,
                refbit: false,
                dirty: false,
            })
            .collect();
        let data = (0..capacity)
            .map(|_| Arc::new(RwLock::new(vec![0u8; page_size].into_boxed_slice())))
            .collect();
        BufferPool {
            state: Mutex::new(PoolState {
                metas,
                table: HashMap::new(),
                clock: 0,
            }),
            data,
            page_size,
            stats: IoStats::default(),
        }
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Traffic counters.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Runs `f` on the read-only contents of `(file, page)`, faulting it in
    /// if necessary. Takes the frame's *read* lock, so concurrent readers
    /// of the same hot page (e.g. an index root) proceed in parallel;
    /// writers are excluded by the `RwLock`, and eviction cannot touch the
    /// frame while the pin is held.
    pub(crate) fn with_frame_read<R>(
        &self,
        file: FileId,
        page: PageId,
        resolve: &Resolver<'_>,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        let idx = self.acquire(file, page, AccessMode::Read, resolve)?;
        let result = {
            let guard = self.data[idx].read();
            f(&guard)
        };
        self.release(idx);
        Ok(result)
    }

    /// Runs `f` on the mutable contents of `(file, page)`, faulting it in
    /// if necessary and marking the frame dirty.
    pub(crate) fn with_frame_write<R>(
        &self,
        file: FileId,
        page: PageId,
        resolve: &Resolver<'_>,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R> {
        let idx = self.acquire(file, page, AccessMode::Write, resolve)?;
        // Frame data lock is only ever contended by another fetch of the
        // same page; the state lock is not held here.
        let result = {
            let mut guard = self.data[idx].write();
            f(&mut guard)
        };
        self.release(idx);
        Ok(result)
    }

    /// Pins the frame holding `(file, page)`, loading it on a miss. Returns
    /// the frame index with `pin` already incremented.
    fn acquire(
        &self,
        file: FileId,
        page: PageId,
        mode: AccessMode,
        resolve: &Resolver<'_>,
    ) -> Result<usize> {
        let mut state = self.state.lock();
        if let Some(&idx) = state.table.get(&(file, page)) {
            let meta = &mut state.metas[idx];
            meta.pin += 1;
            meta.refbit = true;
            if mode == AccessMode::Write {
                meta.dirty = true;
            }
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(idx);
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        let idx = self.find_victim(&mut state)?;

        // Write back the victim while still holding the state lock, so no
        // other fetch can read stale bytes for the evicted page.
        let old = state.metas[idx].tag;
        if let Some((old_file, old_page)) = old {
            if state.metas[idx].dirty {
                let backend = resolve(old_file)?;
                let data = self.data[idx].read();
                backend.write_page(old_page, &data)?;
                self.stats.physical_writes.fetch_add(1, Ordering::Relaxed);
            }
            state.table.remove(&(old_file, old_page));
        }

        // Claim the frame, then load outside nothing — load under the state
        // lock too: the pool is optimized for a single query thread, and
        // holding the lock keeps the table exact.
        {
            let backend = resolve(file)?;
            let mut data = self.data[idx].write();
            backend.read_page(page, &mut data)?;
            self.stats.physical_reads.fetch_add(1, Ordering::Relaxed);
        }
        state.table.insert((file, page), idx);
        let meta = &mut state.metas[idx];
        meta.tag = Some((file, page));
        meta.pin = 1;
        meta.refbit = true;
        meta.dirty = mode == AccessMode::Write;
        Ok(idx)
    }

    fn release(&self, idx: usize) {
        let mut state = self.state.lock();
        let meta = &mut state.metas[idx];
        debug_assert!(meta.pin > 0, "release of unpinned frame");
        meta.pin -= 1;
    }

    /// Clock (second-chance) victim selection among unpinned frames.
    fn find_victim(&self, state: &mut PoolState) -> Result<usize> {
        let n = state.metas.len();
        // Two sweeps: the first clears reference bits, the second takes the
        // first unpinned frame.
        for _ in 0..2 * n {
            let idx = state.clock;
            state.clock = (state.clock + 1) % n;
            let meta = &mut state.metas[idx];
            if meta.pin > 0 {
                continue;
            }
            if meta.tag.is_none() {
                return Ok(idx);
            }
            if meta.refbit {
                meta.refbit = false;
            } else {
                return Ok(idx);
            }
        }
        Err(StorageError::PoolExhausted)
    }

    /// Writes back every dirty frame.
    pub(crate) fn flush(&self, resolve: &Resolver<'_>) -> Result<()> {
        let mut state = self.state.lock();
        for idx in 0..state.metas.len() {
            let meta = &state.metas[idx];
            if let (Some((file, page)), true) = (meta.tag, meta.dirty) {
                let backend = resolve(file)?;
                let data = self.data[idx].read();
                backend.write_page(page, &data)?;
                self.stats.physical_writes.fetch_add(1, Ordering::Relaxed);
                state.metas[idx].dirty = false;
            }
        }
        Ok(())
    }

    /// Drops every frame belonging to `file` without write-back (the file
    /// is being removed). Refuses with [`StorageError::FileBusy`] if any of
    /// the file's frames is still pinned — silently unmapping a page
    /// another operator holds would hand it a frame whose identity can
    /// change under it.
    pub(crate) fn invalidate_file(&self, file: FileId) -> Result<()> {
        let mut state = self.state.lock();
        let pinned = state
            .metas
            .iter()
            .filter(|m| matches!(m.tag, Some((f, _)) if f == file) && m.pin > 0)
            .count();
        if pinned > 0 {
            return Err(StorageError::FileBusy {
                file: format!("{file}"),
                pinned,
            });
        }
        for idx in 0..state.metas.len() {
            if matches!(state.metas[idx].tag, Some((f, _)) if f == file) {
                if let Some(tag) = state.metas[idx].tag.take() {
                    state.table.remove(&tag);
                }
                state.metas[idx].dirty = false;
                state.metas[idx].refbit = false;
            }
        }
        Ok(())
    }

    /// Page size of frames in this pool.
    pub fn page_size(&self) -> usize {
        self.page_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    const PS: usize = 256;

    fn setup(pool_frames: usize) -> (BufferPool, Arc<dyn Backend>) {
        let pool = BufferPool::new(pool_frames, PS);
        let backend: Arc<dyn Backend> = Arc::new(MemBackend::new(PS));
        (pool, backend)
    }

    fn resolver(backend: &Arc<dyn Backend>) -> impl Fn(FileId) -> Result<Arc<dyn Backend>> + '_ {
        move |_| Ok(Arc::clone(backend))
    }

    #[test]
    fn read_after_write_roundtrips() {
        let (pool, backend) = setup(8);
        let r = resolver(&backend);
        let f = FileId(0);
        let p = backend.allocate_page().unwrap();
        pool.with_frame_write(f, p, &r, |data| data[0] = 42)
            .unwrap();
        let v = pool.with_frame_read(f, p, &r, |data| data[0]).unwrap();
        assert_eq!(v, 42);
        let snap = pool.stats().snapshot();
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.hits, 1);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (pool, backend) = setup(8); // clamped min is 8
        let r = resolver(&backend);
        let f = FileId(0);
        let pages: Vec<PageId> = (0..20).map(|_| backend.allocate_page().unwrap()).collect();
        for (i, &p) in pages.iter().enumerate() {
            pool.with_frame_write(f, p, &r, |data| data[0] = i as u8)
                .unwrap();
        }
        // All 20 pages were written through a pool of 8 frames; re-reading
        // each must see its value (write-back on eviction + reload).
        for (i, &p) in pages.iter().enumerate() {
            let v = pool.with_frame_read(f, p, &r, |data| data[0]).unwrap();
            assert_eq!(v, i as u8, "page {p}");
        }
    }

    #[test]
    fn flush_persists_without_eviction() {
        let (pool, backend) = setup(8);
        let r = resolver(&backend);
        let f = FileId(0);
        let p = backend.allocate_page().unwrap();
        pool.with_frame_write(f, p, &r, |d| d[0] = 7).unwrap();
        // Backend still has zeros (no eviction yet).
        let mut raw = vec![0u8; PS];
        backend.read_page(p, &mut raw).unwrap();
        assert_eq!(raw[0], 0);
        pool.flush(&r).unwrap();
        backend.read_page(p, &mut raw).unwrap();
        assert_eq!(raw[0], 7);
    }

    #[test]
    fn hit_ratio_accounting() {
        let (pool, backend) = setup(8);
        let r = resolver(&backend);
        let f = FileId(0);
        let p = backend.allocate_page().unwrap();
        for _ in 0..9 {
            pool.with_frame_read(f, p, &r, |_| ()).unwrap();
        }
        let snap = pool.stats().snapshot();
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.hits, 8);
        assert!((snap.hit_ratio() - 8.0 / 9.0).abs() < 1e-9);
        pool.stats().reset();
        assert_eq!(pool.stats().snapshot(), IoSnapshot::default());
    }

    #[test]
    fn invalidate_file_forgets_frames() {
        let (pool, backend) = setup(8);
        let r = resolver(&backend);
        let f = FileId(3);
        let p = backend.allocate_page().unwrap();
        pool.with_frame_write(f, p, &r, |d| d[0] = 9).unwrap();
        pool.invalidate_file(f).unwrap();
        // Refetch misses and reads from the backend (which has zeros, since
        // the dirty frame was dropped, not flushed).
        let v = pool.with_frame_read(f, p, &r, |d| d[0]).unwrap();
        assert_eq!(v, 0);
        assert_eq!(pool.stats().snapshot().misses, 2);
    }

    #[test]
    fn capacity_clamped_to_minimum() {
        let pool = BufferPool::new(1, PS);
        assert_eq!(pool.capacity(), 8);
    }

    #[test]
    fn invalidate_file_refuses_pinned_frames() {
        let (pool, backend) = setup(8);
        let r = resolver(&backend);
        let f = FileId(5);
        let p = backend.allocate_page().unwrap();
        let idx = pool.acquire(f, p, AccessMode::Read, &r).unwrap();
        let err = pool.invalidate_file(f).unwrap_err();
        assert!(
            matches!(err, StorageError::FileBusy { pinned: 1, .. }),
            "unexpected error: {err}"
        );
        pool.release(idx);
        pool.invalidate_file(f).unwrap();
        // Frame was unmapped: the next fetch is a miss.
        pool.with_frame_read(f, p, &r, |_| ()).unwrap();
        assert_eq!(pool.stats().snapshot().misses, 2);
    }

    #[test]
    fn snapshot_delta_is_per_interval() {
        let (pool, backend) = setup(8);
        let r = resolver(&backend);
        let f = FileId(0);
        let p = backend.allocate_page().unwrap();
        pool.with_frame_read(f, p, &r, |_| ()).unwrap();
        let before = pool.stats().snapshot();
        pool.with_frame_read(f, p, &r, |_| ()).unwrap();
        pool.with_frame_read(f, p, &r, |_| ()).unwrap();
        let d = pool.stats().snapshot().delta(&before);
        assert_eq!(
            d,
            IoSnapshot {
                hits: 2,
                misses: 0,
                physical_reads: 0,
                physical_writes: 0
            }
        );
        // Saturates instead of underflowing if counters were reset between
        // the snapshots.
        pool.stats().reset();
        assert_eq!(
            pool.stats().snapshot().delta(&before),
            IoSnapshot::default()
        );
    }
}
