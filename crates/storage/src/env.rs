//! The storage environment: a set of named paged files sharing one buffer
//! pool (the analogue of a Berkeley DB environment).

use crate::backend::{Backend, FileBackend, MemBackend};
use crate::buffer::{BufferPool, IoSnapshot, IoStats};
use crate::error::StorageError;
use crate::page::{PageId, DEFAULT_PAGE_SIZE};
use crate::Result;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Identifier of an open file within an [`Env`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

impl std::fmt::Display for FileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Environment configuration.
#[derive(Debug, Clone)]
pub struct EnvConfig {
    /// Page size in bytes for every file of the environment.
    pub page_size: usize,
    /// Buffer-pool budget in bytes. The efficiency tests of the paper used
    /// 20 MB; the default here is 4 MiB, adequate for the scaled-down
    /// workloads.
    pub pool_bytes: usize,
}

impl Default for EnvConfig {
    fn default() -> Self {
        EnvConfig {
            page_size: DEFAULT_PAGE_SIZE,
            pool_bytes: 4 << 20,
        }
    }
}

impl EnvConfig {
    /// Configuration with a pool of exactly `bytes` bytes.
    pub fn with_pool_bytes(bytes: usize) -> EnvConfig {
        EnvConfig {
            pool_bytes: bytes,
            ..EnvConfig::default()
        }
    }
}

struct FileEntry {
    backend: Arc<dyn Backend>,
    name: String,
}

struct FileTable {
    by_name: HashMap<String, FileId>,
    by_id: HashMap<FileId, FileEntry>,
    next: u32,
}

struct EnvInner {
    config: EnvConfig,
    /// Directory for on-disk environments; `None` keeps everything in RAM.
    dir: Option<PathBuf>,
    files: Mutex<FileTable>,
    pool: BufferPool,
    next_temp: Mutex<u64>,
}

/// A storage environment. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct Env {
    inner: Arc<EnvInner>,
}

impl Env {
    /// Creates an in-memory environment with default configuration.
    pub fn memory() -> Env {
        Env::memory_with(EnvConfig::default())
    }

    /// Creates an in-memory environment with explicit configuration.
    pub fn memory_with(config: EnvConfig) -> Env {
        Env::build(None, config)
    }

    /// Opens (creating if needed) an on-disk environment rooted at `dir`.
    pub fn open_dir(dir: impl Into<PathBuf>, config: EnvConfig) -> Result<Env> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Env::build(Some(dir), config))
    }

    fn build(dir: Option<PathBuf>, config: EnvConfig) -> Env {
        let frames = (config.pool_bytes / config.page_size).max(8);
        let pool = BufferPool::new(frames, config.page_size);
        Env {
            inner: Arc::new(EnvInner {
                config,
                dir,
                files: Mutex::new(FileTable {
                    by_name: HashMap::new(),
                    by_id: HashMap::new(),
                    next: 0,
                }),
                pool,
                next_temp: Mutex::new(0),
            }),
        }
    }

    /// Page size of this environment.
    pub fn page_size(&self) -> usize {
        self.inner.config.page_size
    }

    /// Buffer pool frame count.
    pub fn pool_frames(&self) -> usize {
        self.inner.pool.capacity()
    }

    /// Number of buffer-pool shards (lock-striping granularity).
    pub fn pool_shards(&self) -> usize {
        self.inner.pool.shard_count()
    }

    /// True if the environment is backed by a directory on disk.
    pub fn is_on_disk(&self) -> bool {
        self.inner.dir.is_some()
    }

    fn disk_path(&self, name: &str) -> Option<PathBuf> {
        self.inner
            .dir
            .as_ref()
            .map(|d| d.join(format!("{name}.sdb")))
    }

    fn register(&self, table: &mut FileTable, name: String, backend: Arc<dyn Backend>) -> FileId {
        let id = FileId(table.next);
        table.next += 1;
        table.by_name.insert(name.clone(), id);
        table.by_id.insert(id, FileEntry { backend, name });
        id
    }

    /// Creates a new file named `name`; errors if it already exists (in
    /// this environment or on disk).
    pub fn create_file(&self, name: &str) -> Result<FileId> {
        let mut table = self.inner.files.lock();
        if table.by_name.contains_key(name) {
            return Err(StorageError::FileExists(name.to_string()));
        }
        let backend: Arc<dyn Backend> = match self.disk_path(name) {
            Some(path) => {
                if path.exists() {
                    return Err(StorageError::FileExists(name.to_string()));
                }
                Arc::new(FileBackend::open(&path, self.page_size())?)
            }
            None => Arc::new(MemBackend::new(self.page_size())),
        };
        Ok(self.register(&mut table, name.to_string(), backend))
    }

    /// Opens an existing file named `name` (possibly persisted by a
    /// previous environment over the same directory).
    pub fn open_file(&self, name: &str) -> Result<FileId> {
        let mut table = self.inner.files.lock();
        if let Some(&id) = table.by_name.get(name) {
            return Ok(id);
        }
        match self.disk_path(name) {
            Some(path) if path.exists() => {
                let backend: Arc<dyn Backend> =
                    Arc::new(FileBackend::open(&path, self.page_size())?);
                Ok(self.register(&mut table, name.to_string(), backend))
            }
            _ => Err(StorageError::NoSuchFile(name.to_string())),
        }
    }

    /// Opens `name` if present, creating it otherwise.
    pub fn open_or_create(&self, name: &str) -> Result<FileId> {
        match self.open_file(name) {
            Ok(id) => Ok(id),
            Err(StorageError::NoSuchFile(_)) => self.create_file(name),
            Err(e) => Err(e),
        }
    }

    /// True if `name` exists in this environment or its directory.
    pub fn file_exists(&self, name: &str) -> bool {
        let table = self.inner.files.lock();
        if table.by_name.contains_key(name) {
            return true;
        }
        self.disk_path(name).is_some_and(|p| p.exists())
    }

    /// Creates an anonymous scratch file. Prefer [`crate::TempFile`], which
    /// removes it automatically.
    pub fn create_temp_file(&self) -> Result<FileId> {
        let n = {
            let mut next = self.inner.next_temp.lock();
            *next += 1;
            *next
        };
        self.create_file(&format!("__tmp-{}-{n}", std::process::id()))
    }

    /// Removes a file: drops its pool frames, forgets it, deletes the disk
    /// file if any. Fails with [`StorageError::FileBusy`] while any of the
    /// file's pages is pinned by an in-flight operation.
    pub fn remove_file(&self, id: FileId) -> Result<()> {
        self.inner.pool.invalidate_file(id)?;
        let entry = {
            let mut table = self.inner.files.lock();
            let entry = table
                .by_id
                .remove(&id)
                .ok_or_else(|| StorageError::NoSuchFile(format!("{id}")))?;
            table.by_name.remove(&entry.name);
            entry
        };
        if let Some(path) = entry.backend.path() {
            std::fs::remove_file(path)?;
        }
        Ok(())
    }

    fn backend(&self, id: FileId) -> Result<Arc<dyn Backend>> {
        let table = self.inner.files.lock();
        table
            .by_id
            .get(&id)
            .map(|e| Arc::clone(&e.backend))
            .ok_or_else(|| StorageError::NoSuchFile(format!("{id}")))
    }

    /// Appends a zeroed page to `file`.
    pub fn allocate_page(&self, file: FileId) -> Result<PageId> {
        let id = self.backend(file)?.allocate_page()?;
        Ok(id)
    }

    /// Number of pages in `file`.
    pub fn page_count(&self, file: FileId) -> Result<u64> {
        Ok(self.backend(file)?.page_count())
    }

    /// Runs `f` over the (read-only) contents of a page. Takes the frame's
    /// shared lock: concurrent readers of a hot page do not serialize.
    pub fn with_page<R>(
        &self,
        file: FileId,
        page: PageId,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        let resolve = |id: FileId| self.backend(id);
        self.inner.pool.with_frame_read(file, page, &resolve, f)
    }

    /// Runs `f` over the mutable contents of a page, marking it dirty.
    pub fn with_page_mut<R>(
        &self,
        file: FileId,
        page: PageId,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R> {
        let resolve = |id: FileId| self.backend(id);
        self.inner.pool.with_frame_write(file, page, &resolve, f)
    }

    /// Writes back all dirty frames and syncs on-disk files.
    pub fn flush(&self) -> Result<()> {
        let resolve = |id: FileId| self.backend(id);
        self.inner.pool.flush(&resolve)?;
        let table = self.inner.files.lock();
        for entry in table.by_id.values() {
            entry.backend.sync()?;
        }
        Ok(())
    }

    /// Buffer-pool traffic counters.
    pub fn io_stats(&self) -> IoSnapshot {
        self.inner.pool.stats().snapshot()
    }

    /// Live counter handle (B+-tree read-path instrumentation).
    pub(crate) fn counters(&self) -> &IoStats {
        self.inner.pool.stats()
    }

    /// Zeroes the traffic counters (between benchmark runs).
    pub fn reset_io_stats(&self) {
        self.inner.pool.stats().reset();
    }
}

impl std::fmt::Debug for Env {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Env")
            .field("dir", &self.inner.dir)
            .field("page_size", &self.inner.config.page_size)
            .field("pool_frames", &self.inner.pool.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_env_basic_page_io() {
        let env = Env::memory();
        let f = env.create_file("nodes").unwrap();
        let p = env.allocate_page(f).unwrap();
        env.with_page_mut(f, p, |data| data[10] = 99).unwrap();
        let v = env.with_page(f, p, |data| data[10]).unwrap();
        assert_eq!(v, 99);
        assert_eq!(env.page_count(f).unwrap(), 1);
    }

    #[test]
    fn duplicate_create_rejected() {
        let env = Env::memory();
        env.create_file("x").unwrap();
        assert!(matches!(
            env.create_file("x"),
            Err(StorageError::FileExists(_))
        ));
    }

    #[test]
    fn open_missing_rejected() {
        let env = Env::memory();
        assert!(matches!(
            env.open_file("nope"),
            Err(StorageError::NoSuchFile(_))
        ));
    }

    #[test]
    fn open_or_create_is_idempotent() {
        let env = Env::memory();
        let a = env.open_or_create("y").unwrap();
        let b = env.open_or_create("y").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn remove_file_frees_name() {
        let env = Env::memory();
        let f = env.create_file("z").unwrap();
        env.remove_file(f).unwrap();
        assert!(!env.file_exists("z"));
        env.create_file("z").unwrap();
    }

    #[test]
    fn disk_env_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("saardb-env-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let env = Env::open_dir(&dir, EnvConfig::default()).unwrap();
            let f = env.create_file("persist").unwrap();
            let p = env.allocate_page(f).unwrap();
            env.with_page_mut(f, p, |d| d[0] = 0x5A).unwrap();
            env.flush().unwrap();
        }
        {
            let env = Env::open_dir(&dir, EnvConfig::default()).unwrap();
            let f = env.open_file("persist").unwrap();
            let v = env.with_page(f, PageId(0), |d| d[0]).unwrap();
            assert_eq!(v, 0x5A);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pool_budget_controls_frames() {
        let env = Env::memory_with(EnvConfig {
            page_size: 1024,
            pool_bytes: 16 * 1024,
        });
        assert_eq!(env.pool_frames(), 16);
    }

    #[test]
    fn io_stats_visible_through_env() {
        let env = Env::memory_with(EnvConfig {
            page_size: 512,
            pool_bytes: 8 * 512,
        });
        let f = env.create_file("s").unwrap();
        let pages: Vec<_> = (0..32).map(|_| env.allocate_page(f).unwrap()).collect();
        for &p in &pages {
            env.with_page_mut(f, p, |d| d[0] = 1).unwrap();
        }
        let snap = env.io_stats();
        assert_eq!(snap.misses, 32);
        // 32 pages through 8 frames: at least 24 evictions of dirty pages.
        assert!(
            snap.physical_writes >= 24,
            "writes = {}",
            snap.physical_writes
        );
        env.reset_io_stats();
        assert_eq!(env.io_stats().requests(), 0);
    }

    #[test]
    fn temp_files_get_unique_names() {
        let env = Env::memory();
        let a = env.create_temp_file().unwrap();
        let b = env.create_temp_file().unwrap();
        assert_ne!(a, b);
    }
}
