//! The storage environment: a set of named paged files sharing one buffer
//! pool (the analogue of a Berkeley DB environment).
//!
//! Internally the environment splits into three cooperating components:
//! the **pager** (file table + buffer pool — everything about resolving a
//! `(FileId, PageId)` to bytes), the **transaction manager**
//! ([`crate::txn`] — locks, undo images, commit/rollback), and the
//! **write-ahead log** ([`crate::wal`] — durability and recovery). The
//! pager's file table is under a reader/writer lock: page accesses only
//! ever read it, so lookups never serialize behind file create/drop.

use crate::backend::{Backend, FileBackend, MemBackend};
use crate::buffer::{BufferPool, IoSnapshot, IoStats, PoolIo};
use crate::error::StorageError;
use crate::fault::FaultState;
use crate::page::{PageId, DEFAULT_PAGE_SIZE};
use crate::txn::{self, Txn, TxnManager};
use crate::wal::{self, RecoveryReport, Wal, WAL_CHECKPOINT_BYTES};
use crate::Result;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use xmldb_obs::{span, Gauge, Registry};

/// Decorates backends as the environment creates them (name, raw backend) —
/// the hook fault-injection wrappers use. See [`Env::open_dir_with_decorator`].
pub type BackendDecorator = Arc<dyn Fn(&str, Arc<dyn Backend>) -> Arc<dyn Backend> + Send + Sync>;

/// Prefix of anonymous scratch files: exempt from write-ahead logging and
/// removed by recovery.
pub(crate) const TEMP_PREFIX: &str = "__tmp-";

/// Identifier of an open file within an [`Env`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

impl std::fmt::Display for FileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Environment configuration.
#[derive(Debug, Clone)]
pub struct EnvConfig {
    /// Page size in bytes for every file of the environment.
    pub page_size: usize,
    /// Buffer-pool budget in bytes. The efficiency tests of the paper used
    /// 20 MB; the default here is 4 MiB, adequate for the scaled-down
    /// workloads.
    pub pool_bytes: usize,
}

impl Default for EnvConfig {
    fn default() -> Self {
        EnvConfig {
            page_size: DEFAULT_PAGE_SIZE,
            pool_bytes: 4 << 20,
        }
    }
}

impl EnvConfig {
    /// Configuration with a pool of exactly `bytes` bytes.
    pub fn with_pool_bytes(bytes: usize) -> EnvConfig {
        EnvConfig {
            pool_bytes: bytes,
            ..EnvConfig::default()
        }
    }
}

struct FileEntry {
    backend: Arc<dyn Backend>,
    name: String,
    /// Scratch file: exempt from logging and locking, private to its query.
    temp: bool,
}

struct FileTable {
    by_name: HashMap<String, FileId>,
    by_id: HashMap<FileId, FileEntry>,
    next: u32,
}

/// The pager: everything about resolving pages to bytes — the file table
/// and the buffer pool. Page accesses take the table's read lock only.
struct Pager {
    files: RwLock<FileTable>,
    pool: BufferPool,
    next_temp: Mutex<u64>,
}

struct EnvInner {
    config: EnvConfig,
    /// Directory for on-disk environments; `None` keeps everything in RAM.
    dir: Option<PathBuf>,
    pager: Pager,
    /// Transaction bookkeeping: ids, lock table, page ownership.
    txns: TxnManager,
    /// Metrics registry every layer of this environment publishes into —
    /// pool/WAL/B+-tree counters here, engine latency histograms in core.
    registry: Arc<Registry>,
    /// Sampled on demand in [`Env::pinned_frames`].
    pinned_gauge: Arc<Gauge>,
    /// Write-ahead log; present for every on-disk environment.
    wal: Option<Wal>,
    /// What recovery did when this environment was opened.
    recovery: Option<RecoveryReport>,
    /// Wraps backends at creation time (fault injection in tests).
    decorator: Option<BackendDecorator>,
    /// Degraded read-only mode, latched when a WAL append or sync fails
    /// with [`StorageError::NoSpace`]. Queries keep running; writes to
    /// durable files are refused until [`Env::try_exit_read_only`].
    read_only: AtomicBool,
    /// Mirrors `read_only` for scrapes (`saardb_env_read_only`).
    read_only_gauge: Arc<Gauge>,
}

/// A storage environment. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct Env {
    inner: Arc<EnvInner>,
}

impl Env {
    /// Creates an in-memory environment with default configuration.
    pub fn memory() -> Env {
        Env::memory_with(EnvConfig::default())
    }

    /// Creates an in-memory environment with explicit configuration.
    pub fn memory_with(config: EnvConfig) -> Env {
        Env::build(None, config)
    }

    /// Opens (creating if needed) an on-disk environment rooted at `dir`.
    ///
    /// Before any data file is touched, the directory's write-ahead log is
    /// replayed: committed page images are redone, uncommitted steals are
    /// undone, and torn log tails are discarded — see [`crate::wal`]. The
    /// resulting [`RecoveryReport`] is available via
    /// [`Env::recovery_report`].
    pub fn open_dir(dir: impl Into<PathBuf>, config: EnvConfig) -> Result<Env> {
        Env::open_dir_inner(dir.into(), config, None)
    }

    /// [`Env::open_dir`] with a [`BackendDecorator`] applied to every
    /// backend the environment creates — the hook the crash-torture
    /// harness uses to wrap files in [`crate::fault::FaultBackend`].
    /// Recovery itself runs on the raw files, never through the decorator.
    pub fn open_dir_with_decorator(
        dir: impl Into<PathBuf>,
        config: EnvConfig,
        decorator: BackendDecorator,
    ) -> Result<Env> {
        Env::open_dir_inner(dir.into(), config, Some(decorator))
    }

    fn open_dir_inner(
        dir: PathBuf,
        config: EnvConfig,
        decorator: Option<BackendDecorator>,
    ) -> Result<Env> {
        std::fs::create_dir_all(&dir)?;
        let recovery = wal::replay(&dir)?;
        let wal = Wal::open(&dir)?;
        Ok(Env::build_inner(
            Some(dir),
            config,
            Some(wal),
            Some(recovery),
            decorator,
        ))
    }

    fn build(dir: Option<PathBuf>, config: EnvConfig) -> Env {
        Env::build_inner(dir, config, None, None, None)
    }

    fn build_inner(
        dir: Option<PathBuf>,
        config: EnvConfig,
        wal: Option<Wal>,
        recovery: Option<RecoveryReport>,
        decorator: Option<BackendDecorator>,
    ) -> Env {
        let frames = (config.pool_bytes / config.page_size).max(8);
        let registry = Arc::new(Registry::new());
        let pool = BufferPool::with_registry(frames, config.page_size, &registry);
        registry
            .gauge("saardb_pool_frames", &[])
            .set(pool.capacity() as i64);
        registry
            .gauge("saardb_pool_shards", &[])
            .set(pool.shard_count() as i64);
        registry
            .gauge("saardb_env_on_disk", &[])
            .set(i64::from(dir.is_some()));
        let pinned_gauge = registry.gauge("saardb_pool_pinned_frames", &[]);
        let read_only_gauge = registry.gauge("saardb_env_read_only", &[]);
        let txns = TxnManager::new(&registry);
        Env {
            inner: Arc::new(EnvInner {
                config,
                dir,
                pager: Pager {
                    files: RwLock::new(FileTable {
                        by_name: HashMap::new(),
                        by_id: HashMap::new(),
                        next: 0,
                    }),
                    pool,
                    next_temp: Mutex::new(0),
                },
                txns,
                registry,
                pinned_gauge,
                wal,
                recovery,
                decorator,
                read_only: AtomicBool::new(false),
                read_only_gauge,
            }),
        }
    }

    /// What recovery did when this on-disk environment was opened; `None`
    /// for in-memory environments.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.inner.recovery.as_ref()
    }

    /// Current write-ahead-log length in bytes (`None` when in memory).
    pub fn wal_bytes(&self) -> Option<u64> {
        self.inner.wal.as_ref().map(|w| w.len())
    }

    /// Page size of this environment.
    pub fn page_size(&self) -> usize {
        self.inner.config.page_size
    }

    /// Buffer pool frame count.
    pub fn pool_frames(&self) -> usize {
        self.inner.pager.pool.capacity()
    }

    /// Number of buffer-pool shards (lock-striping granularity).
    pub fn pool_shards(&self) -> usize {
        self.inner.pager.pool.shard_count()
    }

    /// True if the environment is backed by a directory on disk.
    pub fn is_on_disk(&self) -> bool {
        self.inner.dir.is_some()
    }

    /// True if `other` is a clone of this environment (same shared state).
    pub(crate) fn same_env(&self, other: &Env) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// The transaction manager (lock table, ownership index, counters).
    pub(crate) fn txns(&self) -> &TxnManager {
        &self.inner.txns
    }

    /// The write-ahead log, if this environment has one.
    pub(crate) fn wal(&self) -> Option<&Wal> {
        self.inner.wal.as_ref()
    }

    /// True while the environment is in read-only degraded mode: a WAL
    /// append or sync hit `ENOSPC`, so writes to durable files are refused
    /// ([`StorageError::ReadOnly`]) while reads keep being served. Scratch
    /// (`__tmp-`) files are exempt — they are never logged, so read-only
    /// queries can still spill.
    pub fn is_read_only(&self) -> bool {
        self.inner.read_only.load(Ordering::SeqCst)
    }

    /// Latches read-only degraded mode (idempotent; counts transitions in
    /// `saardb_env_no_space_total`, mirrors state in `saardb_env_read_only`).
    pub(crate) fn enter_read_only(&self) {
        if !self.inner.read_only.swap(true, Ordering::SeqCst) {
            self.inner.read_only_gauge.set(1);
            self.inner
                .registry
                .counter("saardb_env_no_space_total", &[])
                .inc();
        }
    }

    /// Routes a WAL-operation result through the degraded-mode latch: an
    /// `Err(NoSpace)` flips the environment read-only before propagating.
    /// Every WAL append/sync call site goes through here so no out-of-space
    /// failure can be dropped on the floor.
    pub(crate) fn note_wal<T>(&self, r: Result<T>) -> Result<T> {
        if matches!(r, Err(StorageError::NoSpace)) {
            self.enter_read_only();
        }
        r
    }

    /// Attempts to leave read-only degraded mode. Returns `Ok(true)` when
    /// the environment is (now) writable, `Ok(false)` when exit must wait
    /// for in-flight transactions to drain, and `Err` when the volume is
    /// still full (the probe flush/checkpoint failed — stay degraded).
    ///
    /// Order matters: the flush first makes the committed backlog durable
    /// in the data files (dirty pool pages, commit marker, fsync), and only
    /// then is the log checkpointed down to a single record — truncating
    /// first could discard committed updates still pool-resident. The
    /// server's watchdog calls this periodically, so recovery is automatic
    /// once space is reclaimed.
    pub fn try_exit_read_only(&self) -> Result<bool> {
        if !self.is_read_only() {
            return Ok(true);
        }
        if self.inner.txns.active_count() > 0 {
            return Ok(false);
        }
        self.flush()?;
        if let Some(wal) = &self.inner.wal {
            self.note_wal(wal.checkpoint())?;
        }
        self.inner.read_only.store(false, Ordering::SeqCst);
        self.inner.read_only_gauge.set(0);
        Ok(true)
    }

    /// Refuses writes to durable state while degraded.
    fn check_writable(&self) -> Result<()> {
        if self.is_read_only() {
            return Err(StorageError::ReadOnly);
        }
        Ok(())
    }

    /// Attaches a fault plan to the write-ahead log so its `wal_no_space`
    /// knob can simulate a full volume (see
    /// [`FaultState::set_wal_no_space`]). The WAL writes through a plain
    /// file handle, outside the [`BackendDecorator`] path, so the chaos
    /// harness injects here instead. No-op for in-memory environments.
    pub fn inject_wal_faults(&self, faults: &Arc<FaultState>) {
        if let Some(wal) = &self.inner.wal {
            wal.set_faults(faults);
        }
    }

    fn disk_path(&self, name: &str) -> Option<PathBuf> {
        self.inner
            .dir
            .as_ref()
            .map(|d| d.join(format!("{name}.sdb")))
    }

    fn register(&self, table: &mut FileTable, name: String, backend: Arc<dyn Backend>) -> FileId {
        let backend = match &self.inner.decorator {
            Some(wrap) => wrap(&name, backend),
            None => backend,
        };
        let id = FileId(table.next);
        table.next += 1;
        let temp = name.starts_with(TEMP_PREFIX);
        table.by_name.insert(name.clone(), id);
        table.by_id.insert(
            id,
            FileEntry {
                backend,
                name,
                temp,
            },
        );
        id
    }

    /// Creates a new file named `name`; errors if it already exists (in
    /// this environment or on disk).
    pub fn create_file(&self, name: &str) -> Result<FileId> {
        if !name.starts_with(TEMP_PREFIX) {
            self.check_writable()?;
        }
        let mut table = self.inner.pager.files.write();
        if table.by_name.contains_key(name) {
            return Err(StorageError::FileExists(name.to_string()));
        }
        let backend: Arc<dyn Backend> = match self.disk_path(name) {
            Some(path) => {
                if path.exists() {
                    return Err(StorageError::FileExists(name.to_string()));
                }
                Arc::new(FileBackend::open(&path, self.page_size())?)
            }
            None => Arc::new(MemBackend::new(self.page_size())),
        };
        Ok(self.register(&mut table, name.to_string(), backend))
    }

    /// Opens an existing file named `name` (possibly persisted by a
    /// previous environment over the same directory).
    pub fn open_file(&self, name: &str) -> Result<FileId> {
        let mut table = self.inner.pager.files.write();
        if let Some(&id) = table.by_name.get(name) {
            return Ok(id);
        }
        match self.disk_path(name) {
            Some(path) if path.exists() => {
                let backend: Arc<dyn Backend> =
                    Arc::new(FileBackend::open(&path, self.page_size())?);
                Ok(self.register(&mut table, name.to_string(), backend))
            }
            _ => Err(StorageError::NoSuchFile(name.to_string())),
        }
    }

    /// Opens `name` if present, creating it otherwise.
    pub fn open_or_create(&self, name: &str) -> Result<FileId> {
        match self.open_file(name) {
            Ok(id) => Ok(id),
            Err(StorageError::NoSuchFile(_)) => self.create_file(name),
            Err(e) => Err(e),
        }
    }

    /// True if `name` exists in this environment or its directory.
    pub fn file_exists(&self, name: &str) -> bool {
        let table = self.inner.pager.files.read();
        if table.by_name.contains_key(name) {
            return true;
        }
        self.disk_path(name).is_some_and(|p| p.exists())
    }

    /// Creates an anonymous scratch file. Prefer [`crate::TempFile`], which
    /// removes it automatically.
    pub fn create_temp_file(&self) -> Result<FileId> {
        let n = {
            let mut next = self.inner.pager.next_temp.lock();
            *next += 1;
            *next
        };
        self.create_file(&format!("__tmp-{}-{n}", std::process::id()))
    }

    /// Removes a file: drops its pool frames, forgets it, deletes the disk
    /// file if any. Fails with [`StorageError::FileBusy`] while any of the
    /// file's pages is pinned by an in-flight operation.
    pub fn remove_file(&self, id: FileId) -> Result<()> {
        if let Some((_, false)) = self.file_meta(id) {
            // Durable drops append a WAL marker; refuse while degraded.
            self.check_writable()?;
        }
        self.inner.pager.pool.invalidate_file(id)?;
        let entry = {
            let mut table = self.inner.pager.files.write();
            let entry = table
                .by_id
                .remove(&id)
                .ok_or_else(|| StorageError::NoSuchFile(format!("{id}")))?;
            table.by_name.remove(&entry.name);
            entry
        };
        // Log the drop ahead of the filesystem delete so recovery re-applies
        // it instead of resurrecting the file from stale page images.
        if let Some(wal) = &self.inner.wal {
            if !entry.temp {
                let synced = self.note_wal(wal.append_delete(&entry.name))?;
                let stats = self.inner.pager.pool.stats();
                stats.wal_appends.inc();
                if synced {
                    stats.wal_syncs.inc();
                }
            }
        }
        if let Some(path) = entry.backend.path() {
            std::fs::remove_file(path)?;
        }
        Ok(())
    }

    fn backend(&self, id: FileId) -> Result<Arc<dyn Backend>> {
        let table = self.inner.pager.files.read();
        table
            .by_id
            .get(&id)
            .map(|e| Arc::clone(&e.backend))
            .ok_or_else(|| StorageError::NoSuchFile(format!("{id}")))
    }

    /// Name and temp flag of an open file, if it is still open.
    pub(crate) fn file_meta(&self, id: FileId) -> Option<(String, bool)> {
        let table = self.inner.pager.files.read();
        table.by_id.get(&id).map(|e| (e.name.clone(), e.temp))
    }

    /// Page counts of every durable (non-scratch) file — the truncation
    /// targets a commit record carries for recovery.
    pub(crate) fn durable_file_counts(&self) -> Vec<(String, u64)> {
        let table = self.inner.pager.files.read();
        table
            .by_id
            .values()
            .filter(|e| !e.temp)
            .map(|e| (e.name.clone(), e.backend.page_count()))
            .collect()
    }

    /// Appends a zeroed page to `file`.
    pub fn allocate_page(&self, file: FileId) -> Result<PageId> {
        if self.is_read_only() && !matches!(self.file_meta(file), Some((_, true))) {
            return Err(StorageError::ReadOnly);
        }
        let id = self.backend(file)?.allocate_page()?;
        Ok(id)
    }

    /// Number of pages in `file`.
    pub fn page_count(&self, file: FileId) -> Result<u64> {
        Ok(self.backend(file)?.page_count())
    }

    /// Begins a transaction on this environment. The handle is inert until
    /// [`Txn::install`]ed on a thread; see [`crate::txn`] for the locking
    /// and commit protocol. Without an installed transaction every page
    /// access stays on the untransacted fast path (one thread-local probe,
    /// no locks) and [`Env::flush`] remains the durability point.
    pub fn begin_txn(&self) -> Txn {
        Txn::begin(self)
    }

    /// Number of live transactions on this environment.
    pub fn active_txns(&self) -> usize {
        self.inner.txns.active_count()
    }

    /// Runs `f` over the (read-only) contents of a page. Takes the frame's
    /// shared lock: concurrent readers of a hot page do not serialize.
    /// Under an installed transaction, first acquires (and holds, per
    /// strict two-phase locking) a shared page lock.
    pub fn with_page<R>(
        &self,
        file: FileId,
        page: PageId,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        txn::read_hook(self, file, page)?;
        self.inner
            .pager
            .pool
            .with_frame_read(file, page, &EnvIo(self), f)
    }

    /// Runs `f` over the mutable contents of a page, marking it dirty.
    /// Under an installed transaction, first acquires an exclusive page
    /// lock and captures the page's undo image.
    pub fn with_page_mut<R>(
        &self,
        file: FileId,
        page: PageId,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R> {
        // Cheap atomic probe first; the file-table lookup only runs while
        // degraded (scratch files stay writable — they are never logged).
        if self.is_read_only() && !matches!(self.file_meta(file), Some((_, true))) {
            return Err(StorageError::ReadOnly);
        }
        txn::write_hook(self, file, page)?;
        self.inner
            .pager
            .pool
            .with_frame_write(file, page, &EnvIo(self), f)
    }

    /// Copies a page's current (pool-resident) content. Bypasses the
    /// transaction hooks — used by the transaction layer itself, which
    /// already holds the page lock when it captures images.
    pub(crate) fn read_page_vec(&self, file: FileId, page: PageId) -> Result<Vec<u8>> {
        self.inner
            .pager
            .pool
            .with_frame_read(file, page, &EnvIo(self), |d| d.to_vec())
    }

    /// Overwrites a page with `data` (pool write, marks dirty). Bypasses
    /// the transaction hooks — rollback's pre-image restore.
    pub(crate) fn write_page_raw(&self, file: FileId, page: PageId, data: &[u8]) -> Result<()> {
        if data.len() != self.page_size() {
            return Err(StorageError::PageBufferSize {
                len: data.len(),
                page_size: self.page_size(),
            });
        }
        self.inner
            .pager
            .pool
            .with_frame_write(file, page, &EnvIo(self), |d| d.copy_from_slice(data))
    }

    /// Writes back all dirty frames, syncs every on-disk file, and — for
    /// WAL-backed environments — appends a commit marker: this is the
    /// durability point. Everything flushed here survives a crash; work
    /// done since the previous flush that only reached the data files via
    /// eviction steals is rolled back by recovery.
    ///
    /// Once the log outgrows [`WAL_CHECKPOINT_BYTES`] the commit also
    /// checkpoints (truncates) it — unless a transaction is in flight,
    /// whose undo records the truncation would discard; the next
    /// quiescent flush catches up.
    pub fn flush(&self) -> Result<()> {
        let _span = span("storage.flush");
        self.inner.pager.pool.flush(&EnvIo(self))?;
        // Sync every backend: pages stolen by eviction since the last
        // flush were written without a data-file sync.
        let entries: Vec<(String, Arc<dyn Backend>, bool)> = {
            let table = self.inner.pager.files.read();
            table
                .by_id
                .values()
                .map(|e| (e.name.clone(), Arc::clone(&e.backend), e.temp))
                .collect()
        };
        for (_, backend, _) in &entries {
            backend.sync()?;
        }
        if let Some(wal) = &self.inner.wal {
            let counts: Vec<(String, u64)> = entries
                .iter()
                .filter(|(_, _, temp)| !temp)
                .map(|(name, backend, _)| (name.clone(), backend.page_count()))
                .collect();
            let a = self.note_wal(wal.append_commit(self.page_size(), counts))?;
            let stats = self.inner.pager.pool.stats();
            stats.wal_appends.inc();
            stats.wal_bytes.add(a.bytes);
            if self.note_wal(wal.sync_to(a.end))? {
                stats.wal_syncs.inc();
            }
            if wal.len() > WAL_CHECKPOINT_BYTES && self.inner.txns.active_count() == 0 {
                let checkpointed = wal.len();
                self.note_wal(wal.checkpoint())?;
                self.inner
                    .registry
                    .counter("saardb_wal_checkpoint_bytes_total", &[])
                    .add(checkpointed);
            }
        }
        Ok(())
    }

    /// Flushes and then truncates the write-ahead log. The explicit form
    /// of the periodic checkpoint [`Env::flush`] applies by threshold; a
    /// no-op beyond [`Env::flush`] for in-memory environments. Skipped
    /// (flush still runs) while any transaction is in flight — truncation
    /// would discard its undo records.
    pub fn checkpoint(&self) -> Result<()> {
        self.flush()?;
        if let Some(wal) = &self.inner.wal {
            if self.inner.txns.active_count() == 0 {
                self.note_wal(wal.checkpoint())?;
            }
        }
        Ok(())
    }

    /// True if this environment write-ahead-logs page images (on-disk
    /// environments only). EXPLAIN ANALYZE uses this to omit WAL lines —
    /// rather than print zeros — when no log exists.
    pub fn has_wal(&self) -> bool {
        self.inner.wal.is_some()
    }

    /// The metrics registry all layers of this environment publish into.
    /// Storage registers pool/WAL/B+-tree counters at construction; the
    /// engine layers add latency histograms and governor trip counters to
    /// the same registry, so one exposition covers the whole stack.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.inner.registry
    }

    /// Buffer-pool traffic counters.
    pub fn io_stats(&self) -> IoSnapshot {
        self.inner.pager.pool.stats().snapshot()
    }

    /// Live counter handle (B+-tree read-path instrumentation).
    pub(crate) fn counters(&self) -> &IoStats {
        self.inner.pager.pool.stats()
    }

    /// Zeroes the traffic counters (between benchmark runs).
    pub fn reset_io_stats(&self) {
        self.inner.pager.pool.stats().reset();
    }

    /// Number of buffer-pool frames currently pinned. Zero whenever no
    /// operation is in flight; the cancellation-torture sweep asserts this
    /// after every cancelled query.
    pub fn pinned_frames(&self) -> usize {
        let pinned = self.inner.pager.pool.pinned_frames();
        self.inner.pinned_gauge.set(pinned as i64);
        pinned
    }

    /// Names of scratch (`__tmp-`) files still present — registered in the
    /// file table or lying in the directory. Empty whenever no query is in
    /// flight: spill and materialization files are owned by
    /// [`crate::TempFile`] Drop guards, so even a cancelled or panicking
    /// query must leave nothing behind.
    pub fn temp_files(&self) -> Vec<String> {
        let mut names: Vec<String> = {
            let table = self.inner.pager.files.read();
            table
                .by_id
                .values()
                .filter(|e| e.temp)
                .map(|e| e.name.clone())
                .collect()
        };
        if let Some(dir) = &self.inner.dir {
            if let Ok(entries) = std::fs::read_dir(dir) {
                for entry in entries.flatten() {
                    let file = entry.file_name().to_string_lossy().into_owned();
                    if let Some(stem) = file.strip_suffix(".sdb") {
                        if stem.starts_with(TEMP_PREFIX) {
                            names.push(stem.to_string());
                        }
                    }
                }
            }
        }
        names.sort();
        names.dedup();
        names
    }

    /// Number of live `Env` handles (clones of this environment). A
    /// supervisor that hands a clone to a worker thread can assert the
    /// worker is gone — not abandoned in the background — by watching the
    /// count return to its baseline after a join.
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }
}

/// The pool's view of the environment: backend resolution plus the
/// WAL-before-steal hooks. The before-image of a logged page is its
/// current content in the data file, read here — reverse-order undo then
/// restores the committed image even when a page is stolen several times
/// between commits. Pages owned by an active transaction are logged as
/// transaction-tagged images instead, with the owner's first-touch
/// pre-image as the before-image, so recovery can undo a loser no matter
/// how many times its pages were stolen.
struct EnvIo<'a>(&'a Env);

impl PoolIo for EnvIo<'_> {
    fn backend(&self, file: FileId) -> Result<Arc<dyn Backend>> {
        self.0.backend(file)
    }

    fn wal_page_image(&self, file: FileId, page: PageId, after: &[u8]) -> Result<()> {
        let Some(wal) = &self.0.inner.wal else {
            return Ok(());
        };
        let Some((name, temp)) = self.0.file_meta(file) else {
            return Err(StorageError::NoSuchFile(format!("{file}")));
        };
        if temp {
            // Scratch files are transient: recovery deletes them, so
            // logging their pages would be pure overhead.
            return Ok(());
        }
        let a = self
            .0
            .note_wal(match self.0.inner.txns.owner_pre_image(file, page) {
                Some((owner, pre)) => wal.append_txn_page_image(owner, &name, page, &pre, after),
                None => {
                    let backend = self.0.backend(file)?;
                    let mut before = vec![0u8; after.len()];
                    backend.read_page(page, &mut before)?;
                    wal.append_page_image(&name, page, &before, after)
                }
            })?;
        let stats = self.0.inner.pager.pool.stats();
        stats.wal_appends.inc();
        stats.wal_bytes.add(a.bytes);
        Ok(())
    }

    fn wal_sync(&self) -> Result<()> {
        if let Some(wal) = &self.0.inner.wal {
            if self.0.note_wal(wal.sync())? {
                self.0.inner.pager.pool.stats().wal_syncs.inc();
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for Env {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Env")
            .field("dir", &self.inner.dir)
            .field("page_size", &self.inner.config.page_size)
            .field("pool_frames", &self.inner.pager.pool.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_env_basic_page_io() {
        let env = Env::memory();
        let f = env.create_file("nodes").unwrap();
        let p = env.allocate_page(f).unwrap();
        env.with_page_mut(f, p, |data| data[10] = 99).unwrap();
        let v = env.with_page(f, p, |data| data[10]).unwrap();
        assert_eq!(v, 99);
        assert_eq!(env.page_count(f).unwrap(), 1);
    }

    #[test]
    fn duplicate_create_rejected() {
        let env = Env::memory();
        env.create_file("x").unwrap();
        assert!(matches!(
            env.create_file("x"),
            Err(StorageError::FileExists(_))
        ));
    }

    #[test]
    fn open_missing_rejected() {
        let env = Env::memory();
        assert!(matches!(
            env.open_file("nope"),
            Err(StorageError::NoSuchFile(_))
        ));
    }

    #[test]
    fn open_or_create_is_idempotent() {
        let env = Env::memory();
        let a = env.open_or_create("y").unwrap();
        let b = env.open_or_create("y").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn remove_file_frees_name() {
        let env = Env::memory();
        let f = env.create_file("z").unwrap();
        env.remove_file(f).unwrap();
        assert!(!env.file_exists("z"));
        env.create_file("z").unwrap();
    }

    #[test]
    fn disk_env_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("saardb-env-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let env = Env::open_dir(&dir, EnvConfig::default()).unwrap();
            let f = env.create_file("persist").unwrap();
            let p = env.allocate_page(f).unwrap();
            env.with_page_mut(f, p, |d| d[0] = 0x5A).unwrap();
            env.flush().unwrap();
        }
        {
            let env = Env::open_dir(&dir, EnvConfig::default()).unwrap();
            let f = env.open_file("persist").unwrap();
            let v = env.with_page(f, PageId(0), |d| d[0]).unwrap();
            assert_eq!(v, 0x5A);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pool_budget_controls_frames() {
        let env = Env::memory_with(EnvConfig {
            page_size: 1024,
            pool_bytes: 16 * 1024,
        });
        assert_eq!(env.pool_frames(), 16);
    }

    #[test]
    fn io_stats_visible_through_env() {
        let env = Env::memory_with(EnvConfig {
            page_size: 512,
            pool_bytes: 8 * 512,
        });
        let f = env.create_file("s").unwrap();
        let pages: Vec<_> = (0..32).map(|_| env.allocate_page(f).unwrap()).collect();
        for &p in &pages {
            env.with_page_mut(f, p, |d| d[0] = 1).unwrap();
        }
        let snap = env.io_stats();
        assert_eq!(snap.misses, 32);
        // 32 pages through 8 frames: at least 24 evictions of dirty pages.
        assert!(
            snap.physical_writes >= 24,
            "writes = {}",
            snap.physical_writes
        );
        env.reset_io_stats();
        assert_eq!(env.io_stats().requests(), 0);
    }

    #[test]
    fn temp_files_get_unique_names() {
        let env = Env::memory();
        let a = env.create_temp_file().unwrap();
        let b = env.create_temp_file().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn no_space_flips_read_only_and_recovers() {
        let dir = std::env::temp_dir().join(format!("saardb-env-nospace-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let env = Env::open_dir(&dir, EnvConfig::default()).unwrap();
        let f = env.create_file("d").unwrap();
        let p = env.allocate_page(f).unwrap();
        env.with_page_mut(f, p, |d| d[0] = 1).unwrap();
        env.flush().unwrap();

        let faults = FaultState::new();
        env.inject_wal_faults(&faults);
        faults.set_wal_no_space(true);

        // A transactional commit fails typed and cleanly: rollback works,
        // the env latches read-only, no locks or frames stay pinned.
        let txn = env.begin_txn();
        {
            let _s = txn.install();
            env.with_page_mut(f, p, |d| d[0] = 2).unwrap();
        }
        let err = txn.commit().unwrap_err();
        assert!(matches!(err, StorageError::NoSpace), "{err}");
        txn.rollback().unwrap();
        assert!(env.is_read_only());
        assert_eq!(env.pinned_frames(), 0);

        // Degraded mode: reads fine, durable writes typed-refused, scratch
        // files still usable (read-only queries must be able to spill).
        assert_eq!(env.with_page(f, p, |d| d[0]).unwrap(), 1);
        let err = env.with_page_mut(f, p, |d| d[0] = 3).unwrap_err();
        assert!(matches!(err, StorageError::ReadOnly), "{err}");
        assert!(matches!(
            env.create_file("new"),
            Err(StorageError::ReadOnly)
        ));
        let tmp = env.create_temp_file().unwrap();
        let tp = env.allocate_page(tmp).unwrap();
        env.with_page_mut(tmp, tp, |d| d[0] = 9).unwrap();
        env.remove_file(tmp).unwrap();

        // Still full: the probe fails and the latch stays.
        assert!(env.try_exit_read_only().is_err());
        assert!(env.is_read_only());

        // Space reclaimed: the probe flushes, checkpoints, and clears.
        faults.set_wal_no_space(false);
        assert!(env.try_exit_read_only().unwrap());
        assert!(!env.is_read_only());
        env.with_page_mut(f, p, |d| d[0] = 4).unwrap();
        env.flush().unwrap();
        assert_eq!(env.with_page(f, p, |d| d[0]).unwrap(), 4);

        drop(env);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_skipped_while_txn_active() {
        let dir = std::env::temp_dir().join(format!("saardb-env-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let env = Env::open_dir(&dir, EnvConfig::default()).unwrap();
        let f = env.create_file("t").unwrap();
        let p = env.allocate_page(f).unwrap();
        let txn = env.begin_txn();
        {
            let _s = txn.install();
            env.with_page_mut(f, p, |d| d[0] = 1).unwrap();
        }
        env.checkpoint().unwrap();
        // The txn's steal/undo records (if any) plus the flush commit
        // marker must survive: no truncation with a live transaction.
        assert!(env.wal_bytes().unwrap() > 0);
        txn.commit().unwrap();
        env.checkpoint().unwrap();
        // Quiescent now: the log holds exactly the fresh checkpoint record.
        let after = env.wal_bytes().unwrap();
        let env2 = Env::open_dir(&dir, EnvConfig::default());
        drop(env2);
        assert!(after < 64, "log not truncated: {after} bytes");
        drop(env);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
