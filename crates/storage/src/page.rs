/// Identifier of a page within a file. Page 0 of every structured file is a
/// meta page (magic + structure-specific header).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// Byte offset of this page in its file.
    #[inline]
    pub fn offset(self, page_size: usize) -> u64 {
        self.0 * page_size as u64
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Default page size in bytes. 8 KiB balances fanout against the small
/// buffer pools the efficiency tests mandate.
pub const DEFAULT_PAGE_SIZE: usize = 8192;
