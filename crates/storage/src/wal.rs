//! Page-image write-ahead log and crash recovery.
//!
//! The paper's M2 engine got durability "for free" from Berkeley DB; this
//! module supplies the equivalent guarantee for our storage manager. The
//! buffer pool runs a *steal / no-force* policy — dirty pages may be
//! written back at arbitrary eviction points, and a flush is not forced
//! after every operation — so without write-ahead ordering a crash
//! mid-insert could persist a half-updated B+-tree. The WAL restores the
//! invariant:
//!
//! * **Before any dirty page reaches a data file** (eviction steal or
//!   [`crate::Env::flush`]), a [`Record::PageImage`] holding the page's
//!   *before* and *after* images is appended to the log and fsynced.
//! * **A commit point** is a successful `Env::flush`: every dirty page is
//!   logged and written, every data file is fsynced, and then a
//!   [`Record::Commit`] carrying each file's page count is appended and
//!   fsynced. Everything up to the marker is durable; everything after it
//!   is provisional.
//! * **Recovery** ([`replay`]) runs before any file of the environment is
//!   touched: the log is scanned with a checksum cut-off (a torn tail from
//!   a crash mid-append is discarded, not an error), after-images up to
//!   the last commit marker are redone, before-images after it are undone
//!   in reverse order, files are truncated to their committed page counts,
//!   and leftover temp files are removed. The log is then reset.
//! * **Checkpointing** truncates the log once the data files are known
//!   consistent (immediately after a commit), bounding both log growth and
//!   recovery time.
//!
//! ## Record format
//!
//! The log is a sequence of length-prefixed, CRC-32-checksummed records:
//!
//! ```text
//! record  := [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! payload := 0x01 page-image | 0x02 commit | 0x03 file-delete | 0x04 checkpoint
//! ```
//!
//! A record whose length overruns the file or whose checksum mismatches
//! ends the scan: it *is* the torn tail. Page images are keyed by file
//! *name* (not [`crate::FileId`], which is assigned per-session) so replay
//! can address the `.sdb` files directly.

use crate::page::PageId;
use crate::Result;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::Read;
use std::path::{Path, PathBuf};

/// Name of the log file inside an environment directory.
pub const WAL_FILE: &str = "wal.log";

/// Log size (bytes) above which a commit triggers an automatic checkpoint.
pub const WAL_CHECKPOINT_BYTES: u64 = 4 << 20;

const TAG_PAGE_IMAGE: u8 = 0x01;
const TAG_COMMIT: u8 = 0x02;
const TAG_DELETE: u8 = 0x03;
const TAG_CHECKPOINT: u8 = 0x04;

/// CRC-32 (IEEE, reflected) lookup table, built at compile time.
static CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// A decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Record {
    /// Before/after images of one page, logged ahead of the page write.
    PageImage {
        name: String,
        page: u64,
        before: Vec<u8>,
        after: Vec<u8>,
    },
    /// Commit marker: the environment's files and their page counts at a
    /// completed, fully synced flush.
    Commit {
        page_size: u32,
        files: Vec<(String, u64)>,
    },
    /// A file was removed (drops are immediate, not transactional).
    Delete { name: String },
    /// Head marker of a freshly truncated log.
    Checkpoint,
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_name(out: &mut Vec<u8>, name: &str) {
    put_u16(out, name.len() as u16);
    out.extend_from_slice(name.as_bytes());
}

/// Cursor over a payload during decoding; all readers fail soft (a
/// malformed payload is treated like a checksum mismatch by the caller).
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(slice)
    }
    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }
    fn u16(&mut self) -> Option<u16> {
        self.take(2)
            .map(|s| u16::from_le_bytes(s.try_into().unwrap()))
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }
    fn name(&mut self) -> Option<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

impl Record {
    fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            Record::PageImage {
                name,
                page,
                before,
                after,
            } => {
                p.push(TAG_PAGE_IMAGE);
                put_u32(&mut p, before.len() as u32);
                put_name(&mut p, name);
                put_u64(&mut p, *page);
                p.extend_from_slice(before);
                p.extend_from_slice(after);
            }
            Record::Commit { page_size, files } => {
                p.push(TAG_COMMIT);
                put_u32(&mut p, *page_size);
                put_u32(&mut p, files.len() as u32);
                for (name, pages) in files {
                    put_name(&mut p, name);
                    put_u64(&mut p, *pages);
                }
            }
            Record::Delete { name } => {
                p.push(TAG_DELETE);
                put_name(&mut p, name);
            }
            Record::Checkpoint => p.push(TAG_CHECKPOINT),
        }
        p
    }

    /// Decodes one payload; `None` means malformed (treated as torn).
    fn decode(payload: &[u8]) -> Option<Record> {
        let mut r = Reader {
            buf: payload,
            pos: 0,
        };
        let rec = match r.u8()? {
            TAG_PAGE_IMAGE => {
                let page_size = r.u32()? as usize;
                let name = r.name()?;
                let page = r.u64()?;
                let before = r.take(page_size)?.to_vec();
                let after = r.take(page_size)?.to_vec();
                Record::PageImage {
                    name,
                    page,
                    before,
                    after,
                }
            }
            TAG_COMMIT => {
                let page_size = r.u32()?;
                let n = r.u32()? as usize;
                let mut files = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = r.name()?;
                    let pages = r.u64()?;
                    files.push((name, pages));
                }
                Record::Commit { page_size, files }
            }
            TAG_DELETE => Record::Delete { name: r.name()? },
            TAG_CHECKPOINT => Record::Checkpoint,
            _ => return None,
        };
        (r.pos == payload.len()).then_some(rec)
    }
}

struct WalFile {
    file: File,
    len: u64,
}

impl WalFile {
    fn append(&mut self, record: &Record) -> Result<u64> {
        use std::os::unix::fs::FileExt;
        let payload = record.encode();
        let mut framed = Vec::with_capacity(payload.len() + 8);
        put_u32(&mut framed, payload.len() as u32);
        put_u32(&mut framed, crc32(&payload));
        framed.extend_from_slice(&payload);
        self.file.write_all_at(&framed, self.len)?;
        self.len += framed.len() as u64;
        Ok(framed.len() as u64)
    }
}

/// The write-ahead log of one on-disk environment.
pub struct Wal {
    path: PathBuf,
    inner: Mutex<WalFile>,
}

impl Wal {
    /// Opens (creating if missing) the log at `dir/wal.log`, appending at
    /// the end. Call [`replay`] first: a log that needs recovery must not
    /// be appended to.
    pub fn open(dir: &Path) -> Result<Wal> {
        let path = dir.join(WAL_FILE);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let len = file.metadata()?.len();
        Ok(Wal {
            path,
            inner: Mutex::new(WalFile { file, len }),
        })
    }

    /// Current log length in bytes.
    pub fn len(&self) -> u64 {
        self.inner.lock().len
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends a page's before/after images. Returns bytes appended. Not
    /// synced — call [`Wal::sync`] before the page write it protects.
    pub fn append_page_image(
        &self,
        name: &str,
        page: PageId,
        before: &[u8],
        after: &[u8],
    ) -> Result<u64> {
        debug_assert_eq!(before.len(), after.len());
        self.inner.lock().append(&Record::PageImage {
            name: name.to_string(),
            page: page.0,
            before: before.to_vec(),
            after: after.to_vec(),
        })
    }

    /// Appends a commit marker carrying each file's committed page count.
    pub fn append_commit(&self, page_size: usize, files: Vec<(String, u64)>) -> Result<u64> {
        self.inner.lock().append(&Record::Commit {
            page_size: page_size as u32,
            files,
        })
    }

    /// Appends a file-deletion marker (synced immediately: drops are
    /// applied to the filesystem right after, and must not be lost).
    pub fn append_delete(&self, name: &str) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.append(&Record::Delete {
            name: name.to_string(),
        })?;
        inner.file.sync_data()?;
        Ok(())
    }

    /// Forces appended records to durable storage.
    pub fn sync(&self) -> Result<()> {
        self.inner.lock().file.sync_data()?;
        Ok(())
    }

    /// Truncates the log and writes a fresh checkpoint marker. Only sound
    /// immediately after a commit (data files synced and consistent).
    pub fn checkpoint(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.file.set_len(0)?;
        inner.len = 0;
        inner.append(&Record::Checkpoint)?;
        inner.file.sync_data()?;
        Ok(())
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("len", &self.len())
            .finish()
    }
}

/// What [`replay`] did to bring an environment directory back to its last
/// committed state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Bytes in the log when recovery started.
    pub log_bytes: u64,
    /// Valid records scanned.
    pub records: usize,
    /// Bytes discarded as a torn tail (checksum/length cut-off).
    pub torn_bytes: u64,
    /// Committed page images re-applied (redo).
    pub pages_redone: usize,
    /// Uncommitted page images rolled back (undo, reverse order).
    pub pages_undone: usize,
    /// Files truncated to their committed page counts.
    pub files_truncated: usize,
    /// File deletions re-applied.
    pub files_deleted: usize,
    /// Leftover temp files removed.
    pub temp_files_removed: usize,
    /// True when a commit marker was found (otherwise everything after the
    /// last checkpoint was rolled back).
    pub committed: bool,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "wal: {} bytes, {} record(s), {} torn byte(s) discarded",
            self.log_bytes, self.records, self.torn_bytes
        )?;
        writeln!(
            f,
            "redo: {} page(s); undo: {} page(s); commit marker {}",
            self.pages_redone,
            self.pages_undone,
            if self.committed { "found" } else { "absent" }
        )?;
        write!(
            f,
            "files: {} truncated, {} deletion(s) re-applied, {} temp file(s) removed",
            self.files_truncated, self.files_deleted, self.temp_files_removed
        )
    }
}

impl RecoveryReport {
    /// True when recovery changed nothing (clean shutdown).
    pub fn is_clean(&self) -> bool {
        self.pages_redone == 0
            && self.pages_undone == 0
            && self.files_truncated == 0
            && self.files_deleted == 0
            && self.temp_files_removed == 0
            && self.torn_bytes == 0
    }
}

/// Parses the log into its valid record prefix, returning the records and
/// the number of torn bytes discarded.
fn scan_log(bytes: &[u8]) -> (Vec<Record>, u64) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            break; // length overruns the file: torn tail
        };
        if crc32(payload) != crc {
            break;
        }
        let Some(record) = Record::decode(payload) else {
            break;
        };
        records.push(record);
        pos += 8 + len;
    }
    (records, (bytes.len() - pos) as u64)
}

/// Opens (creating if absent) a data file for recovery writes.
fn recovery_file(dir: &Path, name: &str) -> Result<File> {
    Ok(OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(dir.join(format!("{name}.sdb")))?)
}

/// Replays `dir/wal.log`, restoring every data file to the state of the
/// last commit marker, then resets the log. Idempotent; a missing or empty
/// log yields a clean report (leftover temp files are still removed).
///
/// Must run before any file of the environment is opened —
/// [`crate::Env::open_dir`] does this automatically; the `saardb recover`
/// subcommand exposes it manually.
pub fn replay(dir: &Path) -> Result<RecoveryReport> {
    let mut report = RecoveryReport::default();

    let wal_path = dir.join(WAL_FILE);
    let bytes = match File::open(&wal_path) {
        Ok(mut f) => {
            let mut buf = Vec::new();
            f.read_to_end(&mut buf)?;
            buf
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.into()),
    };
    report.log_bytes = bytes.len() as u64;
    let (records, torn) = scan_log(&bytes);
    report.records = records.len();
    report.torn_bytes = torn;

    let last_commit = records
        .iter()
        .rposition(|r| matches!(r, Record::Commit { .. }));
    report.committed = last_commit.is_some();

    use std::os::unix::fs::FileExt;
    let mut files: HashMap<String, File> = HashMap::new();
    let mut deleted: HashSet<String> = HashSet::new();
    // Undo work list: uncommitted page images, applied in reverse below.
    let mut undo: Vec<(String, u64, &Vec<u8>)> = Vec::new();

    for (i, record) in records.iter().enumerate() {
        match record {
            Record::PageImage {
                name,
                page,
                before,
                after,
            } => {
                // An image after a deletion means the name was recreated.
                deleted.remove(name);
                if last_commit.is_some_and(|c| i <= c) {
                    let file = match files.entry(name.clone()) {
                        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(recovery_file(dir, name)?)
                        }
                    };
                    file.write_all_at(after, page * after.len() as u64)?;
                    report.pages_redone += 1;
                } else {
                    undo.push((name.clone(), *page, before));
                }
            }
            Record::Delete { name } => {
                // Drops are immediate (not transactional): re-apply them
                // wherever they sit in the log, and forget pending undo
                // work for the dropped file.
                files.remove(name);
                undo.retain(|(n, _, _)| n != name);
                let path = dir.join(format!("{name}.sdb"));
                match std::fs::remove_file(&path) {
                    Ok(()) => report.files_deleted += 1,
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e.into()),
                }
                deleted.insert(name.clone());
            }
            Record::Commit { .. } | Record::Checkpoint => {}
        }
    }

    // Roll back uncommitted steals, newest first, so a page stolen twice
    // since the last commit ends at its committed image.
    for (name, page, before) in undo.iter().rev() {
        let file = match files.entry(name.clone()) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => e.insert(recovery_file(dir, name)?),
        };
        file.write_all_at(before, page * before.len() as u64)?;
        report.pages_undone += 1;
    }

    // Trim files back to their committed page counts: pages allocated
    // after the commit are provisional (allocation extends files eagerly,
    // outside the pool).
    if let Some(Record::Commit {
        page_size,
        files: counts,
    }) = last_commit.map(|c| &records[c])
    {
        for (name, pages) in counts {
            if deleted.contains(name) {
                continue;
            }
            let path = dir.join(format!("{name}.sdb"));
            let Ok(meta) = std::fs::metadata(&path) else {
                continue;
            };
            let committed_len = pages * *page_size as u64;
            if meta.len() > committed_len {
                let file = match files.entry(name.clone()) {
                    std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(recovery_file(dir, name)?)
                    }
                };
                file.set_len(committed_len)?;
                report.files_truncated += 1;
            }
        }
    }

    for file in files.values() {
        file.sync_data()?;
    }

    // Leftover scratch files from a crashed process are garbage.
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let fname = entry.file_name();
            let fname = fname.to_string_lossy();
            if fname.starts_with("__tmp-") && fname.ends_with(".sdb") {
                std::fs::remove_file(entry.path())?;
                report.temp_files_removed += 1;
            }
        }
    }

    // The data files now hold the committed state: reset the log.
    if report.log_bytes > 0 {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&wal_path)?;
        file.sync_data()?;
        drop(file);
        let wal = Wal::open(dir)?;
        wal.checkpoint()?;
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("saardb-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn read_file(dir: &Path, name: &str) -> Vec<u8> {
        std::fs::read(dir.join(format!("{name}.sdb"))).unwrap()
    }

    const PS: usize = 64;

    fn page(fill: u8) -> Vec<u8> {
        vec![fill; PS]
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn record_roundtrip() {
        let records = [
            Record::PageImage {
                name: "nodes".into(),
                page: 7,
                before: page(1),
                after: page(2),
            },
            Record::Commit {
                page_size: PS as u32,
                files: vec![("nodes".into(), 3), ("idx".into(), 9)],
            },
            Record::Delete { name: "old".into() },
            Record::Checkpoint,
        ];
        for r in &records {
            assert_eq!(Record::decode(&r.encode()).as_ref(), Some(r));
        }
    }

    #[test]
    fn replay_of_missing_log_is_clean() {
        let dir = tmp_dir("missing");
        let report = replay(&dir).unwrap();
        assert!(report.is_clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn redo_applies_committed_images() {
        let dir = tmp_dir("redo");
        let wal = Wal::open(&dir).unwrap();
        wal.append_page_image("f", PageId(0), &page(0), &page(0xAA))
            .unwrap();
        wal.append_page_image("f", PageId(1), &page(0), &page(0xBB))
            .unwrap();
        wal.append_commit(PS, vec![("f".into(), 2)]).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let report = replay(&dir).unwrap();
        assert_eq!(report.pages_redone, 2);
        assert_eq!(report.pages_undone, 0);
        assert!(report.committed);
        let bytes = read_file(&dir, "f");
        assert_eq!(&bytes[..PS], &page(0xAA)[..]);
        assert_eq!(&bytes[PS..2 * PS], &page(0xBB)[..]);
        // Log was reset to a bare checkpoint: a second replay is a no-op.
        let again = replay(&dir).unwrap();
        assert_eq!(again.pages_redone, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn undo_rolls_back_uncommitted_steals_in_reverse() {
        let dir = tmp_dir("undo");
        // Data file already holds the (uncommitted) stolen content.
        std::fs::write(dir.join("f.sdb"), page(0x33)).unwrap();
        let wal = Wal::open(&dir).unwrap();
        // The same page stolen twice after the last commit: committed
        // content 0x11, then 0x22 hit the disk, then 0x33.
        wal.append_page_image("f", PageId(0), &page(0x11), &page(0x22))
            .unwrap();
        wal.append_page_image("f", PageId(0), &page(0x22), &page(0x33))
            .unwrap();
        wal.sync().unwrap();
        drop(wal);
        let report = replay(&dir).unwrap();
        assert_eq!(report.pages_undone, 2);
        assert!(!report.committed);
        assert_eq!(read_file(&dir, "f"), page(0x11));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_cut_off() {
        let dir = tmp_dir("torn");
        let wal = Wal::open(&dir).unwrap();
        wal.append_page_image("f", PageId(0), &page(0), &page(0xAA))
            .unwrap();
        wal.append_commit(PS, vec![("f".into(), 1)]).unwrap();
        wal.sync().unwrap();
        let len = wal.len();
        wal.append_page_image("f", PageId(0), &page(0xAA), &page(0xBB))
            .unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Chop mid-way through the last record: a crash during append.
        let log = dir.join(WAL_FILE);
        let full = std::fs::metadata(&log).unwrap().len();
        let cut = len + (full - len) / 2;
        OpenOptions::new()
            .write(true)
            .open(&log)
            .unwrap()
            .set_len(cut)
            .unwrap();
        let report = replay(&dir).unwrap();
        assert_eq!(report.torn_bytes, cut - len);
        assert_eq!(report.records, 2);
        assert_eq!(report.pages_redone, 1);
        assert_eq!(read_file(&dir, "f")[..PS], page(0xAA)[..]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn commit_truncates_provisional_allocation() {
        let dir = tmp_dir("trunc");
        // File grew to 3 pages, but only 1 was committed.
        std::fs::write(dir.join("f.sdb"), [page(1), page(2), page(3)].concat()).unwrap();
        let wal = Wal::open(&dir).unwrap();
        wal.append_commit(PS, vec![("f".into(), 1)]).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let report = replay(&dir).unwrap();
        assert_eq!(report.files_truncated, 1);
        assert_eq!(read_file(&dir, "f").len(), PS);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delete_records_reapply_and_cancel_undo() {
        let dir = tmp_dir("delete");
        std::fs::write(dir.join("gone.sdb"), page(9)).unwrap();
        let wal = Wal::open(&dir).unwrap();
        wal.append_page_image("gone", PageId(0), &page(1), &page(9))
            .unwrap();
        wal.append_delete("gone").unwrap();
        drop(wal);
        let report = replay(&dir).unwrap();
        assert_eq!(report.files_deleted, 1);
        assert_eq!(report.pages_undone, 0, "undo for a dropped file is moot");
        assert!(!dir.join("gone.sdb").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_removes_leftover_temp_files() {
        let dir = tmp_dir("temps");
        std::fs::write(dir.join("__tmp-1234-1.sdb"), page(0)).unwrap();
        std::fs::write(dir.join("keep.sdb"), page(0)).unwrap();
        let report = replay(&dir).unwrap();
        assert_eq!(report.temp_files_removed, 1);
        assert!(dir.join("keep.sdb").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
