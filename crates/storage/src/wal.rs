//! Page-image write-ahead log and crash recovery.
//!
//! The paper's M2 engine got durability "for free" from Berkeley DB; this
//! module supplies the equivalent guarantee for our storage manager. The
//! buffer pool runs a *steal / no-force* policy — dirty pages may be
//! written back at arbitrary eviction points, and a flush is not forced
//! after every operation — so without write-ahead ordering a crash
//! mid-insert could persist a half-updated B+-tree. The WAL restores the
//! invariant:
//!
//! * **Before any dirty page reaches a data file** (eviction steal or
//!   [`crate::Env::flush`]), a [`Record::PageImage`] holding the page's
//!   *before* and *after* images is appended to the log and fsynced. Pages
//!   written under an open transaction carry the transaction's id
//!   ([`Record::TxnPageImage`]) so recovery can tell winners from losers
//!   even when records of several transactions interleave in the log.
//! * **A commit point** is either a successful `Env::flush` (the
//!   environment-wide epoch, [`Record::Commit`]) or a transaction commit
//!   ([`Record::TxnCommit`]): the write set's images and the marker are
//!   appended and forced with [`Wal::sync_to`] — the *group commit* path,
//!   where N concurrent committers ride one `sync_data`.
//! * **Recovery** ([`replay`]) runs before any file of the environment is
//!   touched: the log is scanned with a checksum cut-off (a torn tail from
//!   a crash mid-append is discarded, not an error), and every page is
//!   restored with one rule — the after-image of its *last committed*
//!   update wins; a page with no committed update reverts to the
//!   before-image of its *first* update. Files are truncated to their
//!   committed page counts and leftover temp files are removed. The log is
//!   then reset.
//! * **Checkpointing** atomically replaces the log with a fresh one-record
//!   log once the data files are known consistent (write to `wal.log.tmp`,
//!   fsync, rename over `wal.log`): there is no instant at which the log
//!   on disk is in a half-truncated state.
//!
//! ## Record format
//!
//! The log is a sequence of length-prefixed, CRC-32-checksummed records:
//!
//! ```text
//! record  := [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! payload := 0x01 page-image | 0x02 commit | 0x03 file-delete
//!          | 0x04 checkpoint | 0x05 txn-page-image | 0x06 txn-commit
//!          | 0x07 txn-abort
//! ```
//!
//! A record whose length overruns the file or whose checksum mismatches
//! ends the scan: it *is* the torn tail. A log whose very first record is
//! torn — or a zero-length log — is explicitly an *empty* log, not
//! corruption: the atomic checkpoint above makes that state unreachable,
//! but logs written by older builds (truncate-in-place checkpoints) can
//! still present it after a crash. Page images are keyed by file *name*
//! (not [`crate::FileId`], which is assigned per-session) so replay can
//! address the `.sdb` files directly.

use crate::error::StorageError;
use crate::fault::FaultState;
use crate::page::PageId;
use crate::Result;
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::Read;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

/// `errno` for "no space left on device". Checked via
/// [`std::io::Error::raw_os_error`] because `ErrorKind::StorageFull` is
/// not yet stable on this toolchain.
const ENOSPC: i32 = 28;

/// Maps a real `ENOSPC` from the filesystem to the typed
/// [`StorageError::NoSpace`]; every other I/O error passes through.
fn map_no_space(e: std::io::Error) -> StorageError {
    if e.raw_os_error() == Some(ENOSPC) {
        StorageError::NoSpace
    } else {
        StorageError::from(e)
    }
}

/// Name of the log file inside an environment directory.
pub const WAL_FILE: &str = "wal.log";

/// Scratch name the atomic checkpoint stages the fresh log under before
/// renaming it over [`WAL_FILE`]. A leftover (crash between the staging
/// write and the rename) is removed by [`replay`].
pub const WAL_TMP_FILE: &str = "wal.log.tmp";

/// Log size (bytes) above which a commit triggers an automatic checkpoint.
pub const WAL_CHECKPOINT_BYTES: u64 = 4 << 20;

const TAG_PAGE_IMAGE: u8 = 0x01;
const TAG_COMMIT: u8 = 0x02;
const TAG_DELETE: u8 = 0x03;
const TAG_CHECKPOINT: u8 = 0x04;
const TAG_TXN_PAGE_IMAGE: u8 = 0x05;
const TAG_TXN_COMMIT: u8 = 0x06;
const TAG_TXN_ABORT: u8 = 0x07;

/// CRC-32 (IEEE, reflected) lookup table, built at compile time.
static CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3, the zlib polynomial) over `bytes`. Public because
/// the network wire protocol frames requests exactly like WAL records
/// (`[len][crc32][payload]`) and shares this checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// A decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Record {
    /// Before/after images of one page, logged ahead of the page write.
    PageImage {
        name: String,
        page: u64,
        before: Vec<u8>,
        after: Vec<u8>,
    },
    /// Commit marker: the environment's files and their page counts at a
    /// completed, fully synced flush.
    Commit {
        page_size: u32,
        files: Vec<(String, u64)>,
    },
    /// A file was removed (drops are immediate, not transactional).
    Delete { name: String },
    /// Head marker of a freshly truncated log.
    Checkpoint,
    /// Before/after images of a page written under transaction `txn`.
    /// The before-image is the page's content when the transaction first
    /// touched it, so undo restores the pre-transaction state no matter
    /// how many times the page was stolen since.
    TxnPageImage {
        txn: u64,
        name: String,
        page: u64,
        before: Vec<u8>,
        after: Vec<u8>,
    },
    /// Transaction commit marker; carries file page counts like
    /// [`Record::Commit`]. A transaction with this marker anywhere in the
    /// log is a recovery *winner*; one without is a loser.
    TxnCommit {
        txn: u64,
        page_size: u32,
        files: Vec<(String, u64)>,
    },
    /// Transaction rollback marker (informational: a transaction without a
    /// [`Record::TxnCommit`] is rolled back whether or not the abort
    /// record reached the log).
    TxnAbort { txn: u64 },
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_name(out: &mut Vec<u8>, name: &str) {
    put_u16(out, name.len() as u16);
    out.extend_from_slice(name.as_bytes());
}

/// Cursor over a payload during decoding; all readers fail soft (a
/// malformed payload is treated like a checksum mismatch by the caller).
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(slice)
    }
    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }
    fn u16(&mut self) -> Option<u16> {
        self.take(2)
            .map(|s| u16::from_le_bytes(s.try_into().unwrap()))
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }
    fn name(&mut self) -> Option<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
    fn file_counts(&mut self) -> Option<Vec<(String, u64)>> {
        let n = self.u32()? as usize;
        let mut files = Vec::with_capacity(n);
        for _ in 0..n {
            let name = self.name()?;
            let pages = self.u64()?;
            files.push((name, pages));
        }
        Some(files)
    }
}

fn put_page_images(p: &mut Vec<u8>, name: &str, page: u64, before: &[u8], after: &[u8]) {
    put_u32(p, before.len() as u32);
    put_name(p, name);
    put_u64(p, page);
    p.extend_from_slice(before);
    p.extend_from_slice(after);
}

fn put_file_counts(p: &mut Vec<u8>, files: &[(String, u64)]) {
    put_u32(p, files.len() as u32);
    for (name, pages) in files {
        put_name(p, name);
        put_u64(p, *pages);
    }
}

impl Record {
    fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            Record::PageImage {
                name,
                page,
                before,
                after,
            } => {
                p.push(TAG_PAGE_IMAGE);
                put_page_images(&mut p, name, *page, before, after);
            }
            Record::Commit { page_size, files } => {
                p.push(TAG_COMMIT);
                put_u32(&mut p, *page_size);
                put_file_counts(&mut p, files);
            }
            Record::Delete { name } => {
                p.push(TAG_DELETE);
                put_name(&mut p, name);
            }
            Record::Checkpoint => p.push(TAG_CHECKPOINT),
            Record::TxnPageImage {
                txn,
                name,
                page,
                before,
                after,
            } => {
                p.push(TAG_TXN_PAGE_IMAGE);
                put_u64(&mut p, *txn);
                put_page_images(&mut p, name, *page, before, after);
            }
            Record::TxnCommit {
                txn,
                page_size,
                files,
            } => {
                p.push(TAG_TXN_COMMIT);
                put_u64(&mut p, *txn);
                put_u32(&mut p, *page_size);
                put_file_counts(&mut p, files);
            }
            Record::TxnAbort { txn } => {
                p.push(TAG_TXN_ABORT);
                put_u64(&mut p, *txn);
            }
        }
        p
    }

    /// Decodes one payload; `None` means malformed (treated as torn).
    fn decode(payload: &[u8]) -> Option<Record> {
        let mut r = Reader {
            buf: payload,
            pos: 0,
        };
        let rec = match r.u8()? {
            TAG_PAGE_IMAGE => {
                let page_size = r.u32()? as usize;
                let name = r.name()?;
                let page = r.u64()?;
                let before = r.take(page_size)?.to_vec();
                let after = r.take(page_size)?.to_vec();
                Record::PageImage {
                    name,
                    page,
                    before,
                    after,
                }
            }
            TAG_COMMIT => {
                let page_size = r.u32()?;
                let files = r.file_counts()?;
                Record::Commit { page_size, files }
            }
            TAG_DELETE => Record::Delete { name: r.name()? },
            TAG_CHECKPOINT => Record::Checkpoint,
            TAG_TXN_PAGE_IMAGE => {
                let txn = r.u64()?;
                let page_size = r.u32()? as usize;
                let name = r.name()?;
                let page = r.u64()?;
                let before = r.take(page_size)?.to_vec();
                let after = r.take(page_size)?.to_vec();
                Record::TxnPageImage {
                    txn,
                    name,
                    page,
                    before,
                    after,
                }
            }
            TAG_TXN_COMMIT => {
                let txn = r.u64()?;
                let page_size = r.u32()?;
                let files = r.file_counts()?;
                Record::TxnCommit {
                    txn,
                    page_size,
                    files,
                }
            }
            TAG_TXN_ABORT => Record::TxnAbort { txn: r.u64()? },
            _ => return None,
        };
        (r.pos == payload.len()).then_some(rec)
    }
}

fn frame(record: &Record) -> Vec<u8> {
    let payload = record.encode();
    let mut framed = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut framed, payload.len() as u32);
    put_u32(&mut framed, crc32(&payload));
    framed.extend_from_slice(&payload);
    framed
}

/// What one append wrote: its size and the log end offset right after it —
/// the offset a committer hands to [`Wal::sync_to`] to make the record
/// durable.
#[derive(Debug, Clone, Copy)]
pub struct Appended {
    /// Bytes this append added to the log.
    pub bytes: u64,
    /// Log length immediately after this append.
    pub end: u64,
}

/// Group-commit state: how far the log is known durable, and whether a
/// leader's fsync is in flight. Committers that arrive while a leader is
/// inside `sync_data` park on the condvar; when the leader returns, the
/// durable watermark usually already covers them (their records were
/// appended before the leader snapshotted the length) and they finish
/// without an fsync of their own.
struct GroupState {
    /// Log offset up to which `sync_data` has returned.
    synced: u64,
    /// True while some thread is inside `sync_data`.
    syncing: bool,
}

/// The write-ahead log of one on-disk environment.
///
/// Appends serialize on a short length lock (reserve offset + positional
/// write); durability goes through [`Wal::sync_to`], the group-commit
/// gate, so concurrent committers batch behind a single `sync_data`.
pub struct Wal {
    path: PathBuf,
    /// The log file. `RwLock` so appends (read side, positional writes)
    /// run concurrently with each other while [`Wal::checkpoint`] (write
    /// side) can swap in the freshly renamed file.
    file: RwLock<File>,
    /// Current log length; held across the positional write so the group
    /// leader's length snapshot never covers a hole.
    len: Mutex<u64>,
    /// Group-commit gate (std primitives: the vendored `parking_lot` shim
    /// has no condvar).
    group: StdMutex<GroupState>,
    group_cv: Condvar,
    /// Optional fault plan: while its `wal_no_space` knob is set, appends
    /// and syncs fail with [`StorageError::NoSpace`] exactly like a real
    /// `ENOSPC`. The WAL writes through a plain [`File`] (no [`Backend`]
    /// indirection), so the decorator used for data files cannot reach it;
    /// this hook is the equivalent injection point.
    ///
    /// [`Backend`]: crate::backend::Backend
    faults: StdMutex<Option<Arc<FaultState>>>,
}

impl Wal {
    /// Opens (creating if missing) the log at `dir/wal.log`, appending at
    /// the end. Call [`replay`] first: a log that needs recovery must not
    /// be appended to.
    pub fn open(dir: &Path) -> Result<Wal> {
        let path = dir.join(WAL_FILE);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let len = file.metadata()?.len();
        Ok(Wal {
            path,
            file: RwLock::new(file),
            len: Mutex::new(len),
            group: StdMutex::new(GroupState {
                // Nothing of the pre-open log needs re-syncing.
                synced: len,
                syncing: false,
            }),
            group_cv: Condvar::new(),
            faults: StdMutex::new(None),
        })
    }

    /// Attaches a fault plan whose `wal_no_space` knob simulates a full
    /// volume under the log (see [`FaultState::set_wal_no_space`]).
    pub fn set_faults(&self, faults: &Arc<FaultState>) {
        *self.faults.lock().unwrap() = Some(Arc::clone(faults));
    }

    /// True while the injected disk-full condition is active.
    fn no_space_injected(&self) -> bool {
        self.faults
            .lock()
            .unwrap()
            .as_ref()
            .is_some_and(|f| f.wal_no_space())
    }

    fn check_space(&self) -> Result<()> {
        if self.no_space_injected() {
            return Err(StorageError::NoSpace);
        }
        Ok(())
    }

    /// Current log length in bytes.
    pub fn len(&self) -> u64 {
        *self.len.lock()
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn append(&self, record: &Record) -> Result<Appended> {
        use std::os::unix::fs::FileExt;
        self.check_space()?;
        let framed = frame(record);
        let mut len = self.len.lock();
        let file = self.file.read();
        file.write_all_at(&framed, *len).map_err(map_no_space)?;
        *len += framed.len() as u64;
        Ok(Appended {
            bytes: framed.len() as u64,
            end: *len,
        })
    }

    /// Appends a page's before/after images. Returns what was appended.
    /// Not synced — call [`Wal::sync`] (or [`Wal::sync_to`]) before the
    /// page write it protects.
    pub fn append_page_image(
        &self,
        name: &str,
        page: PageId,
        before: &[u8],
        after: &[u8],
    ) -> Result<Appended> {
        check_image_pair(before, after)?;
        self.append(&Record::PageImage {
            name: name.to_string(),
            page: page.0,
            before: before.to_vec(),
            after: after.to_vec(),
        })
    }

    /// Appends a page image tagged with the owning transaction. `before`
    /// must be the page's content when `txn` first touched it.
    pub fn append_txn_page_image(
        &self,
        txn: u64,
        name: &str,
        page: PageId,
        before: &[u8],
        after: &[u8],
    ) -> Result<Appended> {
        check_image_pair(before, after)?;
        self.append(&Record::TxnPageImage {
            txn,
            name: name.to_string(),
            page: page.0,
            before: before.to_vec(),
            after: after.to_vec(),
        })
    }

    /// Appends a commit marker carrying each file's committed page count.
    pub fn append_commit(&self, page_size: usize, files: Vec<(String, u64)>) -> Result<Appended> {
        self.append(&Record::Commit {
            page_size: page_size as u32,
            files,
        })
    }

    /// Appends a transaction commit marker. The transaction is durable
    /// once [`Wal::sync_to`] covers the returned end offset.
    pub fn append_txn_commit(
        &self,
        txn: u64,
        page_size: usize,
        files: Vec<(String, u64)>,
    ) -> Result<Appended> {
        self.append(&Record::TxnCommit {
            txn,
            page_size: page_size as u32,
            files,
        })
    }

    /// Appends a transaction abort marker (informational; not synced —
    /// a transaction without a commit marker is a loser regardless).
    pub fn append_txn_abort(&self, txn: u64) -> Result<Appended> {
        self.append(&Record::TxnAbort { txn })
    }

    /// Appends a file-deletion marker (synced immediately: drops are
    /// applied to the filesystem right after, and must not be lost).
    /// Returns `true` if this call issued the fsync itself — see
    /// [`Wal::sync_to`].
    pub fn append_delete(&self, name: &str) -> Result<bool> {
        let a = self.append(&Record::Delete {
            name: name.to_string(),
        })?;
        self.sync_to(a.end)
    }

    /// Makes the log durable at least up to offset `upto` — the group
    /// commit gate. Returns `true` if *this* call issued an `sync_data`
    /// (it was a group leader), `false` if it rode a concurrent leader's
    /// fsync as a follower. Callers maintaining the `saardb_wal_syncs`
    /// counter increment it only on `true`, which is what makes group
    /// commit observable: fsyncs grow sublinearly in committers.
    pub fn sync_to(&self, upto: u64) -> Result<bool> {
        let mut did_fsync = false;
        let mut g = self.group.lock().unwrap();
        loop {
            if g.synced >= upto {
                return Ok(did_fsync);
            }
            if g.syncing {
                // A leader is inside sync_data; its result will cover every
                // byte appended before it snapshotted the length.
                g = self.group_cv.wait(g).unwrap();
                continue;
            }
            g.syncing = true;
            drop(g);
            // Snapshot outside the group lock: appenders hold `len` across
            // their positional write, so every byte below `target` is in
            // the file (possibly in the page cache) when sync_data runs.
            let target = *self.len.lock();
            let result = if self.no_space_injected() {
                Err(std::io::Error::from_raw_os_error(ENOSPC))
            } else {
                self.file.read().sync_data()
            };
            g = self.group.lock().unwrap();
            g.syncing = false;
            self.group_cv.notify_all();
            result.map_err(map_no_space)?;
            g.synced = g.synced.max(target);
            did_fsync = true;
        }
    }

    /// Forces every appended record to durable storage. Returns `true` if
    /// this call issued the fsync itself (see [`Wal::sync_to`]).
    pub fn sync(&self) -> Result<bool> {
        let end = self.len();
        self.sync_to(end)
    }

    /// Atomically replaces the log with a fresh one holding a single
    /// synced [`Record::Checkpoint`]: the new log is staged in
    /// `wal.log.tmp`, fsynced, and renamed over `wal.log`. A crash at any
    /// instant leaves either the complete old log or the complete new one
    /// — never the zero-length/torn-head state the old truncate-in-place
    /// scheme could expose between its `set_len(0)` and the synced fresh
    /// record. Only sound immediately after a commit (data files synced
    /// and consistent) with no transaction in flight.
    pub fn checkpoint(&self) -> Result<()> {
        // A checkpoint reclaims log space, but it must still stage and
        // fsync a fresh one-record log: while the volume is (simulated)
        // full, that staging write fails like any other.
        self.check_space()?;
        let mut g = self.group.lock().unwrap();
        while g.syncing {
            g = self.group_cv.wait(g).unwrap();
        }
        let mut len = self.len.lock();
        let mut file = self.file.write();
        let dir = self
            .path
            .parent()
            .map(Path::to_path_buf)
            .unwrap_or_else(|| PathBuf::from("."));
        let (fresh, fresh_len) = fresh_log(&dir).map_err(|e| match e {
            StorageError::Io(io) if io.raw_os_error() == Some(ENOSPC) => StorageError::NoSpace,
            other => other,
        })?;
        *file = fresh;
        *len = fresh_len;
        g.synced = fresh_len;
        drop(file);
        drop(len);
        drop(g);
        self.group_cv.notify_all();
        Ok(())
    }
}

/// Both images of a page-image record must be exactly one page. A
/// mismatched pair logged silently would corrupt undo: replay writes the
/// before-image back with the page size inferred from its length, so a
/// short image would splice into the wrong offsets.
fn check_image_pair(before: &[u8], after: &[u8]) -> Result<()> {
    if before.len() != after.len() {
        return Err(StorageError::PageBufferSize {
            len: after.len(),
            page_size: before.len(),
        });
    }
    Ok(())
}

/// Builds a fresh single-checkpoint log in `dir` and atomically installs
/// it as `dir/wal.log` (stage in `wal.log.tmp`, fsync, rename, fsync the
/// directory). Returns the still-open file handle — rename does not
/// invalidate it — and the new log length.
fn fresh_log(dir: &Path) -> Result<(File, u64)> {
    use std::os::unix::fs::FileExt;
    let tmp = dir.join(WAL_TMP_FILE);
    let file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)?;
    let framed = frame(&Record::Checkpoint);
    file.write_all_at(&framed, 0)?;
    file.sync_data()?;
    std::fs::rename(&tmp, dir.join(WAL_FILE))?;
    if let Ok(d) = File::open(dir) {
        // Make the rename itself durable. Best effort: some filesystems
        // refuse directory fsync, and the rename is atomic regardless.
        let _ = d.sync_data();
    }
    Ok((file, framed.len() as u64))
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("len", &self.len())
            .finish()
    }
}

/// What [`replay`] did to bring an environment directory back to its last
/// committed state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Bytes in the log when recovery started.
    pub log_bytes: u64,
    /// Valid records scanned.
    pub records: usize,
    /// Bytes discarded as a torn tail (checksum/length cut-off).
    pub torn_bytes: u64,
    /// Committed page images re-applied (redo).
    pub pages_redone: usize,
    /// Uncommitted page images rolled back (undo).
    pub pages_undone: usize,
    /// Files truncated to their committed page counts.
    pub files_truncated: usize,
    /// File deletions re-applied.
    pub files_deleted: usize,
    /// Leftover temp files removed.
    pub temp_files_removed: usize,
    /// True when a commit marker (environment epoch or transaction) was
    /// found; otherwise everything after the last checkpoint was rolled
    /// back.
    pub committed: bool,
    /// Transactions whose commit marker was found (winners, redone).
    pub txns_committed: usize,
    /// Transactions with page images but no commit marker (losers —
    /// in-flight or aborted at the crash — rolled back).
    pub txns_rolled_back: usize,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "wal: {} bytes, {} record(s), {} torn byte(s) discarded",
            self.log_bytes, self.records, self.torn_bytes
        )?;
        writeln!(
            f,
            "redo: {} page(s); undo: {} page(s); commit marker {}",
            self.pages_redone,
            self.pages_undone,
            if self.committed { "found" } else { "absent" }
        )?;
        writeln!(
            f,
            "txns: {} committed (redone), {} rolled back",
            self.txns_committed, self.txns_rolled_back
        )?;
        write!(
            f,
            "files: {} truncated, {} deletion(s) re-applied, {} temp file(s) removed",
            self.files_truncated, self.files_deleted, self.temp_files_removed
        )
    }
}

impl RecoveryReport {
    /// True when recovery changed nothing (clean shutdown).
    pub fn is_clean(&self) -> bool {
        self.pages_redone == 0
            && self.pages_undone == 0
            && self.files_truncated == 0
            && self.files_deleted == 0
            && self.temp_files_removed == 0
            && self.torn_bytes == 0
    }
}

/// Parses the log into its valid record prefix, returning the records and
/// the number of torn bytes discarded.
fn scan_log(bytes: &[u8]) -> (Vec<Record>, u64) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            break; // length overruns the file: torn tail
        };
        if crc32(payload) != crc {
            break;
        }
        let Some(record) = Record::decode(payload) else {
            break;
        };
        records.push(record);
        pos += 8 + len;
    }
    (records, (bytes.len() - pos) as u64)
}

/// Opens (creating if absent) a data file for recovery writes.
fn recovery_file(dir: &Path, name: &str) -> Result<File> {
    Ok(OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(dir.join(format!("{name}.sdb")))?)
}

/// The resolved fate of one page: enough of its update history to decide
/// its recovered content with the one-rule resolution (last committed
/// after-image wins; otherwise the first update's before-image).
struct PageFate {
    /// Before-image of the page's *first* logged update — the
    /// pre-crash-epoch content every loser chain unwinds to.
    first_before: Vec<u8>,
    /// After-image of the page's *last committed* update, if any.
    last_committed: Option<Vec<u8>>,
    /// Committed update records seen (report accounting).
    redo_records: usize,
    /// Loser update records seen (report accounting).
    undo_records: usize,
}

/// Replays `dir/wal.log`, restoring every data file to the state of the
/// last commit marker(s), then resets the log. Idempotent; a missing,
/// zero-length or head-torn log is an *empty* log and yields no
/// redo/undo work (leftover temp files are still removed).
///
/// Transactions interleave freely in the log: each page is restored to
/// the after-image of its last update by a committed transaction or
/// committed environment epoch; a page touched only by losers reverts to
/// its first update's before-image. This is exactly the old
/// "redo-prefix, undo-tail-in-reverse" behavior when the log holds a
/// single untagged epoch, and generalizes it to interleaved winners and
/// losers.
///
/// Must run before any file of the environment is opened —
/// [`crate::Env::open_dir`] does this automatically; the `saardb recover`
/// subcommand exposes it manually.
pub fn replay(dir: &Path) -> Result<RecoveryReport> {
    let mut report = RecoveryReport::default();

    // A leftover staging file from a checkpoint that crashed between the
    // staging write and the rename is garbage either way: the rename
    // either happened (wal.log is the fresh log) or it did not (wal.log is
    // the complete old log).
    match std::fs::remove_file(dir.join(WAL_TMP_FILE)) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e.into()),
    }

    let wal_path = dir.join(WAL_FILE);
    let bytes = match File::open(&wal_path) {
        Ok(mut f) => {
            let mut buf = Vec::new();
            f.read_to_end(&mut buf)?;
            buf
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.into()),
    };
    report.log_bytes = bytes.len() as u64;
    let (records, torn) = scan_log(&bytes);
    report.records = records.len();
    report.torn_bytes = torn;

    // Who committed? Environment epochs: every untagged image at or
    // before the LAST epoch marker. Transactions: every image whose
    // transaction has a TxnCommit marker anywhere in the log.
    let last_epoch_commit = records
        .iter()
        .rposition(|r| matches!(r, Record::Commit { .. }));
    let mut winners: HashSet<u64> = HashSet::new();
    let mut txns_seen: HashSet<u64> = HashSet::new();
    for r in &records {
        match r {
            Record::TxnCommit { txn, .. } => {
                winners.insert(*txn);
                txns_seen.insert(*txn);
            }
            Record::TxnPageImage { txn, .. } | Record::TxnAbort { txn } => {
                txns_seen.insert(*txn);
            }
            _ => {}
        }
    }
    report.txns_committed = winners.len();
    report.txns_rolled_back = txns_seen.len() - winners.len();
    report.committed = last_epoch_commit.is_some() || !winners.is_empty();

    use std::os::unix::fs::FileExt;
    let mut files: HashMap<String, File> = HashMap::new();
    let mut deleted: HashSet<String> = HashSet::new();
    let mut fates: HashMap<(String, u64), PageFate> = HashMap::new();

    for (i, record) in records.iter().enumerate() {
        let (name, page, before, after, committed) = match record {
            Record::PageImage {
                name,
                page,
                before,
                after,
            } => (
                name,
                *page,
                before,
                after,
                last_epoch_commit.is_some_and(|c| i <= c),
            ),
            Record::TxnPageImage {
                txn,
                name,
                page,
                before,
                after,
            } => (name, *page, before, after, winners.contains(txn)),
            Record::Delete { name } => {
                // Drops are immediate (not transactional): re-apply them
                // wherever they sit in the log, and forget accumulated
                // page fates for the dropped file.
                files.remove(name);
                fates.retain(|(n, _), _| n != name);
                let path = dir.join(format!("{name}.sdb"));
                match std::fs::remove_file(&path) {
                    Ok(()) => report.files_deleted += 1,
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e.into()),
                }
                deleted.insert(name.clone());
                continue;
            }
            Record::Commit { .. }
            | Record::Checkpoint
            | Record::TxnCommit { .. }
            | Record::TxnAbort { .. } => continue,
        };
        // An image after a deletion means the name was recreated.
        deleted.remove(name);
        let fate = fates
            .entry((name.clone(), page))
            .or_insert_with(|| PageFate {
                first_before: before.clone(),
                last_committed: None,
                redo_records: 0,
                undo_records: 0,
            });
        if committed {
            fate.last_committed = Some(after.clone());
            fate.redo_records += 1;
        } else {
            fate.undo_records += 1;
        }
    }

    // Apply each page's resolved fate with one write.
    for ((name, page), fate) in &fates {
        let file = match files.entry(name.clone()) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => e.insert(recovery_file(dir, name)?),
        };
        let image = fate.last_committed.as_ref().unwrap_or(&fate.first_before);
        file.write_all_at(image, page * image.len() as u64)?;
        report.pages_redone += fate.redo_records;
        report.pages_undone += fate.undo_records;
    }

    // Trim files back to their committed page counts: pages allocated
    // after the last commit marker are provisional (allocation extends
    // files eagerly, outside the pool).
    let last_counts = records.iter().rev().find_map(|r| match r {
        Record::Commit { page_size, files } => Some((*page_size, files)),
        Record::TxnCommit {
            page_size, files, ..
        } => Some((*page_size, files)),
        _ => None,
    });
    if let Some((page_size, counts)) = last_counts {
        for (name, pages) in counts {
            if deleted.contains(name) {
                continue;
            }
            let path = dir.join(format!("{name}.sdb"));
            let Ok(meta) = std::fs::metadata(&path) else {
                continue;
            };
            let committed_len = pages * page_size as u64;
            if meta.len() > committed_len {
                let file = match files.entry(name.clone()) {
                    std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(recovery_file(dir, name)?)
                    }
                };
                file.set_len(committed_len)?;
                report.files_truncated += 1;
            }
        }
    }

    for file in files.values() {
        file.sync_data()?;
    }

    // Leftover scratch files from a crashed process are garbage.
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let fname = entry.file_name();
            let fname = fname.to_string_lossy();
            if fname.starts_with("__tmp-") && fname.ends_with(".sdb") {
                std::fs::remove_file(entry.path())?;
                report.temp_files_removed += 1;
            }
        }
    }

    // The data files now hold the committed state: reset the log (same
    // atomic stage-and-rename as a live checkpoint).
    if report.log_bytes > 0 {
        fresh_log(dir)?;
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("saardb-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn read_file(dir: &Path, name: &str) -> Vec<u8> {
        std::fs::read(dir.join(format!("{name}.sdb"))).unwrap()
    }

    const PS: usize = 64;

    fn page(fill: u8) -> Vec<u8> {
        vec![fill; PS]
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn record_roundtrip() {
        let records = [
            Record::PageImage {
                name: "nodes".into(),
                page: 7,
                before: page(1),
                after: page(2),
            },
            Record::Commit {
                page_size: PS as u32,
                files: vec![("nodes".into(), 3), ("idx".into(), 9)],
            },
            Record::Delete { name: "old".into() },
            Record::Checkpoint,
            Record::TxnPageImage {
                txn: 42,
                name: "nodes".into(),
                page: 5,
                before: page(3),
                after: page(4),
            },
            Record::TxnCommit {
                txn: 42,
                page_size: PS as u32,
                files: vec![("nodes".into(), 6)],
            },
            Record::TxnAbort { txn: 43 },
        ];
        for r in &records {
            assert_eq!(Record::decode(&r.encode()).as_ref(), Some(r));
        }
    }

    #[test]
    fn replay_of_missing_log_is_clean() {
        let dir = tmp_dir("missing");
        let report = replay(&dir).unwrap();
        assert!(report.is_clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn redo_applies_committed_images() {
        let dir = tmp_dir("redo");
        let wal = Wal::open(&dir).unwrap();
        wal.append_page_image("f", PageId(0), &page(0), &page(0xAA))
            .unwrap();
        wal.append_page_image("f", PageId(1), &page(0), &page(0xBB))
            .unwrap();
        wal.append_commit(PS, vec![("f".into(), 2)]).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let report = replay(&dir).unwrap();
        assert_eq!(report.pages_redone, 2);
        assert_eq!(report.pages_undone, 0);
        assert!(report.committed);
        let bytes = read_file(&dir, "f");
        assert_eq!(&bytes[..PS], &page(0xAA)[..]);
        assert_eq!(&bytes[PS..2 * PS], &page(0xBB)[..]);
        // Log was reset to a bare checkpoint: a second replay is a no-op.
        let again = replay(&dir).unwrap();
        assert_eq!(again.pages_redone, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn undo_rolls_back_uncommitted_steals_in_reverse() {
        let dir = tmp_dir("undo");
        // Data file already holds the (uncommitted) stolen content.
        std::fs::write(dir.join("f.sdb"), page(0x33)).unwrap();
        let wal = Wal::open(&dir).unwrap();
        // The same page stolen twice after the last commit: committed
        // content 0x11, then 0x22 hit the disk, then 0x33.
        wal.append_page_image("f", PageId(0), &page(0x11), &page(0x22))
            .unwrap();
        wal.append_page_image("f", PageId(0), &page(0x22), &page(0x33))
            .unwrap();
        wal.sync().unwrap();
        drop(wal);
        let report = replay(&dir).unwrap();
        assert_eq!(report.pages_undone, 2);
        assert!(!report.committed);
        assert_eq!(read_file(&dir, "f"), page(0x11));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_cut_off() {
        let dir = tmp_dir("torn");
        let wal = Wal::open(&dir).unwrap();
        wal.append_page_image("f", PageId(0), &page(0), &page(0xAA))
            .unwrap();
        wal.append_commit(PS, vec![("f".into(), 1)]).unwrap();
        wal.sync().unwrap();
        let len = wal.len();
        wal.append_page_image("f", PageId(0), &page(0xAA), &page(0xBB))
            .unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Chop mid-way through the last record: a crash during append.
        let log = dir.join(WAL_FILE);
        let full = std::fs::metadata(&log).unwrap().len();
        let cut = len + (full - len) / 2;
        OpenOptions::new()
            .write(true)
            .open(&log)
            .unwrap()
            .set_len(cut)
            .unwrap();
        let report = replay(&dir).unwrap();
        assert_eq!(report.torn_bytes, cut - len);
        assert_eq!(report.records, 2);
        assert_eq!(report.pages_redone, 1);
        assert_eq!(read_file(&dir, "f")[..PS], page(0xAA)[..]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn commit_truncates_provisional_allocation() {
        let dir = tmp_dir("trunc");
        // File grew to 3 pages, but only 1 was committed.
        std::fs::write(dir.join("f.sdb"), [page(1), page(2), page(3)].concat()).unwrap();
        let wal = Wal::open(&dir).unwrap();
        wal.append_commit(PS, vec![("f".into(), 1)]).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let report = replay(&dir).unwrap();
        assert_eq!(report.files_truncated, 1);
        assert_eq!(read_file(&dir, "f").len(), PS);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delete_records_reapply_and_cancel_undo() {
        let dir = tmp_dir("delete");
        std::fs::write(dir.join("gone.sdb"), page(9)).unwrap();
        let wal = Wal::open(&dir).unwrap();
        wal.append_page_image("gone", PageId(0), &page(1), &page(9))
            .unwrap();
        wal.append_delete("gone").unwrap();
        drop(wal);
        let report = replay(&dir).unwrap();
        assert_eq!(report.files_deleted, 1);
        assert_eq!(report.pages_undone, 0, "undo for a dropped file is moot");
        assert!(!dir.join("gone.sdb").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_removes_leftover_temp_files() {
        let dir = tmp_dir("temps");
        std::fs::write(dir.join("__tmp-1234-1.sdb"), page(0)).unwrap();
        std::fs::write(dir.join("keep.sdb"), page(0)).unwrap();
        let report = replay(&dir).unwrap();
        assert_eq!(report.temp_files_removed, 1);
        assert!(dir.join("keep.sdb").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mismatched_image_lengths_rejected() {
        // Regression: this used to be a debug_assert only — release builds
        // silently logged a mismatched pair and corrupted undo.
        let dir = tmp_dir("mismatch");
        let wal = Wal::open(&dir).unwrap();
        let err = wal
            .append_page_image("f", PageId(0), &page(0), &[0u8; PS / 2])
            .unwrap_err();
        assert!(
            matches!(
                err,
                StorageError::PageBufferSize {
                    len,
                    page_size
                } if len == PS / 2 && page_size == PS
            ),
            "{err}"
        );
        let err = wal
            .append_txn_page_image(1, "f", PageId(0), &[0u8; PS - 1], &page(0))
            .unwrap_err();
        assert!(matches!(err, StorageError::PageBufferSize { .. }), "{err}");
        assert!(wal.is_empty(), "rejected records must not reach the log");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_length_log_is_empty_not_corrupt() {
        // The crash window of the old truncate-in-place checkpoint: a kill
        // right after set_len(0).
        let dir = tmp_dir("zerolen");
        std::fs::write(dir.join("f.sdb"), page(0x77)).unwrap();
        std::fs::write(dir.join(WAL_FILE), b"").unwrap();
        let report = replay(&dir).unwrap();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.records, 0);
        assert_eq!(read_file(&dir, "f"), page(0x77), "data untouched");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_head_log_is_empty_not_corrupt() {
        // The other half of the old checkpoint crash window: the fresh
        // checkpoint record was half-written when the process died.
        let dir = tmp_dir("tornhead");
        std::fs::write(dir.join("f.sdb"), page(0x77)).unwrap();
        let full = frame(&Record::Checkpoint);
        std::fs::write(dir.join(WAL_FILE), &full[..full.len() - 1]).unwrap();
        let report = replay(&dir).unwrap();
        assert_eq!(report.records, 0);
        assert_eq!(report.torn_bytes, full.len() as u64 - 1);
        assert_eq!(report.pages_redone + report.pages_undone, 0);
        assert_eq!(read_file(&dir, "f"), page(0x77), "data untouched");
        // The reset left a valid log behind.
        let again = replay(&dir).unwrap();
        assert_eq!(again.torn_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_removes_stale_checkpoint_staging_file() {
        let dir = tmp_dir("stale-tmp");
        std::fs::write(dir.join(WAL_TMP_FILE), b"half-written garbage").unwrap();
        replay(&dir).unwrap();
        assert!(!dir.join(WAL_TMP_FILE).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_is_atomic_under_reopen() {
        let dir = tmp_dir("ckpt-atomic");
        let wal = Wal::open(&dir).unwrap();
        wal.append_page_image("f", PageId(0), &page(0), &page(1))
            .unwrap();
        wal.sync().unwrap();
        wal.checkpoint().unwrap();
        assert!(!dir.join(WAL_TMP_FILE).exists(), "staging file renamed");
        // The swapped-in handle keeps appending to the new log.
        wal.append_page_image("f", PageId(0), &page(1), &page(2))
            .unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (records, torn) = scan_log(&std::fs::read(dir.join(WAL_FILE)).unwrap());
        assert_eq!(torn, 0);
        assert!(matches!(records[0], Record::Checkpoint));
        assert_eq!(records.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interleaved_txns_winner_redone_loser_undone() {
        let dir = tmp_dir("interleaved");
        let wal = Wal::open(&dir).unwrap();
        // Two transactions interleave their steals; txn 1 commits, txn 2
        // is in flight at the crash.
        wal.append_txn_page_image(1, "a", PageId(0), &page(0), &page(0x1A))
            .unwrap();
        wal.append_txn_page_image(2, "b", PageId(0), &page(0), &page(0x2A))
            .unwrap();
        wal.append_txn_page_image(1, "a", PageId(1), &page(0), &page(0x1B))
            .unwrap();
        wal.append_txn_commit(1, PS, vec![("a".into(), 2), ("b".into(), 1)])
            .unwrap();
        wal.append_txn_page_image(2, "b", PageId(0), &page(0x2A), &page(0x2B))
            .unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Pretend the loser's steals reached the data file.
        std::fs::write(dir.join("b.sdb"), page(0x2B)).unwrap();
        let report = replay(&dir).unwrap();
        assert_eq!(report.txns_committed, 1);
        assert_eq!(report.txns_rolled_back, 1);
        assert_eq!(report.pages_redone, 2);
        assert_eq!(report.pages_undone, 2);
        assert!(report.committed);
        let a = read_file(&dir, "a");
        assert_eq!(&a[..PS], &page(0x1A)[..]);
        assert_eq!(&a[PS..2 * PS], &page(0x1B)[..]);
        // The loser's page reverts to its first update's before-image.
        assert_eq!(read_file(&dir, "b"), page(0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn committed_txn_wins_over_later_loser_on_same_page() {
        let dir = tmp_dir("same-page");
        let wal = Wal::open(&dir).unwrap();
        // Winner writes page 0, then a loser rewrites it (lock released at
        // commit, second txn touched the page, crashed in flight).
        wal.append_txn_page_image(1, "f", PageId(0), &page(0), &page(0x11))
            .unwrap();
        wal.append_txn_commit(1, PS, vec![("f".into(), 1)]).unwrap();
        wal.append_txn_page_image(2, "f", PageId(0), &page(0x11), &page(0x22))
            .unwrap();
        wal.sync().unwrap();
        drop(wal);
        std::fs::write(dir.join("f.sdb"), page(0x22)).unwrap();
        let report = replay(&dir).unwrap();
        assert_eq!(read_file(&dir, "f"), page(0x11), "{report}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn aborted_txn_counts_as_rolled_back() {
        let dir = tmp_dir("abort");
        let wal = Wal::open(&dir).unwrap();
        wal.append_txn_page_image(7, "f", PageId(0), &page(0), &page(1))
            .unwrap();
        wal.append_txn_abort(7).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let report = replay(&dir).unwrap();
        assert_eq!(report.txns_committed, 0);
        assert_eq!(report.txns_rolled_back, 1);
        assert_eq!(read_file(&dir, "f"), page(0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_sync_to_batches_behind_one_fsync() {
        let dir = tmp_dir("group");
        let wal = std::sync::Arc::new(Wal::open(&dir).unwrap());
        let ends: Vec<u64> = (0..4)
            .map(|i| {
                wal.append_txn_page_image(i, "f", PageId(0), &page(0), &page(1))
                    .unwrap()
                    .end
            })
            .collect();
        // One leader fsync at the max offset covers every earlier offset.
        assert!(wal.sync_to(*ends.last().unwrap()).unwrap());
        for &end in &ends {
            assert!(
                !wal.sync_to(end).unwrap(),
                "already-durable offsets must not fsync again"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_epoch_and_txn_commit_both_mark_committed() {
        let dir = tmp_dir("both-commit");
        let wal = Wal::open(&dir).unwrap();
        wal.append_page_image("f", PageId(0), &page(0), &page(0xEE))
            .unwrap();
        wal.append_commit(PS, vec![("f".into(), 1)]).unwrap();
        wal.append_txn_page_image(3, "f", PageId(0), &page(0xEE), &page(0xFF))
            .unwrap();
        wal.append_txn_commit(3, PS, vec![("f".into(), 1)]).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let report = replay(&dir).unwrap();
        assert!(report.committed);
        assert_eq!(report.pages_redone, 2);
        // The txn committed after the epoch: its after-image wins.
        assert_eq!(read_file(&dir, "f"), page(0xFF));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
