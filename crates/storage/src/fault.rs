//! Fault injection: a [`Backend`] decorator that simulates crashes, torn
//! page writes and transient I/O errors.
//!
//! The crash-torture harness (crates/testbed) arms a shared [`FaultState`]
//! with a *kill-point* — "crash after N page writes" — wraps every backend
//! of an environment in a [`FaultBackend`] sharing that state, and runs a
//! workload until the kill fires. From then on every operation on the
//! wrapped backends fails (the process is "dead"); the harness drops the
//! environment, reopens it without faults, and checks that WAL recovery
//! restored exactly the last committed state.

use crate::backend::Backend;
use crate::error::StorageError;
use crate::page::PageId;
use crate::Result;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// What happens at the kill-point's page write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KillMode {
    /// The write at the kill-point never reaches the file.
    #[default]
    BeforeWrite,
    /// The write at the kill-point is torn: only the first half of the
    /// page's new bytes land; the rest keeps its old content.
    TornWrite,
}

/// Shared fault plan. One state can be shared by every [`FaultBackend`] of
/// an environment, so the kill-point counts page writes globally.
#[derive(Debug, Default)]
pub struct FaultState {
    /// Page writes observed so far (successful or torn).
    writes: AtomicU64,
    /// Kill after this many page writes; `u64::MAX` = disarmed.
    kill_after: AtomicU64,
    kill_mode_torn: AtomicBool,
    /// Latched once the kill-point fires: all later operations fail.
    killed: AtomicBool,
    /// One-shot transient errors (no kill): the next write / sync fails.
    fail_next_write: AtomicBool,
    fail_next_sync: AtomicBool,
    /// While set, every WAL append/sync fails with
    /// [`StorageError::NoSpace`] — a level, not a one-shot, because a full
    /// volume stays full until space is reclaimed.
    wal_no_space: AtomicBool,
}

impl FaultState {
    /// A disarmed fault plan (all operations pass through).
    pub fn new() -> Arc<FaultState> {
        Arc::new(FaultState {
            kill_after: AtomicU64::new(u64::MAX),
            ..FaultState::default()
        })
    }

    /// Arms the kill-point: the first `n` page writes succeed; the write
    /// after them triggers `mode` and latches the killed state.
    pub fn arm_kill(&self, n: u64, mode: KillMode) {
        self.writes.store(0, Ordering::SeqCst);
        self.killed.store(false, Ordering::SeqCst);
        self.kill_mode_torn
            .store(mode == KillMode::TornWrite, Ordering::SeqCst);
        self.kill_after.store(n, Ordering::SeqCst);
    }

    /// Clears every armed fault and the killed latch.
    pub fn disarm(&self) {
        self.kill_after.store(u64::MAX, Ordering::SeqCst);
        self.killed.store(false, Ordering::SeqCst);
        self.fail_next_write.store(false, Ordering::SeqCst);
        self.fail_next_sync.store(false, Ordering::SeqCst);
        self.wal_no_space.store(false, Ordering::SeqCst);
    }

    /// Simulates a full volume under the write-ahead log: while set, every
    /// WAL append and sync fails with [`StorageError::NoSpace`], exactly as
    /// a real `ENOSPC` would. Clear with `set_wal_no_space(false)` (or
    /// [`FaultState::disarm`]) to model space being reclaimed.
    pub fn set_wal_no_space(&self, full: bool) {
        self.wal_no_space.store(full, Ordering::SeqCst);
    }

    /// True while the injected disk-full condition is active.
    pub fn wal_no_space(&self) -> bool {
        self.wal_no_space.load(Ordering::SeqCst)
    }

    /// Makes the next page write fail with an injected I/O error without
    /// killing the backend (a transient fault).
    pub fn fail_next_write(&self) {
        self.fail_next_write.store(true, Ordering::SeqCst);
    }

    /// Makes the next sync fail with an injected I/O error without killing
    /// the backend.
    pub fn fail_next_sync(&self) {
        self.fail_next_sync.store(true, Ordering::SeqCst);
    }

    /// Page writes observed since the last [`FaultState::arm_kill`].
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::SeqCst)
    }

    /// True once the kill-point has fired.
    pub fn is_killed(&self) -> bool {
        self.killed.load(Ordering::SeqCst)
    }

    fn injected(op: &'static str) -> StorageError {
        StorageError::FaultInjected(op.to_string())
    }

    fn check_alive(&self, op: &'static str) -> Result<()> {
        if self.is_killed() {
            return Err(Self::injected(op));
        }
        Ok(())
    }

    /// Accounts one page write; decides whether it proceeds, tears, or
    /// fails. Returns `Ok(true)` for a torn write.
    fn on_write(&self) -> Result<bool> {
        self.check_alive("write_page after kill")?;
        if self.fail_next_write.swap(false, Ordering::SeqCst) {
            return Err(Self::injected("write_page (transient)"));
        }
        let n = self.writes.fetch_add(1, Ordering::SeqCst);
        if n >= self.kill_after.load(Ordering::SeqCst) {
            self.killed.store(true, Ordering::SeqCst);
            if self.kill_mode_torn.load(Ordering::SeqCst) {
                return Ok(true);
            }
            return Err(Self::injected("write_page at kill-point"));
        }
        Ok(false)
    }
}

/// A [`Backend`] decorator that injects the faults of a shared
/// [`FaultState`]. Reads, writes, allocation and sync all fail once the
/// state is killed; until then, writes are counted toward the kill-point.
pub struct FaultBackend {
    inner: Arc<dyn Backend>,
    state: Arc<FaultState>,
}

impl FaultBackend {
    /// Wraps `inner`, injecting the faults of `state`.
    pub fn new(inner: Arc<dyn Backend>, state: Arc<FaultState>) -> FaultBackend {
        FaultBackend { inner, state }
    }

    /// The shared fault state.
    pub fn state(&self) -> &Arc<FaultState> {
        &self.state
    }
}

impl Backend for FaultBackend {
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        self.state.check_alive("read_page after kill")?;
        self.inner.read_page(id, buf)
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        let torn = self.state.on_write()?;
        if torn {
            // Crash mid-write: the first half of the new page lands, the
            // rest keeps the old bytes — then the process is dead.
            let mut spliced = vec![0u8; buf.len()];
            self.inner.read_page(id, &mut spliced)?;
            let half = buf.len() / 2;
            spliced[..half].copy_from_slice(&buf[..half]);
            self.inner.write_page(id, &spliced)?;
            return Err(FaultState::injected("write_page torn at kill-point"));
        }
        self.inner.write_page(id, buf)
    }

    fn allocate_page(&self) -> Result<PageId> {
        // Allocation extends the file (a physical write): it respects the
        // killed latch but does not count toward the kill-point, keeping
        // kill schedules in units of data-page writes.
        self.state.check_alive("allocate_page after kill")?;
        self.inner.allocate_page()
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }

    fn sync(&self) -> Result<()> {
        self.state.check_alive("sync after kill")?;
        if self.state.fail_next_sync.swap(false, Ordering::SeqCst) {
            return Err(FaultState::injected("sync (transient)"));
        }
        self.inner.sync()
    }

    fn path(&self) -> Option<&Path> {
        self.inner.path()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    const PS: usize = 128;

    fn setup() -> (FaultBackend, Arc<FaultState>) {
        let state = FaultState::new();
        let inner: Arc<dyn Backend> = Arc::new(MemBackend::new(PS));
        (FaultBackend::new(inner, Arc::clone(&state)), state)
    }

    #[test]
    fn disarmed_passes_through() {
        let (b, state) = setup();
        let p = b.allocate_page().unwrap();
        b.write_page(p, &[7u8; PS]).unwrap();
        let mut buf = vec![0u8; PS];
        b.read_page(p, &mut buf).unwrap();
        assert_eq!(buf[0], 7);
        assert_eq!(state.writes(), 1);
        b.sync().unwrap();
    }

    #[test]
    fn kill_point_latches_all_operations() {
        let (b, state) = setup();
        let p0 = b.allocate_page().unwrap();
        let p1 = b.allocate_page().unwrap();
        state.arm_kill(1, KillMode::BeforeWrite);
        b.write_page(p0, &[1u8; PS]).unwrap();
        let err = b.write_page(p1, &[2u8; PS]).unwrap_err();
        assert!(matches!(err, StorageError::FaultInjected(_)), "{err}");
        assert!(state.is_killed());
        // Dead: everything fails, and the killed write never landed.
        let mut buf = vec![0u8; PS];
        assert!(b.read_page(p1, &mut buf).is_err());
        assert!(b.sync().is_err());
        assert!(b.allocate_page().is_err());
        state.disarm();
        b.read_page(p1, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0), "killed write must not land");
    }

    #[test]
    fn torn_write_leaves_half_a_page() {
        let (b, state) = setup();
        let p = b.allocate_page().unwrap();
        b.write_page(p, &[0xAAu8; PS]).unwrap();
        state.arm_kill(0, KillMode::TornWrite);
        let err = b.write_page(p, &[0xBBu8; PS]).unwrap_err();
        assert!(matches!(err, StorageError::FaultInjected(_)), "{err}");
        state.disarm();
        let mut buf = vec![0u8; PS];
        b.read_page(p, &mut buf).unwrap();
        assert!(buf[..PS / 2].iter().all(|&x| x == 0xBB));
        assert!(buf[PS / 2..].iter().all(|&x| x == 0xAA));
    }

    #[test]
    fn transient_faults_are_one_shot() {
        let (b, state) = setup();
        let p = b.allocate_page().unwrap();
        state.fail_next_write();
        assert!(b.write_page(p, &[1u8; PS]).is_err());
        b.write_page(p, &[1u8; PS]).unwrap();
        state.fail_next_sync();
        assert!(b.sync().is_err());
        b.sync().unwrap();
        assert!(!state.is_killed(), "transient faults do not kill");
    }
}
