//! Self-cleaning scratch files for materialized intermediates and sort runs.

use crate::env::{Env, FileId};
use crate::Result;

/// A scratch file removed from the environment when dropped.
///
/// The milestone-3 engines "write to disk each intermediate result, and
/// re-read it whenever necessary"; `TempFile` is the mechanism, guaranteeing
/// the scratch space is reclaimed even on error paths.
pub struct TempFile {
    env: Env,
    file: Option<FileId>,
}

impl TempFile {
    /// Allocates a fresh scratch file in `env`.
    pub fn new(env: &Env) -> Result<TempFile> {
        let file = env.create_temp_file()?;
        Ok(TempFile {
            env: env.clone(),
            file: Some(file),
        })
    }

    /// The underlying file id.
    pub fn id(&self) -> FileId {
        self.file.expect("TempFile used after into_inner")
    }

    /// Releases ownership without deleting (the caller takes responsibility).
    pub fn into_inner(mut self) -> FileId {
        self.file.take().expect("TempFile already consumed")
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        if let Some(file) = self.file.take() {
            // Best-effort: a failed delete leaks a scratch file, which the
            // next environment over the same directory will ignore.
            let _ = self.env.remove_file(file);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_removes_file() {
        let env = Env::memory();
        let id;
        {
            let tmp = TempFile::new(&env).unwrap();
            id = tmp.id();
            env.allocate_page(id).unwrap();
        }
        assert!(env.page_count(id).is_err(), "file should be gone");
    }

    #[test]
    fn into_inner_keeps_file() {
        let env = Env::memory();
        let tmp = TempFile::new(&env).unwrap();
        let id = tmp.into_inner();
        env.allocate_page(id).unwrap();
        assert_eq!(env.page_count(id).unwrap(), 1);
    }
}
