//! Append-only heap files of variable-length records.
//!
//! Used for materialized intermediate results (milestone 3 allowed engines
//! to spill every intermediate) and for external-sort runs. Records are
//! opaque byte strings; page layout is
//!
//! ```text
//! page 0 (meta):  magic "SAHP" | record_count u64
//! page ≥ 1:       nrecords u16 | free_off u16 | records: (len u32 | bytes)*
//! ```

use crate::codec;
use crate::env::{Env, FileId};
use crate::error::StorageError;
use crate::page::PageId;
use crate::temp::TempFile;
use crate::Result;

const MAGIC: &[u8; 4] = b"SAHP";
const META_COUNT_OFF: usize = 4;
const DATA_HEADER: usize = 4; // nrecords u16 | free_off u16
const LEN_PREFIX: usize = 4;

/// An append-only record file. See module docs.
pub struct HeapFile {
    env: Env,
    file: FileId,
    /// Keeps a scratch file alive for the lifetime of the heap.
    _temp: Option<TempFile>,
    /// Cached record count (mirrored to the meta page).
    count: u64,
    /// Page currently being filled.
    tail: Option<PageId>,
}

impl HeapFile {
    /// Creates a heap in a fresh named file.
    pub fn create(env: &Env, name: &str) -> Result<HeapFile> {
        let file = env.create_file(name)?;
        Self::init(env.clone(), file, None)
    }

    /// Creates a heap in a self-deleting scratch file.
    pub fn temp(env: &Env) -> Result<HeapFile> {
        let tmp = TempFile::new(env)?;
        let file = tmp.id();
        Self::init(env.clone(), file, Some(tmp))
    }

    /// Creates a heap in an existing, empty file.
    pub fn create_in(env: &Env, file: FileId) -> Result<HeapFile> {
        Self::init(env.clone(), file, None)
    }

    fn init(env: Env, file: FileId, temp: Option<TempFile>) -> Result<HeapFile> {
        let meta = env.allocate_page(file)?;
        debug_assert_eq!(meta, PageId(0));
        env.with_page_mut(file, meta, |data| {
            data[..4].copy_from_slice(MAGIC);
            data[META_COUNT_OFF..META_COUNT_OFF + 8].copy_from_slice(&0u64.to_le_bytes());
        })?;
        Ok(HeapFile {
            env,
            file,
            _temp: temp,
            count: 0,
            tail: None,
        })
    }

    /// Opens an existing heap file.
    pub fn open(env: &Env, name: &str) -> Result<HeapFile> {
        let file = env.open_file(name)?;
        let count = env.with_page(file, PageId(0), |data| {
            if &data[..4] != MAGIC {
                return Err(StorageError::corrupt(format!("{name}: bad heap magic")));
            }
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&data[META_COUNT_OFF..META_COUNT_OFF + 8]);
            Ok(u64::from_le_bytes(bytes))
        })??;
        let pages = env.page_count(file)?;
        let tail = if pages > 1 {
            Some(PageId(pages - 1))
        } else {
            None
        };
        Ok(HeapFile {
            env: env.clone(),
            file,
            _temp: None,
            count,
            tail,
        })
    }

    /// The underlying file id.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Number of records.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// True when no records have been appended.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Largest record this heap can store.
    pub fn max_record(&self) -> usize {
        self.env.page_size() - DATA_HEADER - LEN_PREFIX
    }

    /// Appends a record.
    pub fn append(&mut self, record: &[u8]) -> Result<()> {
        let needed = LEN_PREFIX + record.len();
        if record.len() > self.max_record() {
            return Err(StorageError::RecordTooLarge {
                len: record.len(),
                max: self.max_record(),
            });
        }
        let page_size = self.env.page_size();
        let page = match self.tail {
            Some(p) => {
                let free = self.env.with_page(self.file, p, free_off)?;
                if free as usize + needed <= page_size {
                    p
                } else {
                    let np = self.env.allocate_page(self.file)?;
                    self.init_data_page(np)?;
                    self.tail = Some(np);
                    np
                }
            }
            None => {
                let np = self.env.allocate_page(self.file)?;
                self.init_data_page(np)?;
                self.tail = Some(np);
                np
            }
        };
        self.env.with_page_mut(self.file, page, |data| {
            let n = nrecords(data);
            let off = free_off(data) as usize;
            data[off..off + 4].copy_from_slice(&(record.len() as u32).to_le_bytes());
            data[off + 4..off + 4 + record.len()].copy_from_slice(record);
            set_nrecords(data, n + 1);
            set_free_off(data, (off + 4 + record.len()) as u16);
        })?;
        self.count += 1;
        self.env.with_page_mut(self.file, PageId(0), |data| {
            data[META_COUNT_OFF..META_COUNT_OFF + 8].copy_from_slice(&self.count.to_le_bytes());
        })?;
        Ok(())
    }

    /// Appends a record assembled from parts (saves a concat allocation for
    /// hot operator spills).
    pub fn append_parts(&mut self, parts: &[&[u8]]) -> Result<()> {
        let mut record = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
        for p in parts {
            record.extend_from_slice(p);
        }
        self.append(&record)
    }

    fn init_data_page(&self, page: PageId) -> Result<()> {
        self.env.with_page_mut(self.file, page, |data| {
            set_nrecords(data, 0);
            set_free_off(data, DATA_HEADER as u16);
        })
    }

    /// Iterates over all records in append order. Each `next()` clones the
    /// record bytes; a full page of records is decoded per page fetch.
    pub fn scan(&self) -> Scan<'_> {
        Scan {
            heap: self,
            next_page: 1,
            buffered: Vec::new(),
            buffer_pos: 0,
            error: None,
        }
    }

    /// Number of data pages (for explicit page-at-a-time iteration by
    /// operators that must own their cursor state).
    pub fn data_pages(&self) -> Result<u64> {
        Ok(self.env.page_count(self.file)?.saturating_sub(1))
    }

    /// All records of data page `index` (0-based over data pages). Together
    /// with [`Self::data_pages`] this lets a caller iterate with state it
    /// owns — the re-openable scans that nested-loops inners need.
    pub fn page_records(&self, index: u64) -> Result<Vec<Vec<u8>>> {
        let page = PageId(index + 1);
        self.env.with_page(self.file, page, |data| {
            let n = nrecords(data) as usize;
            let mut out = Vec::with_capacity(n);
            let mut pos = DATA_HEADER;
            for _ in 0..n {
                out.push(codec::get_bytes(data, &mut pos).to_vec());
            }
            out
        })
    }
}

fn nrecords(data: &[u8]) -> u16 {
    u16::from_le_bytes([data[0], data[1]])
}

fn set_nrecords(data: &mut [u8], n: u16) {
    data[0..2].copy_from_slice(&n.to_le_bytes());
}

fn free_off(data: &[u8]) -> u16 {
    u16::from_le_bytes([data[2], data[3]])
}

fn set_free_off(data: &mut [u8], off: u16) {
    data[2..4].copy_from_slice(&off.to_le_bytes());
}

/// Streaming record iterator over a [`HeapFile`].
pub struct Scan<'a> {
    heap: &'a HeapFile,
    next_page: u64,
    buffered: Vec<Vec<u8>>,
    buffer_pos: usize,
    error: Option<StorageError>,
}

impl<'a> Scan<'a> {
    fn fill(&mut self) -> Result<bool> {
        let pages = self.heap.env.page_count(self.heap.file)?;
        while self.next_page < pages {
            let page = PageId(self.next_page);
            self.next_page += 1;
            let records = self.heap.env.with_page(self.heap.file, page, |data| {
                let n = nrecords(data) as usize;
                let mut out = Vec::with_capacity(n);
                let mut pos = DATA_HEADER;
                for _ in 0..n {
                    out.push(codec::get_bytes(data, &mut pos).to_vec());
                }
                out
            })?;
            if !records.is_empty() {
                self.buffered = records;
                self.buffer_pos = 0;
                return Ok(true);
            }
        }
        Ok(false)
    }
}

impl<'a> Iterator for Scan<'a> {
    type Item = Result<Vec<u8>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.error.is_some() {
            return None;
        }
        if self.buffer_pos >= self.buffered.len() {
            match self.fill() {
                Ok(true) => {}
                Ok(false) => return None,
                Err(e) => {
                    self.error = Some(e.clone());
                    return Some(Err(e));
                }
            }
        }
        let rec = std::mem::take(&mut self.buffered[self.buffer_pos]);
        self.buffer_pos += 1;
        Some(Ok(rec))
    }
}

/// Owning record iterator: consumes the [`HeapFile`] (keeping any scratch
/// file alive) and streams records one page at a time. Used by the external
/// sorter's merge phase, where run lifetimes must be tied to the iterator.
pub struct OwnedScan {
    heap: HeapFile,
    next_page: u64,
    buffered: Vec<Vec<u8>>,
    buffer_pos: usize,
    done: bool,
}

impl HeapFile {
    /// Converts the heap into an owning streaming scan.
    pub fn into_scan(self) -> OwnedScan {
        OwnedScan {
            heap: self,
            next_page: 1,
            buffered: Vec::new(),
            buffer_pos: 0,
            done: false,
        }
    }
}

impl OwnedScan {
    fn fill(&mut self) -> Result<bool> {
        let pages = self.heap.env.page_count(self.heap.file)?;
        while self.next_page < pages {
            let page = PageId(self.next_page);
            self.next_page += 1;
            let records = self.heap.env.with_page(self.heap.file, page, |data| {
                let n = nrecords(data) as usize;
                let mut out = Vec::with_capacity(n);
                let mut pos = DATA_HEADER;
                for _ in 0..n {
                    out.push(codec::get_bytes(data, &mut pos).to_vec());
                }
                out
            })?;
            if !records.is_empty() {
                self.buffered = records;
                self.buffer_pos = 0;
                return Ok(true);
            }
        }
        Ok(false)
    }
}

impl Iterator for OwnedScan {
    type Item = Result<Vec<u8>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if self.buffer_pos >= self.buffered.len() {
            match self.fill() {
                Ok(true) => {}
                Ok(false) => {
                    self.done = true;
                    return None;
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
        let rec = std::mem::take(&mut self.buffered[self.buffer_pos]);
        self.buffer_pos += 1;
        Some(Ok(rec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EnvConfig;

    #[test]
    fn append_scan_roundtrip() {
        let env = Env::memory();
        let mut heap = HeapFile::create(&env, "h").unwrap();
        let records: Vec<Vec<u8>> = (0..100u32)
            .map(|i| i.to_le_bytes().repeat(1 + (i % 5) as usize))
            .collect();
        for r in &records {
            heap.append(r).unwrap();
        }
        assert_eq!(heap.len(), 100);
        let scanned: Vec<Vec<u8>> = heap.scan().map(|r| r.unwrap()).collect();
        assert_eq!(scanned, records);
    }

    #[test]
    fn spans_many_pages() {
        let env = Env::memory_with(EnvConfig {
            page_size: 256,
            pool_bytes: 8 * 256,
        });
        let mut heap = HeapFile::create(&env, "h").unwrap();
        let record = vec![7u8; 100];
        for _ in 0..50 {
            heap.append(&record).unwrap();
        }
        assert!(env.page_count(heap.file_id()).unwrap() > 10);
        assert_eq!(heap.scan().count(), 50);
    }

    #[test]
    fn oversized_record_rejected() {
        let env = Env::memory_with(EnvConfig {
            page_size: 256,
            pool_bytes: 8 * 256,
        });
        let mut heap = HeapFile::create(&env, "h").unwrap();
        let err = heap.append(&vec![0u8; 300]).unwrap_err();
        assert!(matches!(err, StorageError::RecordTooLarge { .. }));
    }

    #[test]
    fn empty_record_ok() {
        let env = Env::memory();
        let mut heap = HeapFile::create(&env, "h").unwrap();
        heap.append(b"").unwrap();
        heap.append(b"x").unwrap();
        let recs: Vec<Vec<u8>> = heap.scan().map(|r| r.unwrap()).collect();
        assert_eq!(recs, vec![Vec::<u8>::new(), b"x".to_vec()]);
    }

    #[test]
    fn empty_heap_scans_nothing() {
        let env = Env::memory();
        let heap = HeapFile::create(&env, "h").unwrap();
        assert!(heap.is_empty());
        assert_eq!(heap.scan().count(), 0);
    }

    #[test]
    fn persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("saardb-heap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let env = Env::open_dir(&dir, EnvConfig::default()).unwrap();
            let mut heap = HeapFile::create(&env, "records").unwrap();
            heap.append(b"alpha").unwrap();
            heap.append(b"beta").unwrap();
            env.flush().unwrap();
        }
        {
            let env = Env::open_dir(&dir, EnvConfig::default()).unwrap();
            let heap = HeapFile::open(&env, "records").unwrap();
            assert_eq!(heap.len(), 2);
            let recs: Vec<Vec<u8>> = heap.scan().map(|r| r.unwrap()).collect();
            assert_eq!(recs, vec![b"alpha".to_vec(), b"beta".to_vec()]);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn temp_heap_self_deletes() {
        let env = Env::memory();
        let id;
        {
            let mut heap = HeapFile::temp(&env).unwrap();
            heap.append(b"gone").unwrap();
            id = heap.file_id();
        }
        assert!(env.page_count(id).is_err());
    }

    #[test]
    fn open_rejects_non_heap() {
        let env = Env::memory();
        let f = env.create_file("junk").unwrap();
        env.allocate_page(f).unwrap();
        assert!(matches!(
            HeapFile::open(&env, "junk"),
            Err(StorageError::Corrupt(_))
        ));
    }
}
