//! The per-query resource governor: cooperative cancellation, wall-clock
//! deadlines and byte-accounted memory budgets.
//!
//! The paper's testbed "takes precautions against system crashes" and runs
//! efficiency tests under "only 20 MB of memory" — which is only honest if
//! a runaway query can actually be *stopped* and a hungry query actually
//! *bounded*. A [`Governor`] is a cheap, cloneable handle shared between
//! the thread driving a query and whoever supervises it (the testbed
//! runner, a future server): the supervisor fires [`Governor::cancel`] or
//! arms a deadline/budget up front, and the executing code calls
//! [`Governor::check`] at row boundaries and page acquires, and
//! [`Governor::try_reserve`]/[`Governor::release`] around large
//! allocations.
//!
//! ## Check placement
//!
//! Checks are cooperative. The two structural choke points every engine
//! passes through are:
//!
//! * **page acquires** — the buffer pool checks the thread's installed
//!   governor at the top of every pin ([`Governor::check_current`]), which
//!   covers all storage-touching engines without threading a handle
//!   through every call signature, and
//! * **row boundaries** — `Operator::next` in the physical layer and the
//!   binding loops of the interpreter engines check explicitly, which
//!   covers pool-hit-only stretches and the in-memory M1 engine.
//!
//! The deadline clock is consulted only every [`DEADLINE_STRIDE`] checks:
//! `Instant::now()` costs tens of nanoseconds, a relaxed atomic load
//! costs ~1 ns, and the warm point-get path runs at a few hundred
//! nanoseconds per operation — the stride keeps governor overhead within
//! noise there.
//!
//! ## Thread-local installation
//!
//! A query executes on one thread. [`Governor::install`] pushes the
//! handle onto a thread-local stack (RAII-popped by [`GovernorScope`]), so
//! deeply buried code — the buffer pool, the external sorter — can reach
//! the active governor via [`Governor::current`] without signature
//! changes. Nesting is allowed; the innermost installation wins.

use crate::error::StorageError;
use crate::Result;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Deadline-clock stride: `Instant::now()` is consulted on the first check
/// and every this-many checks after (see module docs).
pub const DEADLINE_STRIDE: u64 = 32;

#[derive(Debug)]
struct GovInner {
    /// Cancellation token (set by the supervisor or a tripped fault).
    cancel: AtomicBool,
    /// Set once the deadline clock has been observed past the deadline, so
    /// every later check fails fast with the *deadline* error (not the
    /// generic cancellation).
    deadline_hit: AtomicBool,
    /// Absolute wall-clock deadline.
    deadline: Option<Instant>,
    /// Byte budget for accounted allocations; `None` = unbounded.
    mem_budget: Option<usize>,
    /// Currently reserved bytes.
    mem_used: AtomicUsize,
    /// High-water mark of reserved bytes.
    mem_peak: AtomicUsize,
    /// Cooperative checks performed.
    checks: AtomicU64,
    /// Spills caused by budget pressure (external-sort run generation).
    spill_count: AtomicU64,
    /// Bytes written by those spills.
    spill_bytes: AtomicU64,
    /// Fault injection: fire the cancellation token at the Nth check
    /// (0 = disabled). The cancellation-torture analogue of
    /// [`crate::fault::FaultState`]'s kill-after-N-writes.
    trip_cancel_after: AtomicU64,
    /// Fault injection: panic at the Nth check (0 = disabled) — simulates
    /// a crashing engine for the testbed's panic-isolation tests.
    trip_panic_after: AtomicU64,
}

/// A per-query resource governor handle. Cheap to clone; all clones share
/// the same token, deadline, budget and counters. The default handle
/// ([`Governor::none`]) is inert: every check and reservation is a no-op.
#[derive(Clone, Default)]
pub struct Governor {
    inner: Option<Arc<GovInner>>,
}

/// A point-in-time copy of a governor's counters, attached to query
/// metrics and rendered on the EXPLAIN ANALYZE "governor:" line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GovernorSnapshot {
    /// False for the inert [`Governor::none`] handle.
    pub active: bool,
    /// Cooperative checks performed.
    pub checks: u64,
    /// High-water mark of accounted bytes.
    pub peak_bytes: usize,
    /// Spills forced by memory-budget pressure.
    pub spill_count: u64,
    /// Bytes spilled under that pressure.
    pub spill_bytes: u64,
    /// True if the cancellation token fired (including via deadline).
    pub cancelled: bool,
}

impl GovernorSnapshot {
    /// One-line rendering for EXPLAIN ANALYZE (after the "governor: "
    /// prefix).
    pub fn render(&self) -> String {
        if !self.active {
            return "off".to_string();
        }
        let mut out = format!(
            "{} checks, peak {} bytes accounted, {} spills ({} bytes)",
            self.checks, self.peak_bytes, self.spill_count, self.spill_bytes
        );
        if self.cancelled {
            out.push_str(", CANCELLED");
        }
        out
    }
}

thread_local! {
    /// Stack of installed governors (innermost last). A stack — not a
    /// slot — so nested evaluations (the testbed diffing an engine against
    /// the reference inside one thread) restore correctly.
    static CURRENT: RefCell<Vec<Governor>> = const { RefCell::new(Vec::new()) };
}

impl Governor {
    /// The inert governor: never cancels, never limits, accounts nothing.
    pub fn none() -> Governor {
        Governor { inner: None }
    }

    /// An active governor with an optional wall-clock timeout (deadline =
    /// now + `timeout`) and an optional memory budget in bytes. Both
    /// `None` still yields an *active* governor — a pure cancellation
    /// token with accounting.
    pub fn with_limits(timeout: Option<Duration>, mem_budget: Option<usize>) -> Governor {
        Governor {
            inner: Some(Arc::new(GovInner {
                cancel: AtomicBool::new(false),
                deadline_hit: AtomicBool::new(false),
                deadline: timeout.map(|t| Instant::now() + t),
                mem_budget,
                mem_used: AtomicUsize::new(0),
                mem_peak: AtomicUsize::new(0),
                checks: AtomicU64::new(0),
                spill_count: AtomicU64::new(0),
                spill_bytes: AtomicU64::new(0),
                trip_cancel_after: AtomicU64::new(0),
                trip_panic_after: AtomicU64::new(0),
            })),
        }
    }

    /// An active governor with no limits: a cancellation token plus
    /// accounting.
    pub fn unlimited() -> Governor {
        Governor::with_limits(None, None)
    }

    /// True unless this is the inert [`Governor::none`] handle.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Fires the cancellation token: the executing thread fails its next
    /// [`Governor::check`] with [`StorageError::Cancelled`].
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancel.store(true, Ordering::Relaxed);
        }
    }

    /// True once the token has fired (by [`Governor::cancel`], a tripped
    /// fault, or a deadline).
    pub fn is_cancelled(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.cancel.load(Ordering::Relaxed))
    }

    /// The cooperative check: counts, runs armed fault injections, then
    /// fails with [`StorageError::DeadlineExceeded`] past the deadline or
    /// [`StorageError::Cancelled`] once the token has fired.
    pub fn check(&self) -> Result<()> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        let n = inner.checks.fetch_add(1, Ordering::Relaxed) + 1;
        let trip = inner.trip_cancel_after.load(Ordering::Relaxed);
        if trip != 0 && n >= trip {
            inner.cancel.store(true, Ordering::Relaxed);
        }
        let trip = inner.trip_panic_after.load(Ordering::Relaxed);
        if trip != 0 && n >= trip {
            panic!("governor fault injection: scripted panic at check {n}");
        }
        if inner.deadline_hit.load(Ordering::Relaxed) {
            return Err(StorageError::DeadlineExceeded);
        }
        if inner.cancel.load(Ordering::Relaxed) {
            return Err(StorageError::Cancelled);
        }
        if let Some(deadline) = inner.deadline {
            if (n == 1 || n % DEADLINE_STRIDE == 0) && Instant::now() >= deadline {
                // Latch both flags: later checks (and other clones) fail
                // fast without consulting the clock again.
                inner.deadline_hit.store(true, Ordering::Relaxed);
                inner.cancel.store(true, Ordering::Relaxed);
                return Err(StorageError::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Tries to account `bytes` against the budget. Returns false (with
    /// nothing reserved) if it would exceed the budget.
    pub fn try_reserve(&self, bytes: usize) -> bool {
        let Some(inner) = &self.inner else {
            return true;
        };
        let new = inner.mem_used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if let Some(budget) = inner.mem_budget {
            if new > budget {
                inner.mem_used.fetch_sub(bytes, Ordering::Relaxed);
                return false;
            }
        }
        inner.mem_peak.fetch_max(new, Ordering::Relaxed);
        true
    }

    /// [`Governor::try_reserve`], failing with
    /// [`StorageError::MemoryExceeded`].
    pub fn reserve(&self, bytes: usize) -> Result<()> {
        if self.try_reserve(bytes) {
            Ok(())
        } else {
            Err(StorageError::MemoryExceeded {
                used: self.mem_used() + bytes,
                budget: self.mem_budget().unwrap_or(0),
            })
        }
    }

    /// Returns previously reserved bytes to the budget.
    pub fn release(&self, bytes: usize) {
        if let Some(inner) = &self.inner {
            inner.mem_used.fetch_sub(bytes, Ordering::Relaxed);
        }
    }

    /// Currently accounted bytes.
    pub fn mem_used(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |i| i.mem_used.load(Ordering::Relaxed))
    }

    /// The configured memory budget, if any.
    pub fn mem_budget(&self) -> Option<usize> {
        self.inner.as_ref().and_then(|i| i.mem_budget)
    }

    /// Records a budget-pressure spill of `bytes` (external-sort runs).
    pub fn note_spill(&self, bytes: u64) {
        if let Some(inner) = &self.inner {
            inner.spill_count.fetch_add(1, Ordering::Relaxed);
            inner.spill_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Fault injection: fire the cancellation token at the `n`-th check
    /// (1-based; 0 disables). Deterministic mid-query cancellation for the
    /// torture sweep and property tests.
    pub fn trip_cancel_after_checks(&self, n: u64) {
        if let Some(inner) = &self.inner {
            inner.trip_cancel_after.store(n, Ordering::Relaxed);
        }
    }

    /// Fault injection: panic at the `n`-th check (1-based; 0 disables) —
    /// simulates a crashing engine for panic-isolation tests.
    pub fn trip_panic_after_checks(&self, n: u64) {
        if let Some(inner) = &self.inner {
            inner.trip_panic_after.store(n, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> GovernorSnapshot {
        match &self.inner {
            None => GovernorSnapshot::default(),
            Some(inner) => GovernorSnapshot {
                active: true,
                checks: inner.checks.load(Ordering::Relaxed),
                peak_bytes: inner.mem_peak.load(Ordering::Relaxed),
                spill_count: inner.spill_count.load(Ordering::Relaxed),
                spill_bytes: inner.spill_bytes.load(Ordering::Relaxed),
                cancelled: inner.cancel.load(Ordering::Relaxed),
            },
        }
    }

    /// Installs this governor as the thread's current one for the lifetime
    /// of the returned scope (RAII; nesting restores the previous one).
    pub fn install(&self) -> GovernorScope {
        CURRENT.with(|c| c.borrow_mut().push(self.clone()));
        GovernorScope { _priv: () }
    }

    /// The innermost governor installed on this thread ([`Governor::none`]
    /// when nothing is installed).
    pub fn current() -> Governor {
        CURRENT.with(|c| c.borrow().last().cloned().unwrap_or_default())
    }

    /// [`Governor::check`] on the thread's current governor — the buffer
    /// pool's page-acquire hook.
    pub fn check_current() -> Result<()> {
        CURRENT.with(|c| match c.borrow().last() {
            Some(gov) => gov.check(),
            None => Ok(()),
        })
    }
}

impl std::fmt::Debug for Governor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Governor(none)"),
            Some(_) => f
                .debug_struct("Governor")
                .field("cancelled", &self.is_cancelled())
                .field("mem_used", &self.mem_used())
                .field("mem_budget", &self.mem_budget())
                .finish(),
        }
    }
}

/// RAII guard returned by [`Governor::install`]; pops the governor off the
/// thread's stack on drop (including during unwinding).
pub struct GovernorScope {
    _priv: (),
}

impl Drop for GovernorScope {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// A byte reservation against a governor's budget that releases itself on
/// drop — including when an operator is torn down mid-query by an error or
/// a cancellation. Buffering operators (external sort, block joins, the M1
/// DOM materialization) hold one of these for their accounted memory.
#[derive(Debug, Default)]
pub struct MemReservation {
    gov: Governor,
    bytes: usize,
}

impl MemReservation {
    /// An empty reservation against `gov`.
    pub fn empty(gov: &Governor) -> MemReservation {
        MemReservation {
            gov: gov.clone(),
            bytes: 0,
        }
    }

    /// Reserves `bytes` up front, failing with
    /// [`StorageError::MemoryExceeded`] if the budget cannot cover them.
    pub fn new(gov: &Governor, bytes: usize) -> Result<MemReservation> {
        gov.reserve(bytes)?;
        Ok(MemReservation {
            gov: gov.clone(),
            bytes,
        })
    }

    /// Tries to grow the reservation by `bytes`; false if over budget
    /// (the reservation is unchanged).
    pub fn grow(&mut self, bytes: usize) -> bool {
        if self.gov.try_reserve(bytes) {
            self.bytes += bytes;
            true
        } else {
            false
        }
    }

    /// Returns every reserved byte to the budget (a spill emptied the
    /// buffer this reservation covers).
    pub fn release_all(&mut self) {
        self.gov.release(self.bytes);
        self.bytes = 0;
    }

    /// Currently reserved bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl Drop for MemReservation {
    fn drop(&mut self) {
        self.gov.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_governor_is_free() {
        let gov = Governor::none();
        assert!(!gov.is_active());
        assert!(gov.check().is_ok());
        assert!(gov.try_reserve(usize::MAX / 2));
        gov.release(usize::MAX / 2);
        gov.cancel();
        assert!(!gov.is_cancelled());
        assert_eq!(gov.snapshot(), GovernorSnapshot::default());
    }

    #[test]
    fn cancellation_token_fires_across_clones() {
        let gov = Governor::unlimited();
        let clone = gov.clone();
        assert!(clone.check().is_ok());
        gov.cancel();
        assert!(matches!(clone.check(), Err(StorageError::Cancelled)));
        assert!(clone.is_cancelled());
        assert!(clone.snapshot().cancelled);
    }

    #[test]
    fn deadline_fires_on_first_check() {
        let gov = Governor::with_limits(Some(Duration::ZERO), None);
        assert!(matches!(gov.check(), Err(StorageError::DeadlineExceeded)));
        // Latched: later checks keep reporting the deadline, not the
        // generic cancellation.
        assert!(matches!(gov.check(), Err(StorageError::DeadlineExceeded)));
        assert!(gov.is_cancelled());
    }

    #[test]
    fn deadline_detected_within_stride() {
        let gov = Governor::with_limits(Some(Duration::from_millis(1)), None);
        assert!(gov.check().is_ok());
        std::thread::sleep(Duration::from_millis(5));
        let mut failed = false;
        for _ in 0..DEADLINE_STRIDE + 1 {
            if gov.check().is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "deadline not detected within one stride");
    }

    #[test]
    fn memory_budget_accounts_and_rejects() {
        let gov = Governor::with_limits(None, Some(1000));
        assert!(gov.try_reserve(600));
        assert!(!gov.try_reserve(600), "would exceed the budget");
        assert_eq!(gov.mem_used(), 600);
        let err = gov.reserve(600).unwrap_err();
        assert!(
            matches!(
                err,
                StorageError::MemoryExceeded {
                    used: 1200,
                    budget: 1000
                }
            ),
            "{err}"
        );
        gov.release(600);
        assert!(gov.try_reserve(1000));
        let snap = gov.snapshot();
        assert_eq!(snap.peak_bytes, 1000);
        gov.release(1000);
        assert_eq!(gov.mem_used(), 0);
    }

    #[test]
    fn reservation_guard_releases_on_drop_and_unwind() {
        let gov = Governor::with_limits(None, Some(100));
        {
            let mut r = MemReservation::empty(&gov);
            assert!(r.grow(70));
            assert!(!r.grow(70));
            assert_eq!(gov.mem_used(), 70);
        }
        assert_eq!(gov.mem_used(), 0, "drop released the reservation");
        let gov2 = gov.clone();
        let panicked = std::panic::catch_unwind(move || {
            let _r = MemReservation::new(&gov2, 90).unwrap();
            panic!("boom");
        });
        assert!(panicked.is_err());
        assert_eq!(gov.mem_used(), 0, "unwind released the reservation");
    }

    #[test]
    fn install_scope_nests_and_restores() {
        assert!(!Governor::current().is_active());
        let outer = Governor::unlimited();
        {
            let _a = outer.install();
            assert!(Governor::current().is_active());
            let inner = Governor::unlimited();
            {
                let _b = inner.install();
                inner.cancel();
                assert!(Governor::check_current().is_err());
            }
            // Back to the outer (uncancelled) governor.
            assert!(Governor::check_current().is_ok());
        }
        assert!(!Governor::current().is_active());
        assert!(Governor::check_current().is_ok());
    }

    #[test]
    fn trip_cancel_fires_at_scripted_check() {
        let gov = Governor::unlimited();
        gov.trip_cancel_after_checks(3);
        assert!(gov.check().is_ok());
        assert!(gov.check().is_ok());
        assert!(matches!(gov.check(), Err(StorageError::Cancelled)));
    }

    #[test]
    fn trip_panic_fires_at_scripted_check() {
        let gov = Governor::unlimited();
        gov.trip_panic_after_checks(2);
        assert!(gov.check().is_ok());
        let gov2 = gov.clone();
        let result = std::panic::catch_unwind(move || {
            let _ = gov2.check();
        });
        assert!(result.is_err(), "scripted panic did not fire");
    }

    #[test]
    fn spill_counters_accumulate() {
        let gov = Governor::unlimited();
        gov.note_spill(100);
        gov.note_spill(250);
        let snap = gov.snapshot();
        assert_eq!(snap.spill_count, 2);
        assert_eq!(snap.spill_bytes, 350);
    }

    #[test]
    fn snapshot_render_formats() {
        assert_eq!(GovernorSnapshot::default().render(), "off");
        let gov = Governor::unlimited();
        let _ = gov.check();
        gov.cancel();
        let text = gov.snapshot().render();
        assert!(text.contains("1 checks"), "{text}");
        assert!(text.contains("CANCELLED"), "{text}");
    }
}
