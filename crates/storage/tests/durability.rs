//! Durability tests: WAL recovery under injected faults.
//!
//! Regression coverage for the storage write path's durability bugs (each
//! `reopen_after_*` test is one bug), plus a property test interleaving
//! inserts, deletes and flushes with injected I/O errors: every operation
//! either reports the error or leaves the tree readable, and reopening
//! the environment always recovers exactly the last committed state.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xmldb_storage::{BTree, Env, EnvConfig, FaultBackend, FaultState, KillMode, StorageError};

/// Unique scratch directory per test invocation.
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "saardb-durability-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Tiny pages and a tiny pool: splits and eviction steals from the start.
fn config() -> EnvConfig {
    EnvConfig {
        page_size: 256,
        pool_bytes: 8 * 256,
    }
}

fn faulted_env(dir: &PathBuf, faults: &Arc<FaultState>) -> Env {
    let faults = Arc::clone(faults);
    Env::open_dir_with_decorator(
        dir,
        config(),
        Arc::new(move |_name, inner| Arc::new(FaultBackend::new(inner, Arc::clone(&faults))) as _),
    )
    .unwrap()
}

/// Reads the whole tree into a map (readability probe + content check).
fn tree_contents(tree: &BTree) -> xmldb_storage::Result<BTreeMap<Vec<u8>, Vec<u8>>> {
    let mut out = BTreeMap::new();
    tree.scan(|k, v| {
        out.insert(k.to_vec(), v.to_vec());
        true
    })?;
    Ok(out)
}

fn key(i: u64) -> Vec<u8> {
    format!("key{:06}", (i * 7919) % 1_000_000).into_bytes()
}

fn value(i: u64) -> Vec<u8> {
    format!("value-{i}-{}", "x".repeat((i % 23) as usize)).into_bytes()
}

/// Kill mid-workload, reopen, and the tree must equal the last committed
/// (flushed) state — the end-to-end WAL guarantee at the storage level.
#[test]
fn reopen_after_kill_recovers_committed_prefix() {
    let dir = scratch("kill");
    for kill_at in [3u64, 9, 17, 40] {
        let _ = std::fs::remove_dir_all(&dir);
        let faults = FaultState::new();
        let mut committed = BTreeMap::new();
        {
            let env = faulted_env(&dir, &faults);
            let mut tree = BTree::create(&env, "t").unwrap();
            let mut model = BTreeMap::new();
            faults.arm_kill(kill_at, KillMode::BeforeWrite);
            for i in 0..400u64 {
                if tree.insert(&key(i), &value(i)).is_err() {
                    break;
                }
                model.insert(key(i), value(i));
                if (i + 1) % 25 == 0 {
                    if env.flush().is_err() {
                        break;
                    }
                    committed = model.clone();
                }
            }
            assert!(faults.is_killed(), "kill-point {kill_at} never fired");
        }
        let env = Env::open_dir(&dir, config()).unwrap();
        if committed.is_empty() {
            // Nothing was ever committed; the tree may not even open.
            continue;
        }
        let tree = BTree::open(&env, "t").unwrap();
        assert_eq!(
            tree_contents(&tree).unwrap(),
            committed,
            "kill-point {kill_at}: recovered tree diverges from committed state"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Torn page write at the kill-point: recovery must still restore the
/// committed images (the torn page is rolled back from its before-image).
#[test]
fn reopen_after_torn_write_recovers() {
    let dir = scratch("torn");
    let faults = FaultState::new();
    let committed;
    {
        let env = faulted_env(&dir, &faults);
        let mut tree = BTree::create(&env, "t").unwrap();
        let mut model = BTreeMap::new();
        for i in 0..60u64 {
            tree.insert(&key(i), &value(i)).unwrap();
            model.insert(key(i), value(i));
        }
        env.flush().unwrap();
        committed = model.clone();
        faults.arm_kill(2, KillMode::TornWrite);
        for i in 60..400u64 {
            if tree.insert(&key(i), &value(i)).is_err() || env.flush().is_err() {
                break;
            }
        }
        assert!(faults.is_killed());
    }
    let env = Env::open_dir(&dir, config()).unwrap();
    let report = env.recovery_report().unwrap().clone();
    let tree = BTree::open(&env, "t").unwrap();
    let contents = tree_contents(&tree).unwrap();
    // The committed prefix survives; a flush attempted after the kill may
    // have committed more, but never less.
    for (k, v) in &committed {
        assert_eq!(contents.get(k), Some(v), "committed key lost ({report:?})");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Bug regression: a failed `Backend::sync` must leave the dirty bits set
/// so a retried flush rewrites (and re-syncs) the page instead of silently
/// losing the write.
#[test]
fn failed_sync_does_not_lose_writes() {
    let dir = scratch("sync");
    let faults = FaultState::new();
    {
        let env = faulted_env(&dir, &faults);
        let mut tree = BTree::create(&env, "t").unwrap();
        tree.insert(b"k", b"v").unwrap();
        faults.fail_next_sync();
        let err = env.flush().unwrap_err();
        assert!(matches!(err, StorageError::FaultInjected(_)), "{err}");
        // Retry: the page is still dirty, so it is written and synced now.
        env.flush().unwrap();
    }
    let env = Env::open_dir(&dir, config()).unwrap();
    let tree = BTree::open(&env, "t").unwrap();
    assert_eq!(tree.get(b"k").unwrap().as_deref(), Some(&b"v"[..]));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Bug regression: a crash mid-extension leaves a torn tail; the file must
/// reopen (rounded down to whole pages) instead of failing `Corrupt`.
#[test]
fn reopen_after_torn_extension_recovers() {
    let dir = scratch("extend");
    {
        let env = Env::open_dir(&dir, config()).unwrap();
        let mut tree = BTree::create(&env, "t").unwrap();
        for i in 0..40u64 {
            tree.insert(&key(i), &value(i)).unwrap();
        }
        env.flush().unwrap();
    }
    // Simulate the torn extension directly: append a partial page.
    let path = dir.join("t.sdb");
    let len = std::fs::metadata(&path).unwrap().len();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.extend_from_slice(&[0xEE; 100]);
    std::fs::write(&path, &bytes).unwrap();
    let env = Env::open_dir(&dir, config()).unwrap();
    let tree = BTree::open(&env, "t").unwrap();
    for i in 0..40u64 {
        assert_eq!(tree.get(&key(i)).unwrap(), Some(value(i)));
    }
    assert_eq!(
        std::fs::metadata(&path).unwrap().len(),
        len,
        "torn tail trimmed back to whole pages"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The environment reports what recovery did.
#[test]
fn recovery_report_surfaces_through_env() {
    let dir = scratch("report");
    let faults = FaultState::new();
    {
        let env = faulted_env(&dir, &faults);
        let mut tree = BTree::create(&env, "t").unwrap();
        for i in 0..50u64 {
            tree.insert(&key(i), &value(i)).unwrap();
        }
        env.flush().unwrap();
        faults.arm_kill(4, KillMode::BeforeWrite);
        for i in 50..400u64 {
            if tree.insert(&key(i), &value(i)).is_err() {
                break;
            }
            let _ = env.flush();
            if faults.is_killed() {
                break;
            }
        }
    }
    let env = Env::open_dir(&dir, config()).unwrap();
    let report = env.recovery_report().unwrap();
    assert!(report.committed, "a commit marker was on disk");
    assert!(
        report.pages_redone > 0 || report.pages_undone > 0,
        "recovery had work to do: {report:?}"
    );
    // A clean reopen after the recovery is itself clean.
    drop(env);
    let env = Env::open_dir(&dir, config()).unwrap();
    assert!(env.recovery_report().unwrap().is_clean());
    let _ = std::fs::remove_dir_all(&dir);
}

#[derive(Debug, Clone)]
enum FaultOp {
    Insert(u64),
    Delete(u64),
    Get(u64),
    Flush,
    FailNextWrite,
    FailNextSync,
}

fn op_strategy() -> impl Strategy<Value = FaultOp> {
    prop_oneof![
        5 => (0u64..120).prop_map(FaultOp::Insert),
        1 => (0u64..120).prop_map(FaultOp::Delete),
        2 => (0u64..120).prop_map(FaultOp::Get),
        1 => Just(FaultOp::Flush),
        1 => Just(FaultOp::FailNextWrite),
        1 => Just(FaultOp::FailNextSync),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Interleaves tree operations with injected I/O errors. Every
    /// operation either returns an error or behaves per the model; after
    /// any error the environment is "crashed" (dropped) and reopened, and
    /// the recovered tree must equal the last committed state exactly.
    #[test]
    fn faults_never_corrupt_committed_state(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let dir = scratch("prop");
        let faults = FaultState::new();
        let mut env = faulted_env(&dir, &faults);
        let mut tree = Some(BTree::create(&env, "t").unwrap());
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut committed: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut crashed = false;

        for op in &ops {
            if crashed {
                // Reopen: recovery must restore exactly the committed state.
                faults.disarm();
                drop(tree.take());
                env = faulted_env(&dir, &faults);
                if committed.is_empty() {
                    match BTree::open(&env, "t") {
                        Ok(t) => {
                            prop_assert_eq!(tree_contents(&t).unwrap(), committed.clone());
                            tree = Some(t);
                        }
                        Err(_) => {
                            // Never committed: recreate from scratch.
                            if let Ok(id) = env.open_file("t") {
                                let _ = env.remove_file(id);
                            }
                            tree = Some(BTree::create(&env, "t").unwrap());
                        }
                    }
                } else {
                    let t = BTree::open(&env, "t").unwrap();
                    prop_assert_eq!(tree_contents(&t).unwrap(), committed.clone());
                    tree = Some(t);
                }
                model = committed.clone();
                crashed = false;
            }
            let t = tree.as_mut().unwrap();
            match op {
                FaultOp::Insert(i) => match t.insert(&key(*i), &value(*i)) {
                    Ok(_) => { model.insert(key(*i), value(*i)); }
                    Err(_) => crashed = true,
                },
                FaultOp::Delete(i) => match t.delete(&key(*i)) {
                    Ok(_) => { model.remove(&key(*i)); }
                    Err(_) => crashed = true,
                },
                FaultOp::Get(i) => match t.get(&key(*i)) {
                    Ok(v) => prop_assert_eq!(v, model.get(&key(*i)).cloned()),
                    Err(_) => crashed = true,
                },
                FaultOp::Flush => match env.flush() {
                    Ok(()) => committed = model.clone(),
                    Err(_) => crashed = true,
                },
                FaultOp::FailNextWrite => faults.fail_next_write(),
                FaultOp::FailNextSync => faults.fail_next_sync(),
            }
        }

        // Final verdict: drop everything, recover, compare to committed.
        drop(tree.take());
        drop(env);
        let env = Env::open_dir(&dir, config()).unwrap();
        match BTree::open(&env, "t") {
            Ok(t) => prop_assert_eq!(tree_contents(&t).unwrap(), committed),
            Err(_) => prop_assert!(committed.is_empty(), "committed data must reopen"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
