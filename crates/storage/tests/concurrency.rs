//! Concurrency sanity: the buffer pool, environment and B+-trees are
//! shared-state-safe under concurrent readers (the engine is
//! single-writer, but the testbed runs queries on worker threads against
//! clones of the same environment).

use std::sync::Arc;
use std::thread;
use xmldb_storage::{BTree, Env, EnvConfig};

#[test]
fn concurrent_readers_on_shared_tree() {
    let env = Env::memory_with(EnvConfig {
        page_size: 1024,
        pool_bytes: 16 * 1024,
    });
    let mut tree = BTree::create(&env, "shared").unwrap();
    let n = 2_000u64;
    tree.bulk_load((0..n).map(|i| (i.to_be_bytes().to_vec(), format!("v{i}").into_bytes())))
        .unwrap();
    let tree = Arc::new(tree);

    let mut handles = Vec::new();
    for t in 0..4 {
        let tree = Arc::clone(&tree);
        handles.push(thread::spawn(move || {
            // Point lookups with a per-thread stride, plus full scans; the
            // tiny pool forces constant eviction contention.
            for i in (t..n).step_by(7) {
                let got = tree.get(&i.to_be_bytes()).unwrap();
                assert_eq!(got, Some(format!("v{i}").into_bytes()));
            }
            let count = tree.iter().count();
            assert_eq!(count, n as usize);
        }));
    }
    for h in handles {
        h.join().expect("reader thread panicked");
    }
}

#[test]
fn concurrent_page_traffic_across_files() {
    let env = Env::memory_with(EnvConfig {
        page_size: 512,
        pool_bytes: 8 * 512,
    });
    // Each thread owns its own file; the pool is shared and smaller than
    // the combined working set.
    let files: Vec<_> = (0..4)
        .map(|i| env.create_file(&format!("f{i}")).unwrap())
        .collect();
    let pages_per_file = 16u64;
    for &f in &files {
        for _ in 0..pages_per_file {
            env.allocate_page(f).unwrap();
        }
    }
    let env = Arc::new(env);
    let mut handles = Vec::new();
    for (t, &file) in files.iter().enumerate() {
        let env = Arc::clone(&env);
        handles.push(thread::spawn(move || {
            for round in 0..50u64 {
                for p in 0..pages_per_file {
                    let page = xmldb_storage::PageId(p);
                    env.with_page_mut(file, page, |data| {
                        data[0] = t as u8;
                        data[1] = round as u8;
                        data[2] = p as u8;
                    })
                    .unwrap();
                }
                for p in 0..pages_per_file {
                    let page = xmldb_storage::PageId(p);
                    let (owner, pp) = env
                        .with_page(file, page, |data| (data[0], data[2]))
                        .unwrap();
                    assert_eq!(owner, t as u8, "page leaked between files");
                    assert_eq!(pp, p as u8);
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("worker panicked");
    }
}

#[test]
fn concurrent_queries_through_cloned_envs() {
    // Mirrors the testbed: one env, many reader threads running full scans
    // through btrees while another thread creates and deletes temp files.
    let env = Env::memory_with(EnvConfig {
        page_size: 1024,
        pool_bytes: 32 * 1024,
    });
    let mut tree = BTree::create(&env, "data").unwrap();
    tree.bulk_load((0..500u64).map(|i| (i.to_be_bytes().to_vec(), vec![1u8; 16])))
        .unwrap();
    let tree = Arc::new(tree);
    let env2 = env.clone();

    let churn = thread::spawn(move || {
        for _ in 0..50 {
            let tmp = xmldb_storage::TempFile::new(&env2).unwrap();
            env2.allocate_page(tmp.id()).unwrap();
            env2.with_page_mut(tmp.id(), xmldb_storage::PageId(0), |d| d[0] = 1)
                .unwrap();
        }
    });
    let mut readers = Vec::new();
    for _ in 0..3 {
        let tree = Arc::clone(&tree);
        readers.push(thread::spawn(move || {
            for _ in 0..20 {
                assert_eq!(tree.iter().count(), 500);
            }
        }));
    }
    churn.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
}
