//! Model-based property tests: the B+-tree must behave exactly like
//! `BTreeMap<Vec<u8>, Vec<u8>>` under arbitrary operation sequences, and the
//! external sorter like `sort()`.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::ops::Bound;
use xmldb_storage::{BTree, Env, EnvConfig, ExternalSorter};

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
    Get(Vec<u8>),
    Contains(Vec<u8>),
    Range(Vec<u8>, Vec<u8>),
    /// Excluded lower / Included upper — exercises the cursor's
    /// step-past-the-key seek against the slotted leaves.
    RangeExcl(Vec<u8>, Vec<u8>),
    Prefix(Vec<u8>),
    FullScan,
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Short keys from a narrow alphabet maximize collisions (replacements,
    // deletes of present keys).
    prop::collection::vec(0u8..4, 1..6)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (key_strategy(), prop::collection::vec(any::<u8>(), 0..40))
            .prop_map(|(k, v)| Op::Insert(k, v)),
        key_strategy().prop_map(Op::Delete),
        key_strategy().prop_map(Op::Get),
        key_strategy().prop_map(Op::Contains),
        (key_strategy(), key_strategy()).prop_map(|(a, b)| Op::Range(a, b)),
        (key_strategy(), key_strategy()).prop_map(|(a, b)| Op::RangeExcl(a, b)),
        prop::collection::vec(0u8..4, 0..4).prop_map(Op::Prefix),
        Just(Op::FullScan),
    ]
}

fn tiny_env() -> Env {
    // Small pages force splits early; a small pool forces eviction.
    Env::memory_with(EnvConfig {
        page_size: 256,
        pool_bytes: 8 * 256,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn btree_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let env = tiny_env();
        let mut tree = BTree::create(&env, "t").unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let fresh = tree.insert(&k, &v).unwrap();
                    let was_new = model.insert(k, v).is_none();
                    prop_assert_eq!(fresh, was_new);
                }
                Op::Delete(k) => {
                    let removed = tree.delete(&k).unwrap();
                    prop_assert_eq!(removed, model.remove(&k).is_some());
                }
                Op::Get(k) => {
                    prop_assert_eq!(tree.get(&k).unwrap(), model.get(&k).cloned());
                }
                Op::Contains(k) => {
                    prop_assert_eq!(tree.contains(&k).unwrap(), model.contains_key(&k));
                }
                Op::Range(a, b) => {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    let got: Vec<(Vec<u8>, Vec<u8>)> = tree
                        .range(Bound::Included(&lo), Bound::Excluded(&hi))
                        .map(|r| r.unwrap())
                        .collect();
                    let want: Vec<(Vec<u8>, Vec<u8>)> = model
                        .range::<Vec<u8>, _>((Bound::Included(&lo), Bound::Excluded(&hi)))
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    prop_assert_eq!(got, want);
                }
                Op::RangeExcl(a, b) => {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    let got: Vec<(Vec<u8>, Vec<u8>)> = tree
                        .range(Bound::Excluded(&lo), Bound::Included(&hi))
                        .map(|r| r.unwrap())
                        .collect();
                    let want: Vec<(Vec<u8>, Vec<u8>)> = if lo == hi {
                        Vec::new()
                    } else {
                        model
                            .range::<Vec<u8>, _>((Bound::Excluded(&lo), Bound::Included(&hi)))
                            .map(|(k, v)| (k.clone(), v.clone()))
                            .collect()
                    };
                    prop_assert_eq!(got, want);
                }
                Op::Prefix(p) => {
                    let got: Vec<(Vec<u8>, Vec<u8>)> =
                        tree.prefix(&p).map(|r| r.unwrap()).collect();
                    let want: Vec<(Vec<u8>, Vec<u8>)> = model
                        .range::<Vec<u8>, _>((Bound::Included(&p), Bound::Unbounded))
                        .take_while(|(k, _)| k.starts_with(&p))
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    prop_assert_eq!(got, want);
                }
                Op::FullScan => {
                    let got: Vec<(Vec<u8>, Vec<u8>)> =
                        tree.iter().map(|r| r.unwrap()).collect();
                    let want: Vec<(Vec<u8>, Vec<u8>)> =
                        model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(tree.len(), model.len() as u64);
        }
    }

    #[test]
    fn bulk_load_equals_trickle_inserts(
        entries in prop::collection::btree_map(
            prop::collection::vec(any::<u8>(), 1..10),
            prop::collection::vec(any::<u8>(), 0..60),
            0..200,
        )
    ) {
        let env = tiny_env();
        let mut bulk = BTree::create(&env, "bulk").unwrap();
        bulk.bulk_load(entries.iter().map(|(k, v)| (k.clone(), v.clone()))).unwrap();
        let scanned: Vec<(Vec<u8>, Vec<u8>)> = bulk.iter().map(|r| r.unwrap()).collect();
        let want: Vec<(Vec<u8>, Vec<u8>)> =
            entries.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(scanned, want);
        for (k, v) in &entries {
            prop_assert_eq!(bulk.get(k).unwrap(), Some(v.clone()));
        }
    }

    #[test]
    fn external_sort_matches_std_sort(
        records in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..30), 0..300),
        budget in 16usize..2048,
    ) {
        let env = tiny_env();
        let mut sorter = ExternalSorter::lexicographic(&env, budget);
        for r in &records {
            sorter.push(r.clone()).unwrap();
        }
        let got: Vec<Vec<u8>> = sorter.finish().unwrap().map(|r| r.unwrap()).collect();
        let mut want = records;
        want.sort();
        prop_assert_eq!(got, want);
    }
}
