//! The strongest property in the repository: for *arbitrary* generated
//! documents and well-scoped XQ queries, all five engines produce identical
//! results (or the same class of runtime error). This is the course's
//! correctness-diffing discipline, generalized from 16 public queries to a
//! random family.

use proptest::prelude::*;
use xmldb_core::{Database, EngineKind};

// --- document generator -------------------------------------------------------

#[derive(Debug, Clone)]
enum Tree {
    Element(String, Vec<Tree>),
    Text(String),
}

/// Small label alphabet so generated queries actually hit something.
fn label() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        Just("d".to_string())
    ]
}

fn text() -> impl Strategy<Value = String> {
    prop_oneof![Just("x".to_string()), Just("y".to_string()), "[a-z]{1,4}"]
}

fn tree() -> impl Strategy<Value = Tree> {
    let leaf = prop_oneof![
        text().prop_map(Tree::Text),
        label().prop_map(|l| Tree::Element(l, vec![])),
    ];
    leaf.prop_recursive(4, 40, 4, |inner| {
        (label(), prop::collection::vec(inner, 0..4)).prop_map(|(l, kids)| Tree::Element(l, kids))
    })
}

fn document() -> impl Strategy<Value = String> {
    (label(), prop::collection::vec(tree(), 0..5)).prop_map(|(l, kids)| {
        let mut out = String::new();
        fn render(t: &Tree, out: &mut String) {
            match t {
                Tree::Text(s) => out.push_str(s),
                Tree::Element(l, kids) => {
                    out.push('<');
                    out.push_str(l);
                    out.push('>');
                    for k in kids {
                        render(k, out);
                    }
                    out.push_str("</");
                    out.push_str(l);
                    out.push('>');
                }
            }
        }
        render(&Tree::Element(l, kids), &mut out);
        out
    })
}

// --- query generator ------------------------------------------------------------

/// Generates well-scoped query *strings* (the parser re-validates them).
/// `vars` is the set of variables in scope.
fn query(depth: u32, vars: Vec<String>) -> BoxedStrategy<String> {
    let step_test = prop_oneof![
        label(),
        Just("*".to_string()),
        Just("text()".to_string()),
        Just("ghost".to_string()), // a label that never exists
    ];
    let base = {
        let vars = vars.clone();
        prop_oneof![
            Just("()".to_string()),
            Just("<out/>".to_string()),
            step_test.clone().prop_map(|t| format!("//{t}")),
            step_test.clone().prop_map(|t| format!("/{t}")),
            (0..vars.len().max(1), step_test.clone()).prop_map(move |(i, t)| {
                match vars.get(i) {
                    Some(v) => format!("{v}/{t}"),
                    None => format!("//{t}"),
                }
            }),
        ]
    };
    if depth == 0 {
        return base.boxed();
    }
    let for_q = {
        let vars = vars.clone();
        (
            0..10u32,
            step_test.clone(),
            prop_oneof![Just("/"), Just("//")],
        )
            .prop_flat_map(move |(n, t, axis)| {
                let var = format!("$v{n}");
                let source = match vars.last() {
                    Some(outer) => format!("{outer}{axis}{t}"),
                    None => format!("{axis}{t}"),
                };
                let mut inner_vars = vars.clone();
                if !inner_vars.contains(&var) {
                    inner_vars.push(var.clone());
                }
                query(depth - 1, inner_vars)
                    .prop_map(move |body| format!("for {var} in {source} return {body}"))
            })
    };
    let if_q = {
        let vars = vars.clone();
        (cond(depth - 1, vars.clone()), query(depth - 1, vars))
            .prop_map(|(c, body)| format!("if ({c}) then {body} else ()"))
    };
    let elem_q = (label(), query(depth - 1, vars.clone()))
        .prop_map(|(l, inner)| format!("<{l}>{{ {inner} }}</{l}>"));
    prop_oneof![base, for_q, if_q, elem_q].boxed()
}

fn cond(depth: u32, vars: Vec<String>) -> BoxedStrategy<String> {
    let base = {
        let vars = vars.clone();
        prop_oneof![
            Just("true()".to_string()),
            (0..vars.len().max(1), text()).prop_map(move |(i, s)| {
                match vars.get(i) {
                    Some(v) => format!("{v} = \"{s}\""),
                    None => "true()".to_string(),
                }
            }),
        ]
    };
    if depth == 0 {
        return base.boxed();
    }
    let some_c = {
        let vars = vars.clone();
        (20..30u32, prop_oneof![Just("/"), Just("//")]).prop_flat_map(move |(n, axis)| {
            let var = format!("$v{n}");
            let source = match vars.last() {
                Some(outer) => format!("{outer}{axis}text()"),
                None => format!("{axis}text()"),
            };
            let mut inner = vars.clone();
            inner.push(var.clone());
            cond(depth - 1, inner)
                .prop_map(move |c| format!("some {var} in {source} satisfies {c}"))
        })
    };
    let not_c = cond(depth - 1, vars.clone()).prop_map(|c| format!("not({c})"));
    let and_c = (cond(depth - 1, vars.clone()), cond(depth - 1, vars.clone()))
        .prop_map(|(a, b)| format!("({a}) and ({b})"));
    let or_c = (cond(depth - 1, vars.clone()), cond(depth - 1, vars))
        .prop_map(|(a, b)| format!("({a}) or ({b})"));
    prop_oneof![base, some_c, not_c, and_c, or_c].boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// All engines agree on all generated (document, query) pairs — same
    /// result or the same runtime-error class.
    #[test]
    fn engines_agree_on_random_queries(
        xml in document(),
        q in query(3, vec![]),
    ) {
        // Queries must parse (the generator is syntax-directed, but the
        // parser has the final word — e.g. it may reject odd shapes).
        let db = Database::in_memory();
        db.load_document("doc", &xml).unwrap();
        let reference = db.query("doc", &q, EngineKind::M1InMemory);
        if matches!(&reference, Err(xmldb_core::Error::Query(_))) {
            // Not a parseable query; nothing to compare.
            return Ok(());
        }
        for engine in EngineKind::ALL {
            let got = db.query("doc", &q, engine);
            match (&reference, &got) {
                (Ok(expected), Ok(actual)) => prop_assert_eq!(
                    expected.to_xml(),
                    actual.to_xml(),
                    "{} diverges on {:?} over {:?}",
                    engine, q, xml
                ),
                // The non-text comparison error is *plan-dependent* (like
                // division-by-zero in SQL): selection pushing may evaluate
                // a comparison the nested semantics would have guarded
                // away, and vice versa. An engine may therefore raise it
                // where the reference succeeds or succeed where the
                // reference raises it — any other error is a failure.
                (_, Err(e)) if e.is_non_text_comparison() => {}
                (Err(e), Ok(_)) if e.is_non_text_comparison() => {}
                (r, g) => prop_assert!(
                    false,
                    "{} outcome mismatch on {:?} over {:?}: ref ok={}, got ok={} ({:?} / {:?})",
                    engine, q, xml, r.is_ok(), g.is_ok(), r, g
                ),
            }
        }
    }
}
