//! EXPLAIN ANALYZE instrumentation tests: operator row counters, I/O
//! snapshot deltas, and the rendered trace.

use xmldb_core::engine::tpm_exec::{compile_program, execute_program_analyzed};
use xmldb_core::engine::QueryOptions;
use xmldb_core::{Database, EngineKind};
use xmldb_storage::{Env, EnvConfig};
use xmldb_xasr::shred_document;

/// A scan producing N bound nodes must report exactly N rows at the plan
/// root (and one open).
#[test]
fn scan_counts_one_row_per_node() {
    let env = Env::memory();
    let store = shred_document(&env, "d", "<a><b/><b/><b/></a>").unwrap();
    let query = xmldb_xq::parse("//b").unwrap();
    let program = compile_program(
        &store,
        &query,
        &xmldb_algebra::rewrite::RewriteOptions::extended(),
        &xmldb_optimizer::PlannerConfig::cost_based(),
        &QueryOptions::default(),
    );
    let (result, metrics) = execute_program_analyzed(&program, &store);
    assert_eq!(result.unwrap().to_xml(), "<b/><b/><b/>");
    assert_eq!(metrics.len(), 1, "one relfor, one plan");
    let root = metrics[0].get(0).expect("root operator has a metrics slot");
    assert_eq!(root.rows, 3, "plan root must emit one row per //b node");
    assert_eq!(root.opens, 1);
    // Every operator in the plan executed at least once.
    for i in 0..metrics[0].len() {
        assert!(
            metrics[0].get(i).unwrap().opens >= 1,
            "operator {i} never opened"
        );
    }
}

/// With a buffer pool smaller than the working set, a query over a cold
/// store must do physical reads — and the metrics attached to the result
/// must show them.
#[test]
fn pool_overflow_shows_physical_reads() {
    // The pool floor is 8 frames x 4 KiB = 32 KiB; ~3000 nodes of XASR
    // (clustered file + indexes) comfortably exceed it.
    let db = Database::in_memory_with(EnvConfig::with_pool_bytes(1));
    let mut xml = String::from("<a>");
    for i in 0..1500 {
        xml.push_str(&format!("<b>t{i}</b>"));
    }
    xml.push_str("</a>");
    db.load_document("big", &xml).unwrap();
    let result = db.query("big", "//b", EngineKind::M4CostBased).unwrap();
    assert_eq!(result.len(), 1500);
    let metrics = result.metrics().expect("Database::query attaches metrics");
    assert!(
        metrics.io.physical_reads > 0,
        "working set exceeds the pool budget, reads must hit storage: {:?}",
        metrics.io
    );
    assert!(metrics.io.requests() > 0);
    assert!(
        metrics.io.node_views > 0 && metrics.io.in_place_searches > 0,
        "index descents run on zero-copy views: {:?}",
        metrics.io
    );
    assert!(
        metrics.io.shard_locks > 0,
        "every page acquire crosses a shard lock: {:?}",
        metrics.io
    );
}

/// The rendered EXPLAIN ANALYZE trace carries actual counters and the
/// buffer-pool summary; the interpreter engines get the execution summary
/// only.
#[test]
fn explain_analyze_renders_counters() {
    let db = Database::in_memory();
    db.load_document("d", "<a><b/><b/></a>").unwrap();
    for engine in [
        EngineKind::M3Algebraic,
        EngineKind::M4CostBased,
        EngineKind::M4Pipelined,
    ] {
        let text = db.explain_analyze("d", "//b", engine).unwrap();
        assert!(text.contains("EXPLAIN ANALYZE"), "[{engine}] {text}");
        assert!(text.contains("actual rows=2"), "[{engine}] {text}");
        assert!(text.contains("opens=1"), "[{engine}] {text}");
        assert!(text.contains("result: 2 item(s)"), "[{engine}] {text}");
        assert!(text.contains("buffer pool:"), "[{engine}] {text}");
        assert!(text.contains("read path:"), "[{engine}] {text}");
        assert!(text.contains("node views"), "[{engine}] {text}");
        assert!(text.contains("in-place searches"), "[{engine}] {text}");
        assert!(text.contains("shard locks"), "[{engine}] {text}");
        assert!(text.contains("elapsed:"), "[{engine}] {text}");
    }
    let text = db
        .explain_analyze("d", "//b", EngineKind::M2Storage)
        .unwrap();
    assert!(text.contains("interpreter"), "{text}");
    assert!(text.contains("result: 2 item(s)"), "{text}");
    assert!(text.contains("buffer pool:"), "{text}");
    assert!(text.contains("read path:"), "{text}");
}

/// Nested relfors: the inner plan re-opens once per outer binding, and the
/// shared metric slots accumulate across re-executions.
#[test]
fn inner_plan_accumulates_across_reexecutions() {
    let env = Env::memory();
    let store = shred_document(&env, "d", "<r><j><n>A</n><n>B</n></j><j><n>C</n></j></r>").unwrap();
    // Heuristic planning without the merging rewrites keeps the inner
    // for-loop as its own relfor, re-planned per outer binding.
    let query = xmldb_xq::parse("for $j in /r/j return for $n in $j/n return $n").unwrap();
    let program = compile_program(
        &store,
        &query,
        &xmldb_algebra::rewrite::RewriteOptions::none(),
        &xmldb_optimizer::PlannerConfig::heuristic(),
        &QueryOptions::default(),
    );
    let (result, metrics) = execute_program_analyzed(&program, &store);
    assert_eq!(result.unwrap().to_xml(), "<n>A</n><n>B</n><n>C</n>");
    // Without merging, each path step keeps its own relfor: /r, then /r/j,
    // then $j/n — three separate plans.
    assert_eq!(metrics.len(), 3, "unmerged relfors have separate plans");
    let outermost = metrics[0].get(0).unwrap();
    let innermost = metrics[metrics.len() - 1].get(0).unwrap();
    assert_eq!(outermost.rows, 1, "one /r binding");
    assert_eq!(outermost.opens, 1);
    assert_eq!(
        innermost.rows, 3,
        "inner rows accumulate across both $j bindings"
    );
    assert_eq!(
        innermost.opens, 2,
        "inner plan re-opened once per $j binding"
    );
}
