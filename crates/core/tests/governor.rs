//! Resource-governor integration: scripted cancellations at random check
//! counts across every engine, deadline and memory-budget regressions,
//! and the EXPLAIN ANALYZE governor line.

use proptest::prelude::*;
use std::time::Duration;
use xmldb_core::{Database, EngineKind, Governor, QueryOptions};

/// A document big enough that every engine performs a few hundred governor
/// checks on the join query below.
fn busy_doc() -> String {
    let mut xml = String::from("<lib>");
    for i in 0..30 {
        xml.push_str(&format!("<journal><title>t{i}</title><authors>"));
        for j in 0..4 {
            xml.push_str(&format!("<name>a{:02}</name>", (i * 5 + j) % 17));
        }
        xml.push_str("</authors></journal>");
    }
    xml.push_str("</lib>");
    xml
}

const JOIN_QUERY: &str = "<pairs>{ for $a in //name/text() return \
     for $b in //name/text() return if ($a = $b) then <p/> else () }</pairs>";

fn busy_db() -> Database {
    let db = Database::in_memory();
    db.load_document("doc", &busy_doc()).unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Firing the cancellation token after a random number of cooperative
    /// checks, on a random engine, always yields either a completed result
    /// or a clean `Cancelled` error — and always leaves the database
    /// reusable with zero pinned frames and zero temp files.
    #[test]
    fn scripted_cancellation_is_clean_on_every_engine(
        trip in 1u64..400,
        engine_idx in 0usize..EngineKind::ALL.len(),
    ) {
        let db = busy_db();
        let engine = EngineKind::ALL[engine_idx];
        let gov = Governor::unlimited();
        gov.trip_cancel_after_checks(trip);
        let options = QueryOptions {
            governor: Some(gov),
            ..QueryOptions::default()
        };
        match db.query_with("doc", JOIN_QUERY, engine, &options) {
            Ok(_) => {} // finished before the trip-point
            Err(e) => prop_assert!(
                e.is_cancelled(),
                "{engine} trip@{trip}: expected Cancelled, got {e}"
            ),
        }
        prop_assert_eq!(db.env().pinned_frames(), 0, "{} trip@{}", engine, trip);
        prop_assert!(
            db.env().temp_files().is_empty(),
            "{} trip@{} left temp files", engine, trip
        );
        let again = db.query("doc", "//title", EngineKind::M2Storage);
        prop_assert!(again.is_ok(), "db unusable after {} trip@{}", engine, trip);
    }
}

#[test]
fn zero_timeout_is_deadline_exceeded_on_every_engine() {
    let db = busy_db();
    let options = QueryOptions {
        timeout: Some(Duration::ZERO),
        ..QueryOptions::default()
    };
    for engine in EngineKind::ALL {
        let err = db
            .query_with("doc", JOIN_QUERY, engine, &options)
            .unwrap_err();
        assert!(
            err.is_deadline_exceeded(),
            "{engine}: expected DeadlineExceeded, got {err}"
        );
        assert_eq!(db.env().pinned_frames(), 0, "{engine}");
    }
}

#[test]
fn tiny_memory_budget_fails_m1_with_memory_exceeded() {
    // M1 reserves its whole-DOM estimate up front; a budget far below it
    // must fail fast with MemoryExceeded, not OOM mid-reconstruction.
    let db = busy_db();
    let options = QueryOptions {
        mem_limit: Some(64),
        ..QueryOptions::default()
    };
    let err = db
        .query_with("doc", "//title", EngineKind::M1InMemory, &options)
        .unwrap_err();
    assert!(err.is_memory_exceeded(), "got {err}");
    // The budget only bounds working memory; the stored document is fine.
    assert!(db.query("doc", "//title", EngineKind::M1InMemory).is_ok());
}

#[test]
fn generous_budget_reports_accounting_in_metrics() {
    let db = busy_db();
    let options = QueryOptions {
        mem_limit: Some(64 << 20),
        ..QueryOptions::default()
    };
    let result = db
        .query_with("doc", "//title", EngineKind::M1InMemory, &options)
        .unwrap();
    let metrics = result.metrics().expect("query_with attaches metrics");
    assert!(metrics.governor.active);
    assert!(
        metrics.governor.peak_bytes > 0,
        "M1's DOM reservation must show up in the snapshot: {:?}",
        metrics.governor
    );
    assert_eq!(metrics.governor.render(), metrics.governor.render());
}

#[test]
fn explain_analyze_renders_governor_line() {
    let db = busy_db();
    let options = QueryOptions {
        timeout: Some(Duration::from_secs(30)),
        ..QueryOptions::default()
    };
    // Interpreter branch.
    let text = db
        .explain_analyze_with("doc", "//title", EngineKind::M2Storage, &options)
        .unwrap();
    assert!(text.contains("governor: "), "{text}");
    assert!(text.contains("checks"), "{text}");
    // Algebraic branch.
    let text = db
        .explain_analyze_with("doc", "//title", EngineKind::M4CostBased, &options)
        .unwrap();
    assert!(text.contains("governor: "), "{text}");
    assert!(text.contains("checks"), "{text}");
    // Without limits there is no governor — the line is omitted entirely
    // (not rendered as "governor: off" or zeros).
    let text = db
        .explain_analyze("doc", "//title", EngineKind::M2Storage)
        .unwrap();
    assert!(!text.contains("governor:"), "{text}");
    let text = db
        .explain_analyze("doc", "//title", EngineKind::M4CostBased)
        .unwrap();
    assert!(!text.contains("governor:"), "{text}");
    // Likewise the WAL line: this database is in-memory, no WAL exists.
    assert!(!text.contains("wal:"), "{text}");
}

#[test]
fn cancelled_prepared_query_can_rerun() {
    let db = busy_db();
    let gov = Governor::unlimited();
    let options = QueryOptions {
        governor: Some(gov.clone()),
        ..QueryOptions::default()
    };
    let prepared = db
        .prepare_with("doc", JOIN_QUERY, EngineKind::M4CostBased, &options)
        .unwrap();
    gov.trip_cancel_after_checks(10);
    let err = prepared.execute().unwrap_err();
    assert!(err.is_cancelled(), "got {err}");
    assert_eq!(db.env().pinned_frames(), 0);
    // A fresh governor on a fresh preparation runs the same query fine.
    let fresh = db
        .prepare("doc", JOIN_QUERY, EngineKind::M4CostBased)
        .unwrap();
    assert!(fresh.execute().is_ok());
}
