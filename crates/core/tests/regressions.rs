//! Named deterministic regressions promoted from proptest failure seeds.
//!
//! Root cause of the seed below: the planner used to push *strict*
//! predicates (ones that raise the non-text-comparison error when applied
//! to a non-text node, like `$v0 = "x"`) into a full-scan filter *below*
//! the join with the empty `/text()` relation. The filter then evaluated
//! the comparison against every node — including elements — and errored,
//! while the nested M1 semantics never reach the comparison because the
//! `some` clause over `/text()` has no witnesses. The fix defers strict
//! conjuncts until all their relations are placed, so they only apply to
//! rows the join actually produced.

use xmldb_core::{Database, EngineKind};

/// proptest seed: strict comparison under a `some` over an empty relation.
/// All engines must agree with M1's empty (non-error) answer.
#[test]
fn strict_predicate_not_pushed_below_empty_join() {
    let xml = "<a></a>";
    let q = "if (some $v20 in /text() satisfies true()) \
             then for $v0 in /a return if ($v0 = \"x\") then () else () \
             else ()";
    let db = Database::in_memory();
    db.load_document("doc", xml).unwrap();
    let reference = db.query("doc", q, EngineKind::M1InMemory).unwrap();
    assert_eq!(reference.to_xml(), "");
    for engine in EngineKind::ALL {
        let got = db
            .query("doc", q, engine)
            .unwrap_or_else(|e| panic!("engine {engine} errored: {e}"));
        assert_eq!(got, reference, "engine {engine} diverges from M1");
    }
}
