//! End-to-end tests for the unified observability layer: span trees on
//! query metrics, the flight recorder, plan digests, and the registry
//! exposition fed by real queries.

use std::time::Duration;
use xmldb_core::{Database, EngineKind, Governor, QueryOptions};

const FIGURE2: &str =
    "<journal><authors><name>Ana</name><name>Bob</name></authors><title>DB</title></journal>";

fn db() -> Database {
    let db = Database::in_memory();
    db.load_document("doc", FIGURE2).unwrap();
    db
}

#[test]
fn query_metrics_carry_span_tree() {
    let db = db();
    let r = db.query("doc", "//name", EngineKind::M4CostBased).unwrap();
    let m = r.metrics().expect("metrics attached");
    let names: Vec<&str> = m.spans.spans.iter().map(|s| s.name).collect();
    for expected in ["parse", "analyze", "optimize", "plan", "exec"] {
        assert!(
            names.contains(&expected),
            "missing span {expected}: {names:?}"
        );
    }
    // exec carries the engine attribute and io deltas.
    let exec = m.spans.spans.iter().find(|s| s.name == "exec").unwrap();
    assert!(
        exec.attrs
            .iter()
            .any(|(k, v)| *k == "engine" && v.to_string() == "m4-costbased"),
        "{:?}",
        exec.attrs
    );
    let rendered = m.spans.render();
    assert!(rendered.contains("exec"), "{rendered}");
}

#[test]
fn interpreter_engines_skip_plan_spans() {
    let db = db();
    let r = db.query("doc", "//name", EngineKind::M2Storage).unwrap();
    let m = r.metrics().unwrap();
    let names: Vec<&str> = m.spans.spans.iter().map(|s| s.name).collect();
    assert!(names.contains(&"parse"), "{names:?}");
    assert!(names.contains(&"exec"), "{names:?}");
    assert!(!names.contains(&"plan"), "{names:?}");
    assert!(m.plan_digest.is_none(), "interpreters have no plan digest");
}

#[test]
fn plan_digest_is_stable_per_plan() {
    let db = db();
    let d1 = db
        .query("doc", "//name", EngineKind::M4CostBased)
        .unwrap()
        .metrics()
        .unwrap()
        .plan_digest
        .expect("algebraic engines digest their plans");
    let d2 = db
        .query("doc", "//name", EngineKind::M4CostBased)
        .unwrap()
        .metrics()
        .unwrap()
        .plan_digest
        .unwrap();
    assert_eq!(d1, d2, "same query, same plan, same digest");
    let d3 = db
        .query("doc", "//title", EngineKind::M4CostBased)
        .unwrap()
        .metrics()
        .unwrap()
        .plan_digest
        .unwrap();
    assert_ne!(d1, d3, "different query shape, different digest");
}

#[test]
fn flight_recorder_sees_successes_and_failures() {
    let db = db();
    db.query("doc", "//name", EngineKind::M4CostBased).unwrap();
    let err = db.query("doc", "for $x in", EngineKind::M1InMemory);
    assert!(err.is_err());
    let records = db.flight_recorder().records();
    assert_eq!(records.len(), 2);
    assert!(
        records[0].outcome.starts_with("ok"),
        "{:?}",
        records[0].outcome
    );
    assert!(
        records[1].outcome.starts_with("error"),
        "{:?}",
        records[1].outcome
    );
    assert_eq!(records[0].engine, "m4-costbased");
    assert!(records[0].plan_digest.is_some());
    assert!(
        records[0].metrics.iter().any(|(k, _)| *k == "pool.hits"),
        "{:?}",
        records[0].metrics
    );
    // Clones share the recorder (worker threads feed one ring).
    let clone = db.clone();
    clone
        .query("doc", "//title", EngineKind::M2Storage)
        .unwrap();
    assert_eq!(db.flight_recorder().len(), 3);
}

#[test]
fn slow_queries_capture_explain_analyze() {
    let db = db();
    db.set_slow_query_threshold(Some(Duration::ZERO));
    db.query("doc", "//name", EngineKind::M4CostBased).unwrap();
    let records = db.flight_recorder().records();
    let analyze = records[0].analyze.as_deref().expect("slow query captured");
    assert!(analyze.contains("EXPLAIN ANALYZE"), "{analyze}");
    assert!(analyze.contains("buffer pool:"), "{analyze}");
    let rendered = records[0].render();
    assert!(rendered.contains("slow query"), "{rendered}");

    // A cancelled query must not be re-run for capture.
    let gov = Governor::unlimited();
    gov.cancel();
    let options = QueryOptions {
        governor: Some(gov),
        ..QueryOptions::default()
    };
    let err = db.query_with("doc", "//name", EngineKind::M4CostBased, &options);
    assert!(err.is_err());
    let records = db.flight_recorder().records();
    let last = records.last().unwrap();
    assert!(last.outcome.starts_with("error"), "{}", last.outcome);
    assert!(last.analyze.is_none(), "cancelled query was re-run");
}

#[test]
fn registry_exposition_covers_query_traffic() {
    let db = db();
    db.query("doc", "//name", EngineKind::M4CostBased).unwrap();
    db.query("doc", "//name", EngineKind::M2Storage).unwrap();
    let prom = db.env().registry().render_prometheus();
    assert!(
        prom.contains("saardb_query_latency_us_count{engine=\"m4-costbased\"} 1"),
        "{prom}"
    );
    assert!(
        prom.contains("saardb_queries_total{engine=\"m2-storage\"} 1"),
        "{prom}"
    );
    assert!(prom.contains("saardb_pool_hits_total"), "{prom}");
    assert!(prom.contains("saardb_pool_frames"), "{prom}");
    let json = db.env().registry().render_json();
    assert!(
        json.contains("\"saardb_query_latency_us{engine=\\\"m4-costbased\\\"}\""),
        "{json}"
    );
}

#[test]
fn governor_trips_are_counted_by_kind() {
    let db = db();
    let gov = Governor::unlimited();
    gov.cancel();
    let options = QueryOptions {
        governor: Some(gov),
        ..QueryOptions::default()
    };
    assert!(db
        .query_with("doc", "//name", EngineKind::M4CostBased, &options)
        .is_err());
    let deadline = QueryOptions {
        timeout: Some(Duration::ZERO),
        ..QueryOptions::default()
    };
    assert!(db
        .query_with("doc", "//name", EngineKind::M2Storage, &deadline)
        .is_err());
    let prom = db.env().registry().render_prometheus();
    assert!(
        prom.contains("saardb_governor_trips_total{kind=\"cancelled\"} 1"),
        "{prom}"
    );
    assert!(
        prom.contains("saardb_governor_trips_total{kind=\"deadline\"} 1"),
        "{prom}"
    );
}

#[test]
fn io_snapshot_counts_evictions_and_splits() {
    use xmldb_storage::{BTree, Env, EnvConfig};
    // Trickle inserts through a minimal 8-frame pool: the tree must split
    // (bulk loading is not used on this path) and the pool must evict.
    let env = Env::memory_with(EnvConfig::with_pool_bytes(1));
    let mut tree = BTree::create(&env, "t").unwrap();
    let value = [7u8; 200];
    for i in 0..2000u32 {
        tree.insert(format!("key-{i:06}").as_bytes(), &value)
            .unwrap();
    }
    let snap = env.io_stats();
    assert!(snap.btree_splits > 0, "{snap:?}");
    assert!(snap.evictions > 0, "{snap:?}");
    // The same counters surface through a query's io delta.
    let db = Database::in_memory_with(EnvConfig::with_pool_bytes(1));
    let mut xml = String::from("<r>");
    for i in 0..300 {
        xml.push_str(&format!("<e>text {i}</e>"));
    }
    xml.push_str("</r>");
    db.load_document("big", &xml).unwrap();
    let r = db.query("big", "//e", EngineKind::M4CostBased).unwrap();
    let m = r.metrics().unwrap();
    assert!(m.io.evictions > 0, "{:?}", m.io);
}
