//! `saardb` — the command-line front end to the native XML-DBMS.
//!
//! ```text
//! saardb --db <dir> load <name> <file.xml>     shred a document
//! saardb --db <dir> replace <name> <file.xml>  reshred (simple update)
//! saardb --db <dir> drop <name>                remove a document
//! saardb --db <dir> ls                         list documents
//! saardb --db <dir> stats <name>               document statistics
//! saardb --db <dir> dump <name>                serialize a document back to XML
//! saardb --db <dir> query <name> <xq>          evaluate a query
//! saardb --db <dir> explain <name> <xq>        show TPM + physical plan
//! saardb --db <dir> explain analyze <name> <xq>  run and show actual
//!                                              rows/opens/time per operator
//!                                              plus buffer-pool traffic
//! saardb --db <dir> stats [--json]             dump the metrics registry
//!                                              (Prometheus text or JSON)
//! saardb --db <dir> trace <name> <xq>          evaluate and print the
//!                                              query's span tree
//! saardb --db <dir> flightrec [--slow-ms N] [<name> <xq>...]
//!                                              run queries, then replay
//!                                              the flight recorder
//! saardb --db <dir> shell                      interactive session with
//!                                              begin/commit/rollback —
//!                                              queries between begin and
//!                                              commit run in one
//!                                              transaction; without begin
//!                                              each statement auto-commits
//!
//! options: --engine m1|naive|m2|m3|m4|m4p|parallel   (default m4)
//!          --pool-mb <n>                    buffer-pool budget (default 16)
//!          --timeout <secs>                 per-query wall-clock deadline
//!          --mem-limit <mb>                 per-query working-memory budget
//!          --parallelism <n>                morsels in flight for the
//!                                           parallel engine (default: the
//!                                           SAARDB_PARALLELISM environment
//!                                           variable, then the core count)
//! ```

use std::process::ExitCode;
use std::time::Duration;
use xmldb_core::{Database, EngineKind, QueryOptions};
use xmldb_storage::EnvConfig;

struct Args {
    db_dir: Option<String>,
    engine: EngineKind,
    pool_mb: usize,
    timeout: Option<Duration>,
    mem_limit_mb: Option<usize>,
    parallelism: Option<usize>,
    command: Vec<String>,
}

impl Args {
    fn query_options(&self) -> QueryOptions {
        QueryOptions {
            timeout: self.timeout,
            mem_limit: self.mem_limit_mb.map(|mb| mb << 20),
            parallelism: self.parallelism,
            ..QueryOptions::default()
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: saardb --db <dir> [--engine m1|naive|m2|m3|m4|m4p|parallel] [--pool-mb N]\n\
         \x20             [--timeout SECS] [--mem-limit MB] [--parallelism N] <command>\n\
         commands: load <name> <file.xml> | replace <name> <file.xml> | drop <name> |\n\
         \x20         ls | stats <name> | dump <name> | query <name> <xq> |\n\
         \x20         explain <name> <xq> | explain analyze <name> <xq> |\n\
         \x20         stats [--json] | trace <name> <xq> |\n\
         \x20         flightrec [--slow-ms N] [<name> <xq>...] | shell\n\
         \x20  saardb recover <dir>    replay the write-ahead log and print a\n\
         \x20                          recovery report (no database open needed)"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut db_dir = None;
    let mut engine = EngineKind::M4CostBased;
    let mut pool_mb = 16usize;
    let mut timeout = None;
    let mut mem_limit_mb = None;
    let mut parallelism = None;
    let mut command = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--db" => db_dir = Some(args.next().ok_or_else(usage)?),
            "--engine" => {
                engine = match args.next().as_deref() {
                    Some("m1") => EngineKind::M1InMemory,
                    Some("naive") => EngineKind::NaiveScan,
                    Some("m2") => EngineKind::M2Storage,
                    Some("m3") => EngineKind::M3Algebraic,
                    Some("m4") => EngineKind::M4CostBased,
                    Some("m4p") => EngineKind::M4Pipelined,
                    Some("parallel") => EngineKind::Parallel,
                    _ => return Err(usage()),
                }
            }
            "--pool-mb" => pool_mb = args.next().and_then(|s| s.parse().ok()).ok_or_else(usage)?,
            "--timeout" => {
                let secs: f64 = args.next().and_then(|s| s.parse().ok()).ok_or_else(usage)?;
                if !(secs >= 0.0 && secs.is_finite()) {
                    return Err(usage());
                }
                timeout = Some(Duration::from_secs_f64(secs));
            }
            "--mem-limit" => {
                mem_limit_mb = Some(args.next().and_then(|s| s.parse().ok()).ok_or_else(usage)?)
            }
            "--parallelism" => {
                parallelism = Some(args.next().and_then(|s| s.parse().ok()).ok_or_else(usage)?)
            }
            "--help" | "-h" => return Err(usage()),
            other => {
                command.push(other.to_string());
                command.extend(args.by_ref());
            }
        }
    }
    // Every command except `recover <dir>` needs --db.
    if db_dir.is_none() && command.first().map(String::as_str) != Some("recover") {
        return Err(usage());
    }
    if command.is_empty() {
        return Err(usage());
    }
    Ok(Args {
        db_dir,
        engine,
        pool_mb,
        timeout,
        mem_limit_mb,
        parallelism,
        command,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    // `recover` replays the WAL directly, before any environment opens the
    // directory — opening one would itself replay (and truncate) the log,
    // leaving nothing to report.
    if args.command.first().map(String::as_str) == Some("recover") {
        let dir = match (args.command.get(1), &args.db_dir) {
            (Some(d), _) => d.clone(),
            (None, Some(d)) => d.clone(),
            (None, None) => return usage(),
        };
        return match xmldb_storage::wal::replay(std::path::Path::new(&dir)) {
            Ok(report) => {
                println!("{report}");
                if report.is_clean() {
                    eprintln!("-- {dir}: clean (nothing to recover)");
                } else {
                    eprintln!("-- {dir}: recovered");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("recovery failed for {dir}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let Some(db_dir) = args.db_dir.as_deref() else {
        return usage();
    };
    let config = EnvConfig::with_pool_bytes(args.pool_mb << 20);
    let db = match Database::open_dir(db_dir, config) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("cannot open database at {db_dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = run(&db, &args);
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(db: &Database, args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let cmd: Vec<&str> = args.command.iter().map(String::as_str).collect();
    match cmd.as_slice() {
        ["load", name, file] => {
            let started = std::time::Instant::now();
            db.load_document_from_path(name, file)?;
            db.flush()?;
            let stats = db.store(name)?.stats().clone();
            eprintln!(
                "loaded {name}: {} nodes in {:.1} ms",
                stats.node_count,
                started.elapsed().as_secs_f64() * 1e3
            );
        }
        ["replace", name, file] => {
            let xml = std::fs::read_to_string(file)?;
            db.replace_document(name, &xml)?;
            db.flush()?;
            eprintln!("replaced {name}");
        }
        ["drop", name] => {
            db.drop_document(name)?;
            eprintln!("dropped {name}");
        }
        ["ls"] => {
            for doc in db.documents()? {
                let stats = db.store(&doc)?.stats().clone();
                println!(
                    "{doc}\t{} nodes\t{} elements\tdepth {:.1}",
                    stats.node_count,
                    stats.element_count,
                    stats.avg_depth()
                );
            }
        }
        // `stats` with no document name dumps the engine-wide metrics
        // registry rather than one document's shredding statistics.
        ["stats"] => {
            print!("{}", db.env().registry().render_prometheus());
        }
        ["stats", "--json"] => {
            println!("{}", db.env().registry().render_json());
        }
        ["stats", name] => {
            let store = db.store(name)?;
            let stats = store.stats();
            println!("document:            {name}");
            println!("nodes:               {}", stats.node_count);
            println!("elements:            {}", stats.element_count);
            println!("text nodes:          {}", stats.text_count);
            println!("distinct text values:{}", stats.distinct_text_values);
            println!("avg depth:           {:.2}", stats.avg_depth());
            println!("max depth:           {}", stats.max_depth);
            println!("text bytes:          {}", stats.text_bytes);
            println!("clustered pages:     {}", store.clustered_pages());
            println!("label-index pages:   {}", store.label_index_pages());
            println!("parent-index pages:  {}", store.parent_index_pages());
            println!("text-index pages:    {}", store.text_index_pages());
            println!("labels ({}):", stats.distinct_labels());
            for (label, count) in &stats.label_counts {
                println!("  {label:<24}{count}");
            }
        }
        ["dump", name] => {
            println!("{}", db.document_xml(name)?);
        }
        ["query", name, query] => {
            let started = std::time::Instant::now();
            let result = db.query_with(name, query, args.engine, &args.query_options())?;
            println!("{result}");
            let io = result
                .metrics()
                .map(|m| {
                    let governor = if m.governor.active {
                        format!(", governor: {}", m.governor.render())
                    } else {
                        String::new()
                    };
                    format!(
                        ", {} pool hits, {} misses, {} reads{governor}",
                        m.io.hits, m.io.misses, m.io.physical_reads
                    )
                })
                .unwrap_or_default();
            eprintln!(
                "-- {} item(s) in {:.2} ms [{}{io}]",
                result.len(),
                started.elapsed().as_secs_f64() * 1e3,
                args.engine
            );
        }
        ["trace", name, query] => {
            let result = db.query_with(name, query, args.engine, &args.query_options())?;
            let metrics = result.metrics().expect("query_with attaches metrics");
            eprintln!(
                "-- {} item(s) in {:.2} ms [{}]",
                result.len(),
                metrics.elapsed.as_secs_f64() * 1e3,
                args.engine
            );
            if let Some(digest) = metrics.plan_digest {
                eprintln!("-- plan digest {digest:016x}");
            }
            print!("{}", metrics.spans.render());
        }
        ["flightrec", rest @ ..] => {
            let mut slow_ms = None;
            let mut positional = Vec::new();
            let mut it = rest.iter();
            while let Some(tok) = it.next() {
                if *tok == "--slow-ms" {
                    let ms: u64 = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("flightrec: --slow-ms needs a number of milliseconds")?;
                    slow_ms = Some(ms);
                } else {
                    positional.push(*tok);
                }
            }
            if let Some(ms) = slow_ms {
                db.set_slow_query_threshold(Some(Duration::from_millis(ms)));
            }
            if let Some((name, queries)) = positional.split_first() {
                for query in queries {
                    // Failed queries land in the recorder too; replay
                    // them instead of aborting the session.
                    let _ = db.query_with(name, query, args.engine, &args.query_options());
                }
            }
            let records = db.flight_recorder().records();
            if records.is_empty() {
                eprintln!("flight recorder is empty (give it queries to run)");
            }
            for record in &records {
                println!("{}", record.render());
            }
        }
        ["shell"] => shell(db, args)?,
        ["explain", "analyze", name, query] => {
            print!(
                "{}",
                db.explain_analyze_with(name, query, args.engine, &args.query_options())?
            );
        }
        ["explain", name, query] => {
            print!("{}", db.explain(name, query, args.engine)?);
        }
        _ => {
            return Err("unknown command; run with --help".into());
        }
    }
    Ok(())
}

/// The interactive session: statements between `begin` and
/// `commit`/`rollback` run inside one transaction (reads hold shared page
/// locks, writes exclusive ones, nothing durable until `commit`); outside
/// a transaction every statement auto-commits as the one-shot commands do.
/// A `deadlock victim` error means the whole transaction was rolled back —
/// `begin` again and retry.
fn shell(db: &Database, args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    use std::io::{BufRead, Write};
    let stdin = std::io::stdin();
    let mut txn: Option<xmldb_core::Txn> = None;
    eprintln!("saardb shell — begin | commit | rollback | query <doc> <xq> | load <doc> <file> | drop <doc> | ls | exit");
    loop {
        eprint!("{}", if txn.is_some() { "txn> " } else { "sdb> " });
        std::io::stderr().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (word, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let outcome = shell_statement(db, args, &mut txn, word, rest.trim());
        match outcome {
            Ok(true) => break,
            Ok(false) => {}
            Err(e) => {
                eprintln!("error: {e}");
                // A deadlock victim is already rolled back — drop the
                // dead handle so the prompt reflects reality.
                if txn.as_ref().is_some_and(|t| !t.is_active()) {
                    eprintln!(
                        "-- transaction {} ended; begin again to retry",
                        txn.as_ref().unwrap().id()
                    );
                    txn = None;
                }
            }
        }
    }
    if let Some(t) = txn {
        eprintln!("-- rolling back open transaction {}", t.id());
        t.rollback()?;
    }
    Ok(())
}

/// One shell statement. Returns `Ok(true)` to exit the session.
fn shell_statement(
    db: &Database,
    args: &Args,
    txn: &mut Option<xmldb_core::Txn>,
    word: &str,
    rest: &str,
) -> Result<bool, Box<dyn std::error::Error>> {
    match (word, rest) {
        ("exit" | "quit", _) => return Ok(true),
        ("begin", _) => match txn {
            Some(t) => eprintln!("-- already in transaction {}", t.id()),
            None => {
                let t = db.begin();
                eprintln!("-- begin transaction {}", t.id());
                *txn = Some(t);
            }
        },
        ("commit", _) => match txn.take() {
            Some(t) => {
                let id = t.id();
                t.commit()?;
                eprintln!("-- committed transaction {id}");
            }
            None => eprintln!("-- no open transaction"),
        },
        ("rollback", _) => match txn.take() {
            Some(t) => {
                let id = t.id();
                t.rollback()?;
                eprintln!("-- rolled back transaction {id}");
            }
            None => eprintln!("-- no open transaction"),
        },
        ("ls", _) => {
            for doc in db.documents()? {
                println!("{doc}");
            }
        }
        ("load", spec) => {
            let (name, file) = spec
                .split_once(char::is_whitespace)
                .ok_or("load <doc> <file.xml>")?;
            let _scope = txn.as_ref().map(|t| t.install());
            db.load_document_from_path(name, file.trim())?;
            if txn.is_none() {
                db.flush()?;
            }
            eprintln!("-- loaded {name}");
        }
        ("drop", name) if !name.is_empty() => {
            let _scope = txn.as_ref().map(|t| t.install());
            db.drop_document(name)?;
            eprintln!("-- dropped {name}");
        }
        ("query", spec) => {
            let (name, query) = spec
                .split_once(char::is_whitespace)
                .ok_or("query <doc> <xq>")?;
            let options = QueryOptions {
                txn: txn.clone(),
                ..args.query_options()
            };
            let result = db.query_with(name, query.trim(), args.engine, &options)?;
            println!("{result}");
            eprintln!("-- {} item(s) [{}]", result.len(), args.engine);
        }
        _ => eprintln!("-- unknown statement: {word} (begin | commit | rollback | query | load | drop | ls | exit)"),
    }
    Ok(false)
}
