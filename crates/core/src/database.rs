//! The `Database` facade: a storage environment holding named shredded
//! documents, queried through any of the milestone engines.

use crate::engine::{self, EngineKind, QueryOptions};
use crate::{Error, QueryResult, Result};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xmldb_obs::{span, FlightRecorder, QueryRecord, SpanTree, TraceScope};
use xmldb_storage::{Env, EnvConfig, HeapFile};
use xmldb_xasr::{shred_document, XasrStore};

/// Name of the catalog file listing loaded documents.
const CATALOG: &str = "__catalog";

/// A saardb database: an environment plus a document catalog. Cloning
/// yields another handle onto the same environment (the testbed runs
/// queries on worker threads against cloned handles).
///
/// ```
/// use xmldb_core::{Database, EngineKind};
/// let db = Database::in_memory();
/// db.load_document("doc", "<a><b>x</b></a>").unwrap();
/// let r = db.query("doc", "//b", EngineKind::M1InMemory).unwrap();
/// assert_eq!(r.to_xml(), "<b>x</b>");
/// ```
#[derive(Clone)]
pub struct Database {
    env: Env,
    /// Ring of recent query records; shared by all clones of this handle,
    /// so the testbed's worker threads feed one recorder.
    flight: Arc<FlightRecorder>,
}

/// Everything `record_flight` needs to describe one `query_with` call.
struct FlightRun<'a> {
    doc: &'a str,
    query: &'a str,
    engine: EngineKind,
    options: &'a QueryOptions,
    elapsed: Duration,
    spans: SpanTree,
}

impl Database {
    fn with_env(env: Env) -> Database {
        let capacity = std::env::var("SAARDB_FLIGHTREC_CAPACITY")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(xmldb_obs::flight::DEFAULT_CAPACITY);
        let flight = Arc::new(FlightRecorder::new(capacity));
        let registry = env.registry();
        registry.help(
            "saardb_flightrec_dropped_total",
            "Flight-recorder records evicted before being scraped.",
        );
        flight.bind_dropped_counter(registry.counter("saardb_flightrec_dropped_total", &[]));
        Database { env, flight }
    }

    /// An in-memory database (tests, examples).
    pub fn in_memory() -> Database {
        Database::with_env(Env::memory())
    }

    /// An in-memory database with an explicit storage configuration (page
    /// size, buffer-pool budget — the efficiency tests' 20 MB knob).
    pub fn in_memory_with(config: EnvConfig) -> Database {
        Database::with_env(Env::memory_with(config))
    }

    /// Opens (creating if needed) an on-disk database.
    pub fn open_dir(path: impl Into<std::path::PathBuf>, config: EnvConfig) -> Result<Database> {
        Ok(Database::with_env(Env::open_dir(path, config)?))
    }

    /// The underlying storage environment.
    pub fn env(&self) -> &Env {
        &self.env
    }

    /// The flight recorder holding this database's recent query records.
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Sets (or clears) the slow-query threshold: queries at or above it
    /// are re-run under EXPLAIN ANALYZE and the full output is attached to
    /// their flight record. (Queries are read-only, so the re-run is
    /// side-effect free; it is skipped when the query was cancelled or hit
    /// a governor limit — re-running those would just trip again.)
    pub fn set_slow_query_threshold(&self, threshold: Option<Duration>) {
        self.flight.set_slow_threshold(threshold);
    }

    /// Loads (shreds) an XML document under `name`.
    pub fn load_document(&self, name: &str, xml: &str) -> Result<()> {
        if XasrStore::exists(&self.env, name) {
            return Err(Error::DocumentExists(name.to_string()));
        }
        if let Err(e) = shred_document(&self.env, name, xml) {
            // A failed shred may have created some of the document's
            // files already; remove them so the name is reusable. (Best
            // effort: if the failure was the disk filling up, the
            // environment is read-only now and the removal fails too —
            // callers that answered "load failed" must compensate once
            // it is writable again.)
            let _ = XasrStore::drop_document(&self.env, name);
            return Err(e.into());
        }
        self.catalog_add(name)?;
        Ok(())
    }

    /// Loads a document from a file on disk.
    pub fn load_document_from_path(
        &self,
        name: &str,
        path: impl AsRef<std::path::Path>,
    ) -> Result<()> {
        let xml = std::fs::read_to_string(path)
            .map_err(|e| Error::Storage(xmldb_storage::StorageError::from(e)))?;
        self.load_document(name, &xml)
    }

    /// Replaces a document wholesale — the paper's "keep updates as simple
    /// as possible": no in-place node edits or relabeling, just reshred.
    pub fn replace_document(&self, name: &str, xml: &str) -> Result<()> {
        if XasrStore::exists(&self.env, name) {
            XasrStore::drop_document(&self.env, name)?;
        }
        shred_document(&self.env, name, xml)?;
        self.catalog_add(name)?;
        Ok(())
    }

    /// Removes a document and its indexes.
    pub fn drop_document(&self, name: &str) -> Result<()> {
        if !XasrStore::exists(&self.env, name) {
            return Err(Error::NoSuchDocument(name.to_string()));
        }
        XasrStore::drop_document(&self.env, name)?;
        Ok(())
    }

    /// Removes whatever files exist for `name`, whole document or partial
    /// leftovers of a failed load alike; `Ok` if nothing is there. Unlike
    /// [`Database::drop_document`] this never reports a missing document —
    /// it is the compensation primitive, not the user-facing drop.
    pub fn scrub_document(&self, name: &str) -> Result<()> {
        XasrStore::drop_document(&self.env, name)?;
        Ok(())
    }

    /// True if a document named `name` is loaded.
    pub fn has_document(&self, name: &str) -> bool {
        XasrStore::exists(&self.env, name)
    }

    /// Names of loaded documents (catalog order, duplicates and dropped
    /// entries pruned).
    pub fn documents(&self) -> Result<Vec<String>> {
        if !self.env.file_exists(CATALOG) {
            return Ok(Vec::new());
        }
        let heap = HeapFile::open(&self.env, CATALOG)?;
        let mut names = Vec::new();
        for rec in heap.scan() {
            let rec = rec?;
            let name = String::from_utf8_lossy(&rec).into_owned();
            if !names.contains(&name) && XasrStore::exists(&self.env, &name) {
                names.push(name);
            }
        }
        Ok(names)
    }

    fn catalog_add(&self, name: &str) -> Result<()> {
        let mut heap = if self.env.file_exists(CATALOG) {
            HeapFile::open(&self.env, CATALOG)?
        } else {
            HeapFile::create(&self.env, CATALOG)?
        };
        heap.append(name.as_bytes())?;
        Ok(())
    }

    /// Serializes a whole stored document back to XML text (export; the
    /// XASR encoding is lossless for the root/element/text data model).
    pub fn document_xml(&self, name: &str) -> Result<String> {
        Ok(self.store(name)?.serialize_subtree(1)?)
    }

    /// Opens the XASR store for a document.
    pub fn store(&self, name: &str) -> Result<XasrStore> {
        if !XasrStore::exists(&self.env, name) {
            return Err(Error::NoSuchDocument(name.to_string()));
        }
        Ok(XasrStore::open(&self.env, name)?)
    }

    /// Parses and evaluates a query with the chosen engine.
    pub fn query(&self, doc: &str, query: &str, engine: EngineKind) -> Result<QueryResult> {
        self.query_with(doc, query, engine, &QueryOptions::default())
    }

    /// [`Self::query`] with per-query options (e.g. corrupted statistics).
    ///
    /// Every call runs under a trace collector (the span tree comes back
    /// in [`crate::QueryMetrics::spans`]) and deposits a record — success
    /// or failure — in the flight recorder.
    pub fn query_with(
        &self,
        doc: &str,
        query: &str,
        engine: EngineKind,
        options: &QueryOptions,
    ) -> Result<QueryResult> {
        let scope = TraceScope::start();
        let started = Instant::now();
        let result = (|| {
            let expr = {
                let _span = span("parse");
                xmldb_xq::parse(query)?
            };
            let store = self.store(doc)?;
            engine::evaluate(&store, &expr, engine, options)
        })();
        let elapsed = started.elapsed();
        let spans = scope.finish();
        let run = FlightRun {
            doc,
            query,
            engine,
            options,
            elapsed,
            spans: spans.clone(),
        };
        self.record_flight(run, &result);
        let mut result = result?;
        if let Some(m) = result.metrics_mut() {
            m.spans = spans;
        }
        Ok(result)
    }

    /// Builds and deposits the flight record for one `query_with` call,
    /// capturing EXPLAIN ANALYZE when the query was at or above the slow
    /// threshold.
    fn record_flight(&self, run: FlightRun<'_>, result: &Result<QueryResult>) {
        let FlightRun {
            doc,
            query,
            engine,
            options,
            elapsed,
            spans,
        } = run;
        let (outcome, plan_digest, metrics) = match result {
            Ok(r) => {
                let m = r.metrics();
                let deltas = m.map_or_else(Vec::new, |m| {
                    vec![
                        ("pool.hits", m.io.hits),
                        ("pool.misses", m.io.misses),
                        ("pool.evictions", m.io.evictions),
                        ("pool.physical_reads", m.io.physical_reads),
                        ("pool.physical_writes", m.io.physical_writes),
                        ("btree.node_views", m.io.node_views),
                        ("btree.in_place_searches", m.io.in_place_searches),
                        ("btree.splits", m.io.btree_splits),
                        ("wal.appends", m.io.wal_appends),
                        ("wal.bytes", m.io.wal_bytes),
                        ("wal.syncs", m.io.wal_syncs),
                        ("governor.spills", m.governor.spill_count),
                    ]
                });
                (
                    format!("ok ({} item(s))", r.len()),
                    m.and_then(|m| m.plan_digest),
                    deltas,
                )
            }
            Err(e) => (format!("error: {e}"), None, Vec::new()),
        };
        // Slow-query capture: re-run under EXPLAIN ANALYZE. Sound because
        // queries are read-only; skipped for governor trips (a deadline
        // that fired once would fire again, and a cancelled query's
        // re-run was not asked for).
        let rerun_is_safe = !matches!(result, Err(e) if engine::governor_trip_kind(e).is_some());
        let is_slow = self.flight.is_slow(elapsed);
        let analyze = if is_slow && rerun_is_safe {
            self.explain_analyze_with(doc, query, engine, options).ok()
        } else {
            None
        };
        if is_slow {
            // The slow-query log line: stamped with the wire request id
            // (when there is one) so it joins against the client's log and
            // the flight record for the same statement.
            let req = options
                .request_id
                .map_or(String::new(), |id| format!(" req={id:016x}"));
            eprintln!(
                "saardb: slow query{req} doc={doc} engine={} elapsed={:.3}ms {}",
                engine.name(),
                elapsed.as_secs_f64() * 1e3,
                outcome,
            );
        }
        self.flight.record(QueryRecord {
            seq: 0,
            request_id: options.request_id,
            doc: doc.to_string(),
            query: query.to_string(),
            engine: engine.name().to_string(),
            plan_digest,
            elapsed,
            outcome,
            metrics,
            spans,
            analyze,
        });
    }

    /// EXPLAIN: the merged TPM and physical plans for `query` under
    /// `engine`.
    pub fn explain(&self, doc: &str, query: &str, engine: EngineKind) -> Result<String> {
        self.explain_with(doc, query, engine, &QueryOptions::default())
    }

    /// [`Self::explain`] with per-query options.
    pub fn explain_with(
        &self,
        doc: &str,
        query: &str,
        engine: EngineKind,
        options: &QueryOptions,
    ) -> Result<String> {
        let expr = xmldb_xq::parse(query)?;
        let store = self.store(doc)?;
        engine::explain(&store, &expr, engine, options)
    }

    /// EXPLAIN ANALYZE: runs `query` under `engine` and renders the
    /// executed plans annotated with actual row counts, open (re-execution)
    /// counts and per-operator wall time, followed by the elapsed time and
    /// the query's buffer-pool traffic.
    pub fn explain_analyze(&self, doc: &str, query: &str, engine: EngineKind) -> Result<String> {
        self.explain_analyze_with(doc, query, engine, &QueryOptions::default())
    }

    /// [`Self::explain_analyze`] with per-query options.
    pub fn explain_analyze_with(
        &self,
        doc: &str,
        query: &str,
        engine: EngineKind,
        options: &QueryOptions,
    ) -> Result<String> {
        let expr = xmldb_xq::parse(query)?;
        let store = self.store(doc)?;
        engine::explain_analyze(&store, &expr, engine, options)
    }

    /// Persists all dirty state.
    pub fn flush(&self) -> Result<()> {
        self.env.flush()?;
        Ok(())
    }

    /// Begins a transaction. Run queries inside it by setting
    /// [`QueryOptions::txn`], or wrap direct store mutations in
    /// [`xmldb_storage::Txn::install`]; finish with
    /// [`xmldb_storage::Txn::commit`] or [`xmldb_storage::Txn::rollback`]
    /// (dropping the last handle of an unfinished transaction rolls back).
    /// Queries without a transaction stay auto-commit, exactly as before.
    pub fn begin(&self) -> xmldb_storage::Txn {
        self.env.begin_txn()
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database").field("env", &self.env).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE2: &str =
        "<journal><authors><name>Ana</name><name>Bob</name></authors><title>DB</title></journal>";

    #[test]
    fn load_query_all_engines_agree() {
        let db = Database::in_memory();
        db.load_document("f", FIGURE2).unwrap();
        let q = "<names>{ for $j in /journal return for $n in $j//name return $n }</names>";
        let reference = db.query("f", q, EngineKind::M1InMemory).unwrap();
        for engine in EngineKind::ALL {
            let got = db.query("f", q, engine).unwrap();
            assert_eq!(got, reference, "engine {engine} diverges");
        }
        assert_eq!(
            reference.to_xml(),
            "<names><name>Ana</name><name>Bob</name></names>"
        );
    }

    #[test]
    fn duplicate_load_rejected() {
        let db = Database::in_memory();
        db.load_document("x", "<a/>").unwrap();
        assert!(matches!(
            db.load_document("x", "<b/>"),
            Err(Error::DocumentExists(_))
        ));
    }

    #[test]
    fn missing_document_rejected() {
        let db = Database::in_memory();
        assert!(matches!(
            db.query("nope", "/a", EngineKind::M1InMemory),
            Err(Error::NoSuchDocument(_))
        ));
    }

    #[test]
    fn catalog_lists_documents() {
        let db = Database::in_memory();
        db.load_document("a", "<x/>").unwrap();
        db.load_document("b", "<y/>").unwrap();
        assert_eq!(
            db.documents().unwrap(),
            vec!["a".to_string(), "b".to_string()]
        );
        db.drop_document("a").unwrap();
        assert_eq!(db.documents().unwrap(), vec!["b".to_string()]);
        assert!(!db.has_document("a"));
    }

    #[test]
    fn syntax_errors_surface() {
        let db = Database::in_memory();
        db.load_document("d", "<a/>").unwrap();
        assert!(matches!(
            db.query("d", "for $x in", EngineKind::M1InMemory),
            Err(Error::Query(_))
        ));
        assert!(matches!(db.load_document("bad", "<a>"), Err(Error::Xml(_))));
    }

    #[test]
    fn persistent_database_roundtrip() {
        let dir = std::env::temp_dir().join(format!("saardb-db-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let db = Database::open_dir(&dir, EnvConfig::default()).unwrap();
            db.load_document("f", FIGURE2).unwrap();
            db.flush().unwrap();
        }
        {
            let db = Database::open_dir(&dir, EnvConfig::default()).unwrap();
            assert_eq!(db.documents().unwrap(), vec!["f".to_string()]);
            let r = db.query("f", "//name", EngineKind::M4CostBased).unwrap();
            assert_eq!(r.to_xml(), "<name>Ana</name><name>Bob</name>");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn document_export_roundtrips() {
        let db = Database::in_memory();
        db.load_document("f", FIGURE2).unwrap();
        assert_eq!(db.document_xml("f").unwrap(), FIGURE2);
    }

    #[test]
    fn concurrent_queries_agree() {
        let db = Database::in_memory();
        db.load_document("f", FIGURE2).unwrap();
        let expected = db
            .query("f", "//name", EngineKind::M4CostBased)
            .unwrap()
            .to_xml();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let db = db.clone();
                let expected = expected.clone();
                std::thread::spawn(move || {
                    let engine = EngineKind::ALL[i % EngineKind::ALL.len()];
                    for _ in 0..20 {
                        let got = db.query("f", "//name", engine).unwrap();
                        assert_eq!(got.to_xml(), expected);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("query thread panicked");
        }
    }

    #[test]
    fn explain_output() {
        let db = Database::in_memory();
        db.load_document("f", FIGURE2).unwrap();
        let text = db.explain("f", "//name", EngineKind::M4CostBased).unwrap();
        assert!(text.contains("relfor"));
        let text = db.explain("f", "//name", EngineKind::M2Storage).unwrap();
        assert!(text.contains("interpreter"));
    }
}
