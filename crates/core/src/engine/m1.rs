//! Milestone 1: the in-memory XQ evaluator.
//!
//! A direct implementation of the denotational semantics over the DOM —
//! "the primary goal was to ensure that the students understood the XQ
//! semantics". This engine doubles as the correctness oracle the testbed
//! diffs every other engine against (the role Galax played in the course).

use crate::{Error, QueryResult, Result};
use std::collections::HashMap;
use xmldb_physical::Error as ExecError;
use xmldb_xasr::NodeType;
use xmldb_xml::{Document, NodeId, NodeKind};
use xmldb_xq::{Axis, Cond, Expr, NodeTest, Var};

/// Evaluates `query` over an in-memory document. The implicit root
/// variable binds to the document's virtual root.
pub fn evaluate(doc: &Document, query: &Expr) -> Result<QueryResult> {
    let mut out = Document::new();
    let out_root = out.root();
    let mut env: HashMap<Var, NodeId> = HashMap::new();
    env.insert(Var::root(), doc.root());
    eval(doc, query, &mut env, &mut out, out_root)?;
    Ok(QueryResult::new(out))
}

/// Convenience: parse an XML string and evaluate a query string over it
/// without any storage environment.
pub fn evaluate_str(xml: &str, query: &str) -> Result<QueryResult> {
    let doc = xmldb_xml::parse(xml)?;
    let q = xmldb_xq::parse(query)?;
    evaluate(&doc, &q)
}

fn eval(
    doc: &Document,
    expr: &Expr,
    env: &mut HashMap<Var, NodeId>,
    out: &mut Document,
    parent: NodeId,
) -> Result<()> {
    match expr {
        Expr::Empty => Ok(()),
        Expr::Text(t) => {
            out.add_text(parent, t);
            Ok(())
        }
        Expr::Sequence(parts) => {
            for p in parts {
                eval(doc, p, env, out, parent)?;
            }
            Ok(())
        }
        Expr::Element { name, content } => {
            let id = out.add_element(parent, name.clone());
            eval(doc, content, env, out, id)
        }
        Expr::Var(v) => {
            let node = lookup(env, v)?;
            out.copy_subtree(parent, doc, node);
            Ok(())
        }
        Expr::Step(step) => {
            let base = lookup(env, &step.var)?;
            for node in axis_nodes(doc, base, step.axis, &step.test) {
                out.copy_subtree(parent, doc, node);
            }
            Ok(())
        }
        Expr::For { var, source, body } => {
            let base = lookup(env, &source.var)?;
            let nodes: Vec<NodeId> = axis_nodes(doc, base, source.axis, &source.test).collect();
            let saved = env.get(var).copied();
            // The DOM interpreter never touches the buffer pool, so its
            // loop iterations are the only place governor checks can fire.
            let gov = xmldb_storage::Governor::current();
            for node in nodes {
                gov.check().map_err(Error::Storage)?;
                env.insert(var.clone(), node);
                eval(doc, body, env, out, parent)?;
            }
            restore(env, var, saved);
            Ok(())
        }
        Expr::If { cond, then } => {
            if eval_cond(doc, cond, env)? {
                eval(doc, then, env, out, parent)?;
            }
            Ok(())
        }
    }
}

/// Evaluates a condition; non-text comparisons raise the runtime error the
/// paper permits.
pub fn eval_cond(doc: &Document, cond: &Cond, env: &mut HashMap<Var, NodeId>) -> Result<bool> {
    match cond {
        Cond::True => Ok(true),
        Cond::VarEqConst(v, s) => {
            let node = lookup(env, v)?;
            Ok(text_value(doc, node)? == s.as_str())
        }
        Cond::VarEqVar(a, b) => {
            let na = lookup(env, a)?;
            let nb = lookup(env, b)?;
            Ok(text_value(doc, na)? == text_value(doc, nb)?)
        }
        Cond::Some {
            var,
            source,
            satisfies,
        } => {
            let base = lookup(env, &source.var)?;
            let nodes: Vec<NodeId> = axis_nodes(doc, base, source.axis, &source.test).collect();
            let saved = env.get(var).copied();
            let gov = xmldb_storage::Governor::current();
            for node in nodes {
                gov.check().map_err(Error::Storage)?;
                env.insert(var.clone(), node);
                let holds = eval_cond(doc, satisfies, env)?;
                if holds {
                    restore(env, var, saved);
                    return Ok(true);
                }
            }
            restore(env, var, saved);
            Ok(false)
        }
        Cond::And(x, y) => Ok(eval_cond(doc, x, env)? && eval_cond(doc, y, env)?),
        Cond::Or(x, y) => Ok(eval_cond(doc, x, env)? || eval_cond(doc, y, env)?),
        Cond::Not(c) => Ok(!eval_cond(doc, c, env)?),
    }
}

fn lookup(env: &HashMap<Var, NodeId>, var: &Var) -> Result<NodeId> {
    env.get(var)
        .copied()
        .ok_or_else(|| Error::Exec(ExecError::UnboundVariable(var.to_string())))
}

fn restore(env: &mut HashMap<Var, NodeId>, var: &Var, saved: Option<NodeId>) {
    match saved {
        Some(old) => {
            env.insert(var.clone(), old);
        }
        None => {
            env.remove(var);
        }
    }
}

fn text_value(doc: &Document, node: NodeId) -> Result<&str> {
    match doc.kind(node) {
        NodeKind::Text => Ok(doc.value(node)),
        kind => Err(Error::Exec(ExecError::NonTextComparison {
            kind: match kind {
                NodeKind::Root => NodeType::Root,
                NodeKind::Element => NodeType::Element,
                NodeKind::Text => NodeType::Text,
            },
            value: Some(doc.value(node).to_string()),
        })),
    }
}

/// Nodes reached from `base` along `axis` satisfying `test`, in document
/// order.
fn axis_nodes<'a>(
    doc: &'a Document,
    base: NodeId,
    axis: Axis,
    test: &'a NodeTest,
) -> Box<dyn Iterator<Item = NodeId> + 'a> {
    let matches = move |id: NodeId| match test {
        NodeTest::Label(l) => doc.kind(id) == NodeKind::Element && doc.name(id) == l,
        NodeTest::Star => doc.kind(id) == NodeKind::Element,
        NodeTest::Text => doc.kind(id) == NodeKind::Text,
    };
    match axis {
        Axis::Child => Box::new(
            doc.children(base)
                .iter()
                .copied()
                .filter(move |&id| matches(id)),
        ),
        Axis::Descendant => Box::new(doc.descendants(base).filter(move |&id| matches(id))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE2: &str =
        "<journal><authors><name>Ana</name><name>Bob</name></authors><title>DB</title></journal>";

    fn run(query: &str) -> String {
        evaluate_str(FIGURE2, query).unwrap().to_xml()
    }

    #[test]
    fn example2_names_query() {
        let out = run("<names>{ for $j in /journal return for $n in $j//name return $n }</names>");
        assert_eq!(out, "<names><name>Ana</name><name>Bob</name></names>");
    }

    #[test]
    fn empty_query() {
        assert_eq!(run("()"), "");
    }

    #[test]
    fn literal_constructors() {
        assert_eq!(run("<a><b/>hi</a>"), "<a><b/>hi</a>");
    }

    #[test]
    fn variable_output_copies_subtree() {
        assert_eq!(
            run("for $a in /journal/authors return $a"),
            "<authors><name>Ana</name><name>Bob</name></authors>"
        );
    }

    #[test]
    fn descendant_text_step() {
        assert_eq!(run("for $j in /journal return $j//text()"), "AnaBobDB");
    }

    #[test]
    fn star_step() {
        assert_eq!(
            run("for $a in /journal/authors return $a/*"),
            "<name>Ana</name><name>Bob</name>"
        );
    }

    #[test]
    fn if_some_condition() {
        let q = "for $j in /journal return \
                 if (some $t in $j//text() satisfies $t = \"Ana\") then <hit/> else ()";
        assert_eq!(run(q), "<hit/>");
        let q = "for $j in /journal return \
                 if (some $t in $j//text() satisfies $t = \"Zoe\") then <hit/> else ()";
        assert_eq!(run(q), "");
    }

    #[test]
    fn var_eq_var() {
        // Two different text nodes with different content.
        let q = "for $a in //name, $b in //title return \
                 if ($a = $b) then <eq/> else ()";
        // $a and $b bind to *element* nodes → runtime error.
        let err = evaluate_str(FIGURE2, q).unwrap_err();
        assert!(err.is_non_text_comparison(), "got {err}");
        // On text nodes it works.
        let q = "for $a in //name/text(), $b in //name/text() return \
                 if ($a = $b) then <eq/> else ()";
        assert_eq!(run(q), "<eq/><eq/>"); // Ana=Ana, Bob=Bob
    }

    #[test]
    fn and_or_not() {
        let q = "for $j in /journal return \
                 if (true() and not(some $v in $j/volume satisfies true())) \
                 then <novolume/> else ()";
        assert_eq!(run(q), "<novolume/>");
        let q = "for $j in /journal return \
                 if (some $t in $j//text() satisfies ($t = \"Ana\" or $t = \"Zoe\")) \
                 then <found/> else ()";
        assert_eq!(run(q), "<found/>");
    }

    #[test]
    fn nested_for_shadowing() {
        let q = "for $x in /journal return for $x in $x/authors return $x/name";
        assert_eq!(run(q), "<name>Ana</name><name>Bob</name>");
    }

    #[test]
    fn general_else() {
        let q = "for $j in /journal return \
                 if (some $v in $j/volume satisfies true()) then <v/> else <no/>";
        assert_eq!(run(q), "<no/>");
    }

    #[test]
    fn for_over_empty_axis_skips_comparisons() {
        // The condition would error, but the loop binds nothing.
        let q = "for $v in /journal/volume return if ($v = \"x\") then $v else ()";
        assert_eq!(run(q), "");
    }

    #[test]
    fn document_order_of_output() {
        // Mixed descendant steps keep document order.
        assert_eq!(
            run("for $x in /journal/* return $x"),
            "<authors><name>Ana</name><name>Bob</name></authors><title>DB</title>"
        );
    }
}
