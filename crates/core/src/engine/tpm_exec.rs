//! The algebraic engines (milestones 3 and 4): compile to TPM, plan each
//! relfor's PSX, execute.
//!
//! A query compiles once into a `Prog` — the TPM tree with a physical
//! [`Plan`] attached to every relfor. Execution walks the tree; each relfor
//! instantiates its plan per binding environment, exactly the semantics of
//!
//! ```text
//! [[relfor (x̄) in α return β]](t̄) := ⊎ [[β]](t̄, in⁻¹(ā)) for ā ∈ [[α]](t̄)
//! ```

use crate::engine::interp;
use crate::engine::QueryOptions;
use crate::{Error, QueryResult, Result};
use std::cell::RefCell;
use std::collections::HashMap;
use std::time::Instant;
use xmldb_algebra::rewrite::{optimize, RewriteOptions};
use xmldb_algebra::{compile_query, Tpm};
use xmldb_exec_pool::WorkerPool;
use xmldb_obs::span;
use xmldb_optimizer::{plan_psx, CostModel, ParallelOpts, Plan, PlanMetrics, PlannerConfig};
use xmldb_physical::Error as ExecError;
use xmldb_physical::{Bindings, ExecContext, RowBatch, BATCH_ROWS};
use xmldb_xasr::{NodeTuple, XasrStore};
use xmldb_xml::{Document, NodeId};
use xmldb_xq::{Cond, Expr, Var};

/// Evaluates `query` with the TPM pipeline under `config`.
pub fn evaluate(
    store: &XasrStore,
    query: &Expr,
    config: &PlannerConfig,
    options: &QueryOptions,
) -> Result<QueryResult> {
    evaluate_with_rewrites(store, query, &RewriteOptions::default(), config, options)
}

/// [`evaluate`] with explicit logical-rewrite options — the ablation hook:
/// disabling relfor merging or redundant-relation elimination shows what
/// each milestone-3 rewrite buys.
pub fn evaluate_with_rewrites(
    store: &XasrStore,
    query: &Expr,
    rewrites: &RewriteOptions,
    config: &PlannerConfig,
    options: &QueryOptions,
) -> Result<QueryResult> {
    let program = compile_program(store, query, rewrites, config, options);
    execute_program(&program, store)
}

/// An opaque, fully planned query (the prepared-query payload): the TPM
/// tree with a physical plan attached to every relfor.
pub struct CompiledProgram {
    prog: Prog,
    /// Number of planned relfors (= analyze metric slots).
    plan_count: usize,
}

impl CompiledProgram {
    /// Digest of the whole program's physical shape: FNV-1a over the
    /// per-relfor plan digests in pre-order. Two queries with the same
    /// value were planned identically — the flight recorder shows it so
    /// plan changes across runs stand out without diffing EXPLAIN text.
    pub fn plan_digest(&self) -> u64 {
        fn walk(prog: &Prog, bytes: &mut Vec<u8>) {
            match prog {
                Prog::Empty | Prog::Text(_) | Prog::VarOut(_) => {}
                Prog::Concat(parts) => parts.iter().for_each(|p| walk(p, bytes)),
                Prog::Constr { content, .. } => walk(content, bytes),
                Prog::RelFor { plan, body, .. } | Prog::RelForOuter { plan, body, .. } => {
                    bytes.extend_from_slice(&plan.digest().to_le_bytes());
                    walk(body, bytes);
                }
                Prog::IfFallback { body, .. } => walk(body, bytes),
            }
        }
        let mut bytes = Vec::new();
        walk(&self.prog, &mut bytes);
        xmldb_obs::fnv1a(&bytes)
    }
}

/// Compiles and plans a query once; the result can be executed repeatedly
/// via [`execute_program`].
pub fn compile_program(
    store: &XasrStore,
    query: &Expr,
    rewrites: &RewriteOptions,
    config: &PlannerConfig,
    options: &QueryOptions,
) -> CompiledProgram {
    let tpm = {
        let _span = span("analyze");
        compile_query(query)
    };
    let tpm = {
        let _span = span("optimize");
        optimize(tpm, rewrites)
    };
    let _span = span("plan");
    let mut plan_count = 0;
    let prog = plan_tpm(&tpm, &model_for(store, options), config, &mut plan_count);
    CompiledProgram { prog, plan_count }
}

/// Executes a previously compiled program against `store` serially.
pub fn execute_program(program: &CompiledProgram, store: &XasrStore) -> Result<QueryResult> {
    execute_program_with(program, store, None)
}

/// [`execute_program`] with an optional parallelism target: `Some(n)`
/// (the [`super::EngineKind::Parallel`] engine) runs eligible relfor
/// fragments morsel-parallel on the shared worker pool with about `n`
/// morsels in flight; ineligible fragments fall back to the serial path
/// per relfor. Output is byte-identical either way.
pub fn execute_program_with(
    program: &CompiledProgram,
    store: &XasrStore,
    parallelism: Option<usize>,
) -> Result<QueryResult> {
    if parallelism.is_some() {
        // Surface the pool's gauges/counters through this environment's
        // registry (`saardb stats`, the Prometheus endpoint) and count
        // the query against the parallel engine.
        WorkerPool::global().bind_registry(store.env().registry());
        store
            .env()
            .registry()
            .counter("saardb_parallel_queries_total", &[("engine", "parallel")])
            .inc();
    }
    let mut out = Document::new();
    let out_root = out.root();
    let mut env: HashMap<Var, NodeTuple> = HashMap::new();
    env.insert(Var::root(), store.root()?);
    exec(
        &program.prog,
        store,
        &mut env,
        &mut out,
        out_root,
        None,
        parallelism,
    )?;
    Ok(QueryResult::new(out))
}

/// [`execute_program`] with per-operator instrumentation: every plan
/// instantiates [`xmldb_physical::AnalyzedOperator`]-wrapped trees, and
/// the collected counters come back as one [`PlanMetrics`] per relfor (in
/// the order the relfors appear in EXPLAIN output). The result slot also
/// carries the runtime error when execution failed part-way — the metrics
/// up to the failure point are still returned, which is what makes the
/// trace useful for triage.
pub fn execute_program_analyzed(
    program: &CompiledProgram,
    store: &XasrStore,
) -> (Result<QueryResult>, Vec<PlanMetrics>) {
    let metrics = RefCell::new(vec![PlanMetrics::new(); program.plan_count]);
    let result = (|| {
        let mut out = Document::new();
        let out_root = out.root();
        let mut env: HashMap<Var, NodeTuple> = HashMap::new();
        env.insert(Var::root(), store.root()?);
        exec(
            &program.prog,
            store,
            &mut env,
            &mut out,
            out_root,
            Some(&metrics),
            // Analyzed metric slots are Rc-shared — not Send — so EXPLAIN
            // ANALYZE always executes serially (the batch path stays on).
            None,
        )?;
        Ok(QueryResult::new(out))
    })();
    (result, metrics.into_inner())
}

/// EXPLAIN: the optimized TPM expression plus each relfor's physical plan.
pub fn explain(
    store: &XasrStore,
    query: &Expr,
    config: &PlannerConfig,
    options: &QueryOptions,
) -> Result<String> {
    explain_with_rewrites(store, query, &RewriteOptions::default(), config, options)
}

/// [`explain`] with explicit logical-rewrite options.
pub fn explain_with_rewrites(
    store: &XasrStore,
    query: &Expr,
    rewrites: &RewriteOptions,
    config: &PlannerConfig,
    options: &QueryOptions,
) -> Result<String> {
    let tpm = optimize(compile_query(query), rewrites);
    let mut plan_count = 0;
    let prog = plan_tpm(&tpm, &model_for(store, options), config, &mut plan_count);
    let mut out = String::new();
    out.push_str("=== TPM (merged) ===\n");
    out.push_str(&tpm.render());
    out.push_str("=== physical plans ===\n");
    render_prog(&prog, 0, None, &mut out);
    Ok(out)
}

/// EXPLAIN ANALYZE: compiles, plans and *runs* the query with instrumented
/// operators, then renders the TPM and every relfor's plan annotated with
/// actual row counts, open counts and wall time, followed by the result
/// summary and the query's buffer-pool traffic (I/O snapshot delta).
///
/// A runtime error does not abort the rendering: the plans carry the
/// counters accumulated up to the failure and the error is reported in the
/// execution section — a mis-planned query's trace is exactly what triage
/// needs to see.
pub fn explain_analyze_with_rewrites(
    store: &XasrStore,
    query: &Expr,
    rewrites: &RewriteOptions,
    config: &PlannerConfig,
    options: &QueryOptions,
) -> Result<String> {
    let tpm = optimize(compile_query(query), rewrites);
    let mut plan_count = 0;
    let prog = plan_tpm(&tpm, &model_for(store, options), config, &mut plan_count);
    let program = CompiledProgram { prog, plan_count };
    let governor = options.governor_handle();
    let _scope = governor.install();
    let io_before = store.env().io_stats();
    let started = Instant::now();
    let (result, metrics) = execute_program_analyzed(&program, store);
    let elapsed = started.elapsed();
    let io = store.env().io_stats().delta(&io_before);
    let mut out = String::new();
    out.push_str("=== TPM (merged) ===\n");
    out.push_str(&tpm.render());
    out.push_str("=== executed plans (EXPLAIN ANALYZE) ===\n");
    render_prog(&program.prog, 0, Some(&metrics), &mut out);
    out.push_str("=== execution ===\n");
    match &result {
        Ok(r) => out.push_str(&format!("result: {} item(s)\n", r.len())),
        Err(e) => out.push_str(&format!("runtime error: {e}\n")),
    }
    out.push_str(&format!("elapsed: {:.3} ms\n", elapsed.as_secs_f64() * 1e3));
    out.push_str(&format!(
        "buffer pool: {} hits, {} misses, {} physical reads, {} physical writes (hit ratio {:.1}%)\n",
        io.hits,
        io.misses,
        io.physical_reads,
        io.physical_writes,
        io.hit_ratio() * 100.0
    ));
    out.push_str(&format!(
        "read path: {} node views, {} in-place searches, {} shard locks\n",
        io.node_views, io.in_place_searches, io.shard_locks
    ));
    // Omit — rather than zero-fill — telemetry lines for subsystems the
    // query ran without: a WAL line without a WAL, or a governor line for
    // an unlimited query, carries no information.
    if store.env().has_wal() {
        out.push_str(&format!(
            "wal: {} page images, {} bytes, {} syncs\n",
            io.wal_appends, io.wal_bytes, io.wal_syncs
        ));
    }
    let gov = governor.snapshot();
    if gov.active {
        out.push_str(&format!("governor: {}\n", gov.render()));
    }
    Ok(out)
}

fn model_for(store: &XasrStore, options: &QueryOptions) -> CostModel {
    match &options.stats_override {
        Some(stats) => CostModel::new(
            stats.clone(),
            store.clustered_pages(),
            store.label_index_pages(),
            store.parent_index_pages(),
            store.env().page_size(),
        ),
        None => CostModel::from_store(store),
    }
}

/// The TPM tree with physical plans attached to relfors.
enum Prog {
    Empty,
    Text(String),
    Concat(Vec<Prog>),
    Constr {
        label: String,
        content: Box<Prog>,
    },
    VarOut(Var),
    RelFor {
        vars: Vec<Var>,
        plan: Plan,
        plan_index: usize,
        body: Box<Prog>,
    },
    /// The left-outer-join extension: one plan streams (outer ⟕ inner)
    /// rows; execution groups them by the outer prefix, emitting one
    /// `label` element per outer binding (empty for NULL-padded rows).
    RelForOuter {
        outer_vars: Vec<Var>,
        inner_var: Var,
        label: String,
        plan: Plan,
        plan_index: usize,
        body: Box<Prog>,
    },
    IfFallback {
        cond: Cond,
        body: Box<Prog>,
    },
}

/// Plans every relfor in the TPM, assigning each one a dense `plan_index`
/// (pre-order) so EXPLAIN ANALYZE can associate one [`PlanMetrics`] slot
/// vector per planned relfor.
fn plan_tpm(tpm: &Tpm, model: &CostModel, config: &PlannerConfig, next_index: &mut usize) -> Prog {
    match tpm {
        Tpm::Empty => Prog::Empty,
        Tpm::Text(t) => Prog::Text(t.clone()),
        Tpm::Concat(parts) => Prog::Concat(
            parts
                .iter()
                .map(|p| plan_tpm(p, model, config, next_index))
                .collect(),
        ),
        Tpm::Constr { label, content } => Prog::Constr {
            label: label.clone(),
            content: Box::new(plan_tpm(content, model, config, next_index)),
        },
        Tpm::VarOut(v) => Prog::VarOut(v.clone()),
        Tpm::RelFor { vars, source, body } => {
            let plan_index = *next_index;
            *next_index += 1;
            Prog::RelFor {
                vars: vars.clone(),
                plan: plan_psx(source, model, config),
                plan_index,
                body: Box::new(plan_tpm(body, model, config, next_index)),
            }
        }
        Tpm::RelForOuter {
            outer_vars,
            outer_source,
            label,
            inner_var,
            inner_source,
            body,
        } => {
            let plan_index = *next_index;
            *next_index += 1;
            Prog::RelForOuter {
                outer_vars: outer_vars.clone(),
                inner_var: inner_var.clone(),
                label: label.clone(),
                plan: xmldb_optimizer::plan_outer_join(outer_source, inner_source, model, config),
                plan_index,
                body: Box::new(plan_tpm(body, model, config, next_index)),
            }
        }
        Tpm::IfFallback { cond, body } => Prog::IfFallback {
            cond: cond.clone(),
            body: Box::new(plan_tpm(body, model, config, next_index)),
        },
    }
}

fn render_prog(prog: &Prog, level: usize, metrics: Option<&[PlanMetrics]>, out: &mut String) {
    let pad = "  ".repeat(level);
    match prog {
        Prog::Empty => out.push_str(&format!("{pad}()\n")),
        Prog::Text(t) => out.push_str(&format!("{pad}text({t:?})\n")),
        Prog::Concat(parts) => {
            out.push_str(&format!("{pad}concat\n"));
            for p in parts {
                render_prog(p, level + 1, metrics, out);
            }
        }
        Prog::Constr { label, content } => {
            out.push_str(&format!("{pad}constr({label})\n"));
            render_prog(content, level + 1, metrics, out);
        }
        Prog::VarOut(v) => out.push_str(&format!("{pad}emit {v}\n")),
        Prog::RelFor {
            vars,
            plan,
            plan_index,
            body,
        } => {
            let vartuple = vars
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!("{pad}relfor ({vartuple}):\n"));
            let rendered = match metrics {
                Some(m) => plan.explain_analyzed(&m[*plan_index]),
                None => plan.explain(),
            };
            for line in rendered.lines() {
                out.push_str(&format!("{pad}  | {line}\n"));
            }
            render_prog(body, level + 1, metrics, out);
        }
        Prog::RelForOuter {
            outer_vars,
            inner_var,
            label,
            plan,
            plan_index,
            body,
        } => {
            let vartuple = outer_vars
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "{pad}relfor-outer ({vartuple}; {inner_var}) constr({label}):\n"
            ));
            let rendered = match metrics {
                Some(m) => plan.explain_analyzed(&m[*plan_index]),
                None => plan.explain(),
            };
            for line in rendered.lines() {
                out.push_str(&format!("{pad}  | {line}\n"));
            }
            render_prog(body, level + 1, metrics, out);
        }
        Prog::IfFallback { cond, body } => {
            out.push_str(&format!("{pad}if* [{cond}] (interpreted)\n"));
            render_prog(body, level + 1, metrics, out);
        }
    }
}

/// When the parallel engine's fragment driver declines a relfor plan, the
/// relfor runs serially; the counter makes systematic fallbacks (a planner
/// change producing ineligible shapes) visible in `saardb stats`.
fn note_parallel_fallback(store: &XasrStore) {
    store
        .env()
        .registry()
        .counter("saardb_parallel_fallbacks_total", &[])
        .inc();
}

#[allow(clippy::too_many_arguments)]
fn exec(
    prog: &Prog,
    store: &XasrStore,
    env: &mut HashMap<Var, NodeTuple>,
    out: &mut Document,
    parent: NodeId,
    analyze: Option<&RefCell<Vec<PlanMetrics>>>,
    parallelism: Option<usize>,
) -> Result<()> {
    match prog {
        Prog::Empty => Ok(()),
        Prog::Text(t) => {
            out.add_text(parent, t);
            Ok(())
        }
        Prog::Concat(parts) => {
            for p in parts {
                exec(p, store, env, out, parent, analyze, parallelism)?;
            }
            Ok(())
        }
        Prog::Constr { label, content } => {
            let id = out.add_element(parent, label.clone());
            exec(content, store, env, out, id, analyze, parallelism)
        }
        Prog::VarOut(v) => {
            let tuple = env
                .get(v)
                .cloned()
                .ok_or_else(|| Error::Exec(ExecError::UnboundVariable(v.to_string())))?;
            emit_subtree(store, &tuple, out, parent)
        }
        Prog::RelFor {
            vars,
            plan,
            plan_index,
            body,
        } => {
            // External variables become constants of this plan execution.
            let mut bindings = Bindings::new();
            for (var, tuple) in env.iter() {
                bindings.bind(var.clone(), tuple.clone());
            }
            // Save shadowed bindings for restoration.
            let saved: Vec<(Var, Option<NodeTuple>)> = vars
                .iter()
                .map(|v| (v.clone(), env.get(v).cloned()))
                .collect();
            let result = (|| -> Result<()> {
                // Parallel engine: run the plan fragment morsel-wise on
                // the pool; batches arrive in document order and the body
                // evaluates here on the coordinator (document construction
                // is single-threaded by design). EXPLAIN ANALYZE metric
                // slots are Rc-shared, so analyzed runs stay serial.
                if let (Some(threads), None) = (parallelism, analyze) {
                    let opts = ParallelOpts {
                        pool: WorkerPool::global(),
                        parallelism: threads,
                        batch_rows: BATCH_ROWS,
                    };
                    let ran = xmldb_optimizer::execute_parallel::<Error, _>(
                        plan,
                        store,
                        &bindings,
                        &opts,
                        |batch: &RowBatch| {
                            for row in batch.iter() {
                                debug_assert_eq!(row.len(), vars.len());
                                for (i, var) in vars.iter().enumerate() {
                                    env.insert(var.clone(), row[i].clone());
                                }
                                exec(body, store, env, out, parent, analyze, parallelism)?;
                            }
                            Ok(())
                        },
                    )?;
                    if ran {
                        return Ok(());
                    }
                    note_parallel_fallback(store);
                }
                let ctx = ExecContext::new(store, &bindings);
                // Metric slots are shared across re-instantiations of this
                // plan (one per outer binding), so counters accumulate and
                // `opens` counts re-executions.
                let mut op = match analyze {
                    Some(cell) => plan.instantiate_analyzed(&mut cell.borrow_mut()[*plan_index]),
                    None => plan.instantiate(),
                };
                op.open(&ctx)?;
                let result = (|| -> Result<()> {
                    while let Some(row) = op.next(&ctx)? {
                        debug_assert_eq!(row.len(), vars.len());
                        for (i, var) in vars.iter().enumerate() {
                            env.insert(var.clone(), row[i].clone());
                        }
                        exec(body, store, env, out, parent, analyze, parallelism)?;
                    }
                    Ok(())
                })();
                op.close();
                result
            })();
            for (var, old) in saved {
                match old {
                    Some(t) => env.insert(var, t),
                    None => env.remove(&var),
                };
            }
            result
        }
        Prog::RelForOuter {
            outer_vars,
            inner_var,
            label,
            plan,
            plan_index,
            body,
        } => {
            let mut bindings = Bindings::new();
            for (var, tuple) in env.iter() {
                bindings.bind(var.clone(), tuple.clone());
            }
            let saved: Vec<(Var, Option<NodeTuple>)> = outer_vars
                .iter()
                .chain(std::iter::once(inner_var))
                .map(|v| (v.clone(), env.get(v).cloned()))
                .collect();
            let k = outer_vars.len();
            let mut current_group: Option<(Vec<u64>, NodeId)> = None;
            // One (outer ⟕ inner) row: maintain the per-outer-binding
            // group element, bind, evaluate the body. Shared verbatim by
            // the serial loop and the parallel gather (which delivers the
            // same rows in the same order).
            #[allow(clippy::too_many_arguments)]
            fn outer_row(
                row: &[NodeTuple],
                k: usize,
                outer_vars: &[Var],
                inner_var: &Var,
                label: &str,
                body: &Prog,
                store: &XasrStore,
                env: &mut HashMap<Var, NodeTuple>,
                out: &mut Document,
                parent: NodeId,
                current_group: &mut Option<(Vec<u64>, NodeId)>,
                analyze: Option<&RefCell<Vec<PlanMetrics>>>,
                parallelism: Option<usize>,
            ) -> Result<()> {
                debug_assert_eq!(row.len(), k + 1);
                let key: Vec<u64> = row[..k].iter().map(|t| t.in_).collect();
                let element = match &current_group {
                    Some((group_key, element)) if *group_key == key => *element,
                    _ => {
                        let element = out.add_element(parent, label.to_string());
                        *current_group = Some((key, element));
                        element
                    }
                };
                if row[k].is_null() {
                    // Match-less outer binding: the (empty) element was
                    // created above; nothing to evaluate inside it.
                    return Ok(());
                }
                for (i, var) in outer_vars.iter().enumerate() {
                    env.insert(var.clone(), row[i].clone());
                }
                env.insert(inner_var.clone(), row[k].clone());
                exec(body, store, env, out, element, analyze, parallelism)
            }
            let result = (|| -> Result<()> {
                if let (Some(threads), None) = (parallelism, analyze) {
                    let opts = ParallelOpts {
                        pool: WorkerPool::global(),
                        parallelism: threads,
                        batch_rows: BATCH_ROWS,
                    };
                    let ran = xmldb_optimizer::execute_parallel::<Error, _>(
                        plan,
                        store,
                        &bindings,
                        &opts,
                        |batch: &RowBatch| {
                            for row in batch.iter() {
                                outer_row(
                                    row,
                                    k,
                                    outer_vars,
                                    inner_var,
                                    label,
                                    body,
                                    store,
                                    env,
                                    out,
                                    parent,
                                    &mut current_group,
                                    analyze,
                                    parallelism,
                                )?;
                            }
                            Ok(())
                        },
                    )?;
                    if ran {
                        return Ok(());
                    }
                    note_parallel_fallback(store);
                }
                let ctx = ExecContext::new(store, &bindings);
                let mut op = match analyze {
                    Some(cell) => plan.instantiate_analyzed(&mut cell.borrow_mut()[*plan_index]),
                    None => plan.instantiate(),
                };
                op.open(&ctx)?;
                let result = (|| -> Result<()> {
                    while let Some(row) = op.next(&ctx)? {
                        outer_row(
                            &row,
                            k,
                            outer_vars,
                            inner_var,
                            label,
                            body,
                            store,
                            env,
                            out,
                            parent,
                            &mut current_group,
                            analyze,
                            parallelism,
                        )?;
                    }
                    Ok(())
                })();
                op.close();
                result
            })();
            for (var, old) in saved {
                match old {
                    Some(t) => env.insert(var, t),
                    None => env.remove(&var),
                };
            }
            result
        }
        Prog::IfFallback { cond, body } => {
            if interp::eval_cond_indexed(store, cond, env)? {
                exec(body, store, env, out, parent, analyze, parallelism)?;
            }
            Ok(())
        }
    }
}

fn emit_subtree(
    store: &XasrStore,
    tuple: &NodeTuple,
    out: &mut Document,
    parent: NodeId,
) -> Result<()> {
    let fragment = store.reconstruct(tuple.in_)?;
    let root = fragment.root();
    for &child in fragment.children(root) {
        out.copy_subtree(parent, &fragment, child);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldb_storage::Env;
    use xmldb_xasr::shred_document;

    const FIGURE2: &str =
        "<journal><authors><name>Ana</name><name>Bob</name></authors><title>DB</title></journal>";

    fn run(query: &str, config: &PlannerConfig) -> String {
        let env = Env::memory();
        let store = shred_document(&env, "d", FIGURE2).unwrap();
        let q = xmldb_xq::parse(query).unwrap();
        evaluate(&store, &q, config, &QueryOptions::default())
            .unwrap()
            .to_xml()
    }

    #[test]
    fn example2_both_planners() {
        let q = "<names>{ for $j in /journal return for $n in $j//name return $n }</names>";
        let expected = "<names><name>Ana</name><name>Bob</name></names>";
        assert_eq!(run(q, &PlannerConfig::heuristic()), expected);
        assert_eq!(run(q, &PlannerConfig::cost_based()), expected);
    }

    #[test]
    fn example5_if_some() {
        let q = "<names>{ for $j in /journal return \
                 if (some $t in $j//text() satisfies true()) \
                 then for $n in $j//name return $n else () }</names>";
        let expected = "<names><name>Ana</name><name>Bob</name></names>";
        assert_eq!(run(q, &PlannerConfig::cost_based()), expected);
        assert_eq!(run(q, &PlannerConfig::heuristic()), expected);
    }

    #[test]
    fn constructor_between_loops_not_merged_but_correct() {
        let q =
            "<names>{ for $j in /journal return <j>{ for $n in $j//name return $n }</j> }</names>";
        let expected = "<names><j><name>Ana</name><name>Bob</name></j></names>";
        assert_eq!(run(q, &PlannerConfig::cost_based()), expected);
    }

    #[test]
    fn fallback_condition_or() {
        let q = "for $j in /journal return \
                 if (some $t in $j//text() satisfies ($t = \"Ana\" or $t = \"Zoe\")) \
                 then <found/> else ()";
        assert_eq!(run(q, &PlannerConfig::cost_based()), "<found/>");
    }

    #[test]
    fn explain_contains_tpm_and_plans() {
        let env = Env::memory();
        let store = shred_document(&env, "d", FIGURE2).unwrap();
        let q = xmldb_xq::parse(
            "<names>{ for $j in /journal return for $n in $j//name return $n }</names>",
        )
        .unwrap();
        let text = explain(
            &store,
            &q,
            &PlannerConfig::cost_based(),
            &QueryOptions::default(),
        )
        .unwrap();
        assert!(text.contains("=== TPM (merged) ==="), "{text}");
        assert!(text.contains("relfor ($j, $n)"), "{text}");
        assert!(text.contains("=== physical plans ==="), "{text}");
        assert!(text.contains("project"), "{text}");
    }

    #[test]
    fn stats_override_still_correct() {
        let env = Env::memory();
        let store = shred_document(&env, "d", FIGURE2).unwrap();
        let q = xmldb_xq::parse("for $n in //name return $n").unwrap();
        let mut lying = store.stats().clone();
        lying.label_counts.insert("name".into(), 1_000_000);
        let opts = QueryOptions {
            stats_override: Some(lying),
            ..QueryOptions::default()
        };
        let out = evaluate(&store, &q, &PlannerConfig::cost_based(), &opts).unwrap();
        assert_eq!(out.to_xml(), "<name>Ana</name><name>Bob</name>");
    }
}
