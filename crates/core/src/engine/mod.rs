//! The four milestone engines (plus the naive-scan baseline).

pub mod interp;
pub mod m1;
pub mod tpm_exec;

use crate::{Error, QueryMetrics, QueryResult, Result};
use std::time::{Duration, Instant};
use xmldb_obs::span;
use xmldb_optimizer::PlannerConfig;
use xmldb_storage::{Governor, MemReservation, StorageError, Txn};
use xmldb_xasr::{Statistics, XasrStore};
use xmldb_xq::Expr;

/// Which engine evaluates a query. See crate docs for the milestone
/// mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Milestone 1: in-memory DOM interpreter (the correctness oracle).
    M1InMemory,
    /// The unoptimized baseline: storage interpreter, every axis step a
    /// full clustered scan.
    NaiveScan,
    /// Milestone 2: storage interpreter with per-binding index lookups.
    M2Storage,
    /// Milestone 3: TPM algebra with heuristic optimization.
    M3Algebraic,
    /// Milestone 4: cost-based optimization and index joins.
    M4CostBased,
    /// Milestone 4 with the bonus-point pipelining feature: nested-loops
    /// rights re-execute their scans instead of spilling to scratch files
    /// ("industrious students were rewarded with bonus points if they
    /// implemented either pipelining or cost-based join reordering").
    M4Pipelined,
    /// The cost-based engine with morsel-driven parallel execution:
    /// eligible relfor fragments split their leaf scan's `in`-range into
    /// morsels run on the shared worker pool, gathered back in document
    /// order — output is byte-identical to the serial engines.
    Parallel,
}

impl EngineKind {
    /// All engines, mild to wild.
    pub const ALL: [EngineKind; 7] = [
        EngineKind::M1InMemory,
        EngineKind::NaiveScan,
        EngineKind::M2Storage,
        EngineKind::M3Algebraic,
        EngineKind::M4CostBased,
        EngineKind::M4Pipelined,
        EngineKind::Parallel,
    ];

    /// Short stable name (testbed reports, benchmark tables).
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::M1InMemory => "m1-inmemory",
            EngineKind::NaiveScan => "naive-scan",
            EngineKind::M2Storage => "m2-storage",
            EngineKind::M3Algebraic => "m3-algebraic",
            EngineKind::M4CostBased => "m4-costbased",
            EngineKind::M4Pipelined => "m4-pipelined",
            EngineKind::Parallel => "parallel",
        }
    }

    /// The logical rewrites each algebraic engine applies: milestone 3 has
    /// the merging rules; the milestone-4 engines add the left-outer-join
    /// constructor extension.
    pub(crate) fn rewrite_options(self) -> xmldb_algebra::rewrite::RewriteOptions {
        use xmldb_algebra::rewrite::RewriteOptions;
        match self {
            EngineKind::M4CostBased | EngineKind::M4Pipelined | EngineKind::Parallel => {
                RewriteOptions::extended()
            }
            _ => RewriteOptions::default(),
        }
    }

    /// The planner configuration for the algebraic engines.
    pub(crate) fn planner_config(self) -> Option<PlannerConfig> {
        match self {
            EngineKind::M3Algebraic => Some(PlannerConfig::heuristic()),
            // The parallel engine plans exactly like the cost-based one:
            // same plans, so its serial fallbacks and the differential
            // harness compare like for like.
            EngineKind::M4CostBased | EngineKind::Parallel => Some(PlannerConfig::cost_based()),
            EngineKind::M4Pipelined => Some(PlannerConfig {
                materialize_right: false,
                ..PlannerConfig::cost_based()
            }),
            _ => None,
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-query knobs.
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// Replace the document's statistics for cost estimation — the
    /// Figure 7 engine-2 configuration ("due to unlucky estimates, the
    /// second engine decided for an unoptimal query plan").
    pub stats_override: Option<Statistics>,
    /// Wall-clock deadline for the evaluation. Past it the governor fails
    /// cooperative checks with `DeadlineExceeded`.
    pub timeout: Option<Duration>,
    /// Memory budget in bytes for operator-side working memory (sort
    /// buffers, join blocks, milestone 1's DOM). Budget pressure spills
    /// where an external path exists and fails with `MemoryExceeded`
    /// where none does.
    pub mem_limit: Option<usize>,
    /// An explicit governor handle, overriding `timeout`/`mem_limit`.
    /// Lets callers keep the cancellation token to fire it from another
    /// thread (the testbed's timed runner does exactly this).
    pub governor: Option<Governor>,
    /// Run the query inside this transaction: its page reads take (and
    /// hold) shared locks, writes take exclusive locks, and nothing is
    /// durable until the transaction commits. `None` — the default — is
    /// auto-commit: the query runs on the untransacted fast path.
    pub txn: Option<Txn>,
    /// Target parallelism for [`EngineKind::Parallel`] (morsels in flight
    /// at once). `None` falls back to the `SAARDB_PARALLELISM` environment
    /// variable, then to the machine's available cores. Other engines
    /// ignore it.
    pub parallelism: Option<usize>,
    /// Wire-level request id of the statement this query serves, when it
    /// arrived over the network. Carried into [`QueryMetrics`] and the
    /// flight record so client-side log lines, server spans and
    /// slow-query output all name the same statement.
    pub request_id: Option<u64>,
}

impl QueryOptions {
    /// The governor this query runs under: an explicit handle wins; else
    /// one is built from `timeout`/`mem_limit` if either is set; else the
    /// enclosing scope's governor is inherited (inert when there is none).
    pub(crate) fn governor_handle(&self) -> Governor {
        if let Some(gov) = &self.governor {
            gov.clone()
        } else if self.timeout.is_some() || self.mem_limit.is_some() {
            Governor::with_limits(self.timeout, self.mem_limit)
        } else {
            Governor::current()
        }
    }

    /// The effective parallelism for [`EngineKind::Parallel`]: explicit
    /// option, else `SAARDB_PARALLELISM`, else the available cores.
    pub(crate) fn resolved_parallelism(&self) -> usize {
        self.parallelism
            .or_else(|| {
                std::env::var("SAARDB_PARALLELISM")
                    .ok()
                    .and_then(|v| v.parse().ok())
            })
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
            .max(1)
    }
}

/// Up-front accounting for milestone 1's whole-document DOM: the engine
/// materializes every node before evaluating, so the reservation is made
/// from the document's statistics *before* reconstruction starts. A budget
/// too small for the DOM fails fast with `MemoryExceeded` instead of
/// letting reconstruction exhaust real memory.
fn reserve_dom_estimate(store: &XasrStore, governor: &Governor) -> Result<MemReservation> {
    // Per-node DOM overhead (node struct, child-vector slot, label share)
    // plus the raw text bytes. Deliberately coarse: accounting granularity
    // here is "the whole DOM", matching how M1 allocates.
    const PER_NODE: usize = 96;
    let stats = store.stats();
    let estimate = stats.node_count as usize * PER_NODE + stats.text_bytes as usize;
    Ok(MemReservation::new(governor, estimate)?)
}

/// Classifies an error as a governor trip for the
/// `saardb_governor_trips_total{kind=…}` counter. Governor failures
/// surface wrapped at whichever layer hit the cooperative check.
pub(crate) fn governor_trip_kind(e: &Error) -> Option<&'static str> {
    let storage = match e {
        Error::Storage(se) => se,
        Error::Xasr(xmldb_xasr::Error::Storage(se)) => se,
        Error::Exec(xmldb_physical::Error::Storage(se)) => se,
        _ => return None,
    };
    match storage {
        StorageError::Cancelled => Some("cancelled"),
        StorageError::DeadlineExceeded => Some("deadline"),
        StorageError::MemoryExceeded { .. } => Some("memory"),
        _ => None,
    }
}

/// Evaluates a parsed query over a shredded document with the chosen
/// engine. The returned result carries [`QueryMetrics`] — wall time and
/// the buffer-pool traffic (I/O snapshot delta) the evaluation caused.
/// Every evaluation (including failed ones) lands in the environment's
/// metrics registry: a per-engine latency histogram, a query counter, and
/// — for governor failures — a trip counter by kind.
pub fn evaluate(
    store: &XasrStore,
    query: &Expr,
    engine: EngineKind,
    options: &QueryOptions,
) -> Result<QueryResult> {
    let governor = options.governor_handle();
    let _scope = governor.install();
    let _txn_scope = options.txn.as_ref().map(Txn::install);
    let io_before = store.env().io_stats();
    let started = Instant::now();
    let exec_span = span("exec");
    exec_span.attr_str("engine", engine.name());
    let mut plan_digest = None;
    let result = (|| match engine {
        EngineKind::M1InMemory => {
            // Milestone 1 works on the DOM; materialize the document.
            // Account for the whole DOM up front so a small budget fails
            // with MemoryExceeded rather than OOMing mid-reconstruction.
            let _dom = reserve_dom_estimate(store, &governor)?;
            let doc = store.reconstruct(1)?;
            m1::evaluate(&doc, query)
        }
        EngineKind::NaiveScan => interp::evaluate(store, query, interp::AccessMode::FullScan),
        EngineKind::M2Storage => interp::evaluate(store, query, interp::AccessMode::Indexed),
        algebraic => {
            let config = algebraic
                .planner_config()
                .expect("algebraic engines have configs");
            let program = tpm_exec::compile_program(
                store,
                query,
                &algebraic.rewrite_options(),
                &config,
                options,
            );
            plan_digest = Some(program.plan_digest());
            let parallelism =
                (algebraic == EngineKind::Parallel).then(|| options.resolved_parallelism());
            tpm_exec::execute_program_with(&program, store, parallelism)
        }
    })();
    let elapsed = started.elapsed();
    let io = store.env().io_stats().delta(&io_before);
    exec_span.attr_u64("pool_hits", io.hits);
    exec_span.attr_u64("pool_misses", io.misses);
    exec_span.attr_u64("node_views", io.node_views);
    drop(exec_span);
    let registry = store.env().registry();
    let labels = [("engine", engine.name())];
    registry
        .histogram("saardb_query_latency_us", &labels)
        .record(elapsed.as_micros() as u64);
    registry.counter("saardb_queries_total", &labels).inc();
    if let Err(e) = &result {
        if let Some(kind) = governor_trip_kind(e) {
            registry
                .counter("saardb_governor_trips_total", &[("kind", kind)])
                .inc();
        }
    }
    let mut result = result?;
    result.set_metrics(QueryMetrics {
        elapsed,
        io,
        governor: governor.snapshot(),
        plan_digest,
        spans: Default::default(),
        request_id: options.request_id,
    });
    Ok(result)
}

/// Renders the TPM expression and per-relfor physical plans for a query
/// under the given engine (EXPLAIN). Interpreter engines have no plans; the
/// rendering says so.
pub fn explain(
    store: &XasrStore,
    query: &Expr,
    engine: EngineKind,
    options: &QueryOptions,
) -> Result<String> {
    match engine {
        EngineKind::M1InMemory | EngineKind::NaiveScan | EngineKind::M2Storage => Ok(format!(
            "engine {} is an interpreter (no algebraic plan)\n",
            engine.name()
        )),
        algebraic => {
            let config = algebraic
                .planner_config()
                .expect("algebraic engines have configs");
            tpm_exec::explain_with_rewrites(
                store,
                query,
                &algebraic.rewrite_options(),
                &config,
                options,
            )
        }
    }
}

/// EXPLAIN ANALYZE: runs the query and renders the executed plans with
/// actual row counts, open counts and wall time per operator, plus the
/// query's elapsed time and buffer-pool traffic. Interpreter engines have
/// no plans; for them only the execution summary is reported.
pub fn explain_analyze(
    store: &XasrStore,
    query: &Expr,
    engine: EngineKind,
    options: &QueryOptions,
) -> Result<String> {
    match engine {
        EngineKind::M1InMemory | EngineKind::NaiveScan | EngineKind::M2Storage => {
            let result = evaluate(store, query, engine, options);
            let mut out = format!(
                "engine {} is an interpreter (no algebraic plan)\n=== execution ===\n",
                engine.name()
            );
            match &result {
                Ok(r) => {
                    out.push_str(&format!("result: {} item(s)\n", r.len()));
                    if let Some(m) = r.metrics() {
                        out.push_str(&format!(
                            "elapsed: {:.3} ms\n",
                            m.elapsed.as_secs_f64() * 1e3
                        ));
                        out.push_str(&format!(
                            "buffer pool: {} hits, {} misses, {} physical reads, {} physical writes (hit ratio {:.1}%)\n",
                            m.io.hits,
                            m.io.misses,
                            m.io.physical_reads,
                            m.io.physical_writes,
                            m.io.hit_ratio() * 100.0
                        ));
                        out.push_str(&format!(
                            "read path: {} node views, {} in-place searches, {} shard locks\n",
                            m.io.node_views, m.io.in_place_searches, m.io.shard_locks
                        ));
                        // A WAL line for an environment without a WAL (or a
                        // governor line for a query run without limits)
                        // would only ever print zeros/"off" — omit them.
                        if store.env().has_wal() {
                            out.push_str(&format!(
                                "wal: {} page images, {} bytes, {} syncs\n",
                                m.io.wal_appends, m.io.wal_bytes, m.io.wal_syncs
                            ));
                        }
                        if m.governor.active {
                            out.push_str(&format!("governor: {}\n", m.governor.render()));
                        }
                    }
                }
                Err(e) => out.push_str(&format!("runtime error: {e}\n")),
            }
            Ok(out)
        }
        algebraic => {
            let config = algebraic
                .planner_config()
                .expect("algebraic engines have configs");
            tpm_exec::explain_analyze_with_rewrites(
                store,
                query,
                &algebraic.rewrite_options(),
                &config,
                options,
            )
        }
    }
}
