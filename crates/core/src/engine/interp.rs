//! The storage interpreters: milestone 2 (per-binding index lookups) and
//! the naive full-scan baseline.
//!
//! Both walk the XQ AST directly, holding only the current variable
//! bindings in memory — the paper's observation that XQ variables always
//! bind single nodes makes this possible. The difference is the access
//! path of an axis step:
//!
//! * [`AccessMode::Indexed`] — children via the parent index, descendants
//!   via clustered/label-interval scans (what Berkeley DB's B-trees gave
//!   the milestone-2 engines),
//! * [`AccessMode::FullScan`] — every step scans the whole clustered index
//!   and filters (the unoptimized strawman; the course's point was that
//!   the techniques taught speed this up "by several orders of
//!   magnitude").

use crate::{Error, QueryResult, Result};
use std::collections::HashMap;
use xmldb_physical::Error as ExecError;
use xmldb_xasr::{predicates, NodeTuple, NodeType, XasrStore};
use xmldb_xml::{Document, NodeId};
use xmldb_xq::{Axis, Cond, Expr, NodeTest, Var};

/// How axis steps touch storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// Index lookups per binding (milestone 2).
    Indexed,
    /// Full clustered scan per step (the unoptimized baseline).
    FullScan,
}

/// Evaluates `query` against a shredded document.
pub fn evaluate(store: &XasrStore, query: &Expr, mode: AccessMode) -> Result<QueryResult> {
    let mut out = Document::new();
    let out_root = out.root();
    let mut env: HashMap<Var, NodeTuple> = HashMap::new();
    env.insert(Var::root(), store.root()?);
    let interp = Interp { store, mode };
    interp.eval(query, &mut env, &mut out, out_root)?;
    Ok(QueryResult::new(out))
}

/// Evaluates a condition with indexed access (used by the TPM executor's
/// fallback path for `or`/`not` conditions).
pub(crate) fn eval_cond_indexed(
    store: &XasrStore,
    cond: &Cond,
    env: &mut HashMap<Var, NodeTuple>,
) -> Result<bool> {
    Interp {
        store,
        mode: AccessMode::Indexed,
    }
    .eval_cond(cond, env)
}

struct Interp<'a> {
    store: &'a XasrStore,
    mode: AccessMode,
}

impl<'a> Interp<'a> {
    fn eval(
        &self,
        expr: &Expr,
        env: &mut HashMap<Var, NodeTuple>,
        out: &mut Document,
        parent: NodeId,
    ) -> Result<()> {
        match expr {
            Expr::Empty => Ok(()),
            Expr::Text(t) => {
                out.add_text(parent, t);
                Ok(())
            }
            Expr::Sequence(parts) => {
                for p in parts {
                    self.eval(p, env, out, parent)?;
                }
                Ok(())
            }
            Expr::Element { name, content } => {
                let id = out.add_element(parent, name.clone());
                self.eval(content, env, out, id)
            }
            Expr::Var(v) => {
                let tuple = lookup(env, v)?;
                self.emit_subtree(&tuple, out, parent)
            }
            Expr::Step(step) => {
                let base = lookup(env, &step.var)?;
                for tuple in self.axis(&base, step.axis, &step.test) {
                    let tuple = tuple?;
                    self.emit_subtree(&tuple, out, parent)?;
                }
                Ok(())
            }
            Expr::For { var, source, body } => {
                let base = lookup(env, &source.var)?;
                let tuples: Vec<Result<NodeTuple>> =
                    self.axis(&base, source.axis, &source.test).collect();
                let saved = env.get(var).cloned();
                for tuple in tuples {
                    env.insert(var.clone(), tuple?);
                    self.eval(body, env, out, parent)?;
                }
                restore(env, var, saved);
                Ok(())
            }
            Expr::If { cond, then } => {
                if self.eval_cond(cond, env)? {
                    self.eval(then, env, out, parent)?;
                }
                Ok(())
            }
        }
    }

    /// Condition evaluation (shared with the TPM executor's fallback for
    /// `or`/`not` conditions).
    pub(crate) fn eval_cond(&self, cond: &Cond, env: &mut HashMap<Var, NodeTuple>) -> Result<bool> {
        match cond {
            Cond::True => Ok(true),
            Cond::VarEqConst(v, s) => {
                let tuple = lookup(env, v)?;
                Ok(text_value(&tuple)? == s.as_str())
            }
            Cond::VarEqVar(a, b) => {
                let ta = lookup(env, a)?;
                let tb = lookup(env, b)?;
                Ok(text_value(&ta)? == text_value(&tb)?)
            }
            Cond::Some {
                var,
                source,
                satisfies,
            } => {
                let base = lookup(env, &source.var)?;
                let tuples: Vec<Result<NodeTuple>> =
                    self.axis(&base, source.axis, &source.test).collect();
                let saved = env.get(var).cloned();
                for tuple in tuples {
                    env.insert(var.clone(), tuple?);
                    if self.eval_cond(satisfies, env)? {
                        restore(env, var, saved);
                        return Ok(true);
                    }
                }
                restore(env, var, saved);
                Ok(false)
            }
            Cond::And(x, y) => Ok(self.eval_cond(x, env)? && self.eval_cond(y, env)?),
            Cond::Or(x, y) => Ok(self.eval_cond(x, env)? || self.eval_cond(y, env)?),
            Cond::Not(c) => Ok(!self.eval_cond(c, env)?),
        }
    }

    /// Axis step: tuples reached from `base`, in document order.
    fn axis(
        &self,
        base: &NodeTuple,
        axis: Axis,
        test: &NodeTest,
    ) -> Box<dyn Iterator<Item = Result<NodeTuple>> + 'a> {
        let tuple_test = to_tuple_test(test);
        match (self.mode, axis) {
            (AccessMode::Indexed, Axis::Child) => Box::new(
                self.store
                    .children(base.in_)
                    .map(|r| r.map_err(Error::from))
                    .filter(move |r| keep(r, &tuple_test)),
            ),
            (AccessMode::Indexed, Axis::Descendant) => match test {
                NodeTest::Label(l) => Box::new(
                    self.store
                        .by_label_in_range(l, base.in_, base.out)
                        .map(|r| r.map_err(Error::from)),
                ),
                _ => Box::new(
                    self.store
                        .scan_in_range(base.in_, base.out)
                        .map(|r| r.map_err(Error::from))
                        .filter(move |r| keep(r, &tuple_test)),
                ),
            },
            (AccessMode::FullScan, Axis::Child) => {
                let parent_in = base.in_;
                Box::new(
                    self.store
                        .scan_all()
                        .map(|r| r.map_err(Error::from))
                        .filter(move |r| {
                            keep(r, &tuple_test)
                                && r.as_ref().map(|t| t.parent_in == parent_in).unwrap_or(true)
                        }),
                )
            }
            (AccessMode::FullScan, Axis::Descendant) => {
                let anchor = base.clone();
                Box::new(
                    self.store
                        .scan_all()
                        .map(|r| r.map_err(Error::from))
                        .filter(move |r| {
                            keep(r, &tuple_test)
                                && r.as_ref()
                                    .map(|t| predicates::is_descendant(&anchor, t))
                                    .unwrap_or(true)
                        }),
                )
            }
        }
    }

    /// Copies the stored subtree under `tuple` into the output.
    fn emit_subtree(&self, tuple: &NodeTuple, out: &mut Document, parent: NodeId) -> Result<()> {
        let fragment = self.store.reconstruct(tuple.in_)?;
        let root = fragment.root();
        for &child in fragment.children(root) {
            out.copy_subtree(parent, &fragment, child);
        }
        Ok(())
    }
}

fn keep(r: &Result<NodeTuple>, test: &predicates::TupleTest) -> bool {
    match r {
        Ok(t) => test.matches(t),
        Err(_) => true, // propagate errors to the consumer
    }
}

fn to_tuple_test(test: &NodeTest) -> predicates::TupleTest {
    match test {
        NodeTest::Label(l) => predicates::TupleTest::Label(l.clone()),
        NodeTest::Star => predicates::TupleTest::AnyElement,
        NodeTest::Text => predicates::TupleTest::Text,
    }
}

fn lookup(env: &HashMap<Var, NodeTuple>, var: &Var) -> Result<NodeTuple> {
    env.get(var)
        .cloned()
        .ok_or_else(|| Error::Exec(ExecError::UnboundVariable(var.to_string())))
}

fn restore(env: &mut HashMap<Var, NodeTuple>, var: &Var, saved: Option<NodeTuple>) {
    match saved {
        Some(old) => {
            env.insert(var.clone(), old);
        }
        None => {
            env.remove(var);
        }
    }
}

fn text_value(tuple: &NodeTuple) -> Result<&str> {
    match tuple.kind {
        NodeType::Text => Ok(tuple.value.as_deref().unwrap_or("")),
        kind => Err(Error::Exec(ExecError::NonTextComparison {
            kind,
            value: tuple.value.clone(),
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldb_storage::Env;
    use xmldb_xasr::shred_document;

    const FIGURE2: &str =
        "<journal><authors><name>Ana</name><name>Bob</name></authors><title>DB</title></journal>";

    fn run(query: &str, mode: AccessMode) -> String {
        let env = Env::memory();
        let store = shred_document(&env, "d", FIGURE2).unwrap();
        let q = xmldb_xq::parse(query).unwrap();
        evaluate(&store, &q, mode).unwrap().to_xml()
    }

    #[test]
    fn both_modes_match_m1_on_example2() {
        let q = "<names>{ for $j in /journal return for $n in $j//name return $n }</names>";
        let expected = "<names><name>Ana</name><name>Bob</name></names>";
        assert_eq!(run(q, AccessMode::Indexed), expected);
        assert_eq!(run(q, AccessMode::FullScan), expected);
    }

    #[test]
    fn conditions_and_output_order() {
        let q = "for $j in /journal return \
                 if (some $t in $j//text() satisfies $t = \"Bob\") then $j/title else ()";
        assert_eq!(run(q, AccessMode::Indexed), "<title>DB</title>");
        assert_eq!(run(q, AccessMode::FullScan), "<title>DB</title>");
    }

    #[test]
    fn full_scan_matches_indexed_on_many_queries() {
        let queries = [
            "()",
            "/journal",
            "//name",
            "for $x in /journal/* return <item>{ $x/text() }</item>",
            "for $a in //name/text(), $b in //name/text() return \
             if ($a = $b) then <same/> else ()",
            "for $x in //ghost return $x",
        ];
        for q in queries {
            assert_eq!(
                run(q, AccessMode::Indexed),
                run(q, AccessMode::FullScan),
                "mode mismatch for {q}"
            );
        }
    }

    #[test]
    fn non_text_comparison_errors() {
        let env = Env::memory();
        let store = shred_document(&env, "d", FIGURE2).unwrap();
        let q =
            xmldb_xq::parse("for $n in //name return if ($n = \"Ana\") then $n else ()").unwrap();
        let err = evaluate(&store, &q, AccessMode::Indexed).unwrap_err();
        assert!(err.is_non_text_comparison());
    }
}
