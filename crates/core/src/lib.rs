#![warn(missing_docs)]

//! saardb — a native XML-DBMS, reproducing the system built in the
//! Saarbrücken database-systems course (Koch, Olteanu, Scherzinger 2006).
//!
//! The crate exposes the [`Database`] facade over the whole stack and the
//! four *milestone engines* the course developed, selectable per query via
//! [`EngineKind`]:
//!
//! | engine | milestone | strategy |
//! |--------|-----------|----------|
//! | [`EngineKind::M1InMemory`]  | 1 | DOM + direct denotational interpreter (also the correctness oracle) |
//! | [`EngineKind::NaiveScan`]   | – | storage interpreter whose every axis step is a full clustered scan (the unoptimized baseline the course's speedup claims are measured against) |
//! | [`EngineKind::M2Storage`]   | 2 | storage interpreter with per-binding index lookups, no algebra |
//! | [`EngineKind::M3Algebraic`] | 3 | XQ→TPM, relfor merging, selection pushing, NLJ over materialized intermediates |
//! | [`EngineKind::M4CostBased`] | 4 | + statistics, cost-based join reordering, index nested-loops joins, semijoin projection |
//!
//! ```
//! use xmldb_core::{Database, EngineKind};
//! let db = Database::in_memory();
//! db.load_document("lib", "<journal><name>Ana</name></journal>").unwrap();
//! let result = db
//!     .query("lib", "for $n in /journal/name return $n", EngineKind::M4CostBased)
//!     .unwrap();
//! assert_eq!(result.to_xml(), "<name>Ana</name>");
//! ```

pub mod database;
pub mod engine;
pub mod prepared;
pub mod result;

mod error;

pub use database::Database;
pub use engine::{EngineKind, QueryOptions};
pub use error::Error;
pub use prepared::PreparedQuery;
pub use result::{QueryMetrics, QueryResult};
pub use xmldb_obs::{FlightRecorder, QueryRecord, Registry, SpanTree};
pub use xmldb_storage::{Governor, GovernorSnapshot, IoSnapshot, Txn};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;
