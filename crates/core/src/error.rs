use std::fmt;

/// Top-level saardb error.
#[derive(Debug, Clone)]
pub enum Error {
    /// XML parse failure while loading a document.
    Xml(xmldb_xml::XmlError),
    /// XQ syntax/validation failure.
    Query(xmldb_xq::ParseError),
    /// Storage-manager failure.
    Storage(xmldb_storage::StorageError),
    /// XASR layer failure.
    Xasr(xmldb_xasr::Error),
    /// Runtime evaluation failure (including the paper's non-text
    /// comparison error).
    Exec(xmldb_physical::Error),
    /// A document name that does not exist.
    NoSuchDocument(String),
    /// A document name already in use.
    DocumentExists(String),
}

impl From<xmldb_xml::XmlError> for Error {
    fn from(e: xmldb_xml::XmlError) -> Self {
        Error::Xml(e)
    }
}

impl From<xmldb_xq::ParseError> for Error {
    fn from(e: xmldb_xq::ParseError) -> Self {
        Error::Query(e)
    }
}

impl From<xmldb_storage::StorageError> for Error {
    fn from(e: xmldb_storage::StorageError) -> Self {
        Error::Storage(e)
    }
}

impl From<xmldb_xasr::Error> for Error {
    fn from(e: xmldb_xasr::Error) -> Self {
        // Unwrap the causes users care about (parse errors during loading,
        // storage failures) to their own variants.
        match e {
            xmldb_xasr::Error::Xml(x) => Error::Xml(x),
            xmldb_xasr::Error::Storage(s) => Error::Storage(s),
            other => Error::Xasr(other),
        }
    }
}

impl From<xmldb_physical::Error> for Error {
    fn from(e: xmldb_physical::Error) -> Self {
        Error::Exec(e)
    }
}

impl Error {
    /// True for the XQ runtime error "comparison on a non-text node".
    pub fn is_non_text_comparison(&self) -> bool {
        matches!(
            self,
            Error::Exec(xmldb_physical::Error::NonTextComparison { .. })
        )
    }

    /// The underlying storage error, whether it surfaced directly
    /// (`Error::Storage`, e.g. from a buffer-pool governor check) or
    /// through the executor (`Error::Exec(Storage(..))`, e.g. from a
    /// row-boundary check in an operator).
    fn storage_cause(&self) -> Option<&xmldb_storage::StorageError> {
        match self {
            Error::Storage(e) => Some(e),
            Error::Exec(xmldb_physical::Error::Storage(e)) => Some(e),
            _ => None,
        }
    }

    /// True when the query was stopped by its governor's cancellation
    /// token.
    pub fn is_cancelled(&self) -> bool {
        matches!(
            self.storage_cause(),
            Some(xmldb_storage::StorageError::Cancelled)
        )
    }

    /// True when the query ran past its governor's wall-clock deadline.
    pub fn is_deadline_exceeded(&self) -> bool {
        matches!(
            self.storage_cause(),
            Some(xmldb_storage::StorageError::DeadlineExceeded)
        )
    }

    /// True when the query exhausted its governor's memory budget with no
    /// spillable degradation left.
    pub fn is_memory_exceeded(&self) -> bool {
        matches!(
            self.storage_cause(),
            Some(xmldb_storage::StorageError::MemoryExceeded { .. })
        )
    }

    /// True when the enclosing transaction was aborted as a deadlock
    /// victim. Retryable: begin a fresh transaction and rerun — like
    /// [`Error::is_cancelled`], this marks scheduling bad luck, not a bug.
    pub fn is_deadlock(&self) -> bool {
        matches!(
            self.storage_cause(),
            Some(xmldb_storage::StorageError::Deadlock { .. })
        )
    }

    /// True when a write-ahead-log append or sync ran the volume out of
    /// space; the owning operation failed cleanly and the environment is
    /// now in read-only degraded mode.
    pub fn is_no_space(&self) -> bool {
        matches!(
            self.storage_cause(),
            Some(xmldb_storage::StorageError::NoSpace)
        )
    }

    /// True when a write was refused because the environment is in
    /// read-only degraded mode (disk full); reads still work, and the mode
    /// clears automatically once a checkpoint reclaims space.
    pub fn is_read_only(&self) -> bool {
        matches!(
            self.storage_cause(),
            Some(xmldb_storage::StorageError::ReadOnly)
        )
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Xml(e) => write!(f, "XML error: {e}"),
            Error::Query(e) => write!(f, "query error: {e}"),
            Error::Storage(e) => write!(f, "storage error: {e}"),
            Error::Xasr(e) => write!(f, "XASR error: {e}"),
            Error::Exec(e) => write!(f, "execution error: {e}"),
            Error::NoSuchDocument(name) => write!(f, "no such document: {name}"),
            Error::DocumentExists(name) => write!(f, "document already exists: {name}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Xml(e) => Some(e),
            Error::Query(e) => Some(e),
            Error::Storage(e) => Some(e),
            Error::Xasr(e) => Some(e),
            Error::Exec(e) => Some(e),
            _ => None,
        }
    }
}
