//! Prepared queries: parse, compile and plan once, execute many times.
//!
//! The course's efficiency tests re-ran the same queries; a real client
//! does too. [`Database::prepare`] front-loads the per-query work (XQ
//! parsing, TPM compilation, rewriting, planning) so each
//! [`PreparedQuery::execute`] only runs the physical plans.

use crate::database::Database;
use crate::engine::{interp, m1, tpm_exec, EngineKind, QueryOptions};
use crate::{QueryResult, Result};
use xmldb_xq::Expr;

/// A query bound to a document and an engine, with all per-query
/// compilation already done.
///
/// ```
/// use xmldb_core::{Database, EngineKind};
/// let db = Database::in_memory();
/// db.load_document("d", "<a><n>x</n></a>").unwrap();
/// let q = db.prepare("d", "//n", EngineKind::M4CostBased).unwrap();
/// assert_eq!(q.execute().unwrap().to_xml(), "<n>x</n>");
/// assert_eq!(q.execute().unwrap().to_xml(), "<n>x</n>"); // no re-planning
/// ```
pub struct PreparedQuery {
    db: Database,
    doc: String,
    engine: EngineKind,
    options: QueryOptions,
    state: PreparedState,
}

enum PreparedState {
    /// Interpreter engines keep the parsed AST.
    Ast(Expr),
    /// Algebraic engines keep the fully planned program.
    Program(tpm_exec::CompiledProgram),
}

impl Database {
    /// Prepares `query` against `doc` for repeated execution with `engine`.
    pub fn prepare(&self, doc: &str, query: &str, engine: EngineKind) -> Result<PreparedQuery> {
        self.prepare_with(doc, query, engine, &QueryOptions::default())
    }

    /// [`Self::prepare`] with per-query options.
    pub fn prepare_with(
        &self,
        doc: &str,
        query: &str,
        engine: EngineKind,
        options: &QueryOptions,
    ) -> Result<PreparedQuery> {
        let expr = xmldb_xq::parse(query)?;
        let store = self.store(doc)?;
        let state = match engine {
            EngineKind::M1InMemory | EngineKind::NaiveScan | EngineKind::M2Storage => {
                PreparedState::Ast(expr)
            }
            algebraic => PreparedState::Program(tpm_exec::compile_program(
                &store,
                &expr,
                &algebraic.rewrite_options(),
                &algebraic
                    .planner_config()
                    .expect("algebraic engines have configs"),
                options,
            )),
        };
        Ok(PreparedQuery {
            db: self.clone(),
            doc: doc.to_string(),
            engine,
            options: options.clone(),
            state,
        })
    }
}

impl PreparedQuery {
    /// The engine this query was prepared for.
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// The document this query was prepared against.
    pub fn document(&self) -> &str {
        &self.doc
    }

    /// Runs the prepared query under the governor its preparation options
    /// describe (a fresh deadline per execution).
    pub fn execute(&self) -> Result<QueryResult> {
        let store = self.db.store(&self.doc)?;
        let governor = self.options.governor_handle();
        let _scope = governor.install();
        match &self.state {
            PreparedState::Ast(expr) => match self.engine {
                EngineKind::M1InMemory => {
                    let dom = store.reconstruct(1)?;
                    m1::evaluate(&dom, expr)
                }
                EngineKind::NaiveScan => {
                    interp::evaluate(&store, expr, interp::AccessMode::FullScan)
                }
                EngineKind::M2Storage => {
                    interp::evaluate(&store, expr, interp::AccessMode::Indexed)
                }
                _ => unreachable!("algebraic engines carry programs"),
            },
            PreparedState::Program(program) => {
                let parallelism = (self.engine == EngineKind::Parallel)
                    .then(|| self.options.resolved_parallelism());
                tpm_exec::execute_program_with(program, &store, parallelism)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str =
        "<lib><journal><name>Ana</name></journal><journal><name>Bob</name></journal></lib>";
    const QUERY: &str =
        "<names>{ for $j in //journal return for $n in $j//name return $n }</names>";

    #[test]
    fn prepared_matches_adhoc_for_all_engines() {
        let db = Database::in_memory();
        db.load_document("d", DOC).unwrap();
        for engine in EngineKind::ALL {
            let adhoc = db.query("d", QUERY, engine).unwrap();
            let prepared = db.prepare("d", QUERY, engine).unwrap();
            assert_eq!(prepared.execute().unwrap(), adhoc, "{engine}");
            // Second execution must be identical (no state corruption).
            assert_eq!(prepared.execute().unwrap(), adhoc, "{engine} re-exec");
            assert_eq!(prepared.engine(), engine);
            assert_eq!(prepared.document(), "d");
        }
    }

    #[test]
    fn prepared_sees_document_replacement() {
        // Prepared plans reference the document by name; replacing the
        // document re-resolves the store at execute time.
        let db = Database::in_memory();
        db.load_document("d", "<a><n>old</n></a>").unwrap();
        let q = db.prepare("d", "//n", EngineKind::M2Storage).unwrap();
        assert_eq!(q.execute().unwrap().to_xml(), "<n>old</n>");
        db.replace_document("d", "<a><n>new</n></a>").unwrap();
        assert_eq!(q.execute().unwrap().to_xml(), "<n>new</n>");
    }

    #[test]
    fn prepare_rejects_bad_queries_eagerly() {
        let db = Database::in_memory();
        db.load_document("d", "<a/>").unwrap();
        assert!(matches!(
            db.prepare("d", "for $x in", EngineKind::M4CostBased),
            Err(crate::Error::Query(_))
        ));
        assert!(matches!(
            db.prepare("missing", "//a", EngineKind::M4CostBased),
            Err(crate::Error::NoSuchDocument(_))
        ));
    }
}
