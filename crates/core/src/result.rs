//! Query results: a sequence of output items held as a DOM forest.

use std::time::Duration;
use xmldb_obs::SpanTree;
use xmldb_storage::{GovernorSnapshot, IoSnapshot};
use xmldb_xml::{serialize_subtree, Document, NodeId};

/// Execution metrics attached to a [`QueryResult`] by the engine
/// dispatcher: wall time plus the buffer-pool traffic the query caused
/// (an [`IoSnapshot`] delta over the store's environment).
#[derive(Debug, Clone, Default)]
pub struct QueryMetrics {
    /// Wall-clock evaluation time (parse excluded, plan included).
    pub elapsed: Duration,
    /// Buffer-pool counter deltas for this query: hits, misses, physical
    /// reads and writes.
    pub io: IoSnapshot,
    /// Resource-governor counters for this query: cooperative checks,
    /// peak accounted bytes, budget-pressure spills. Inactive (all zeros)
    /// when the query ran without limits.
    pub governor: GovernorSnapshot,
    /// FNV-1a digest of the physical plan shape; `None` for interpreter
    /// engines (they have no plan).
    pub plan_digest: Option<u64>,
    /// The query's span tree (`parse → analyze → optimize → plan → exec`
    /// with storage sub-spans); empty when the query ran through an entry
    /// point that does not install a trace collector.
    pub spans: SpanTree,
    /// Wire-level request id, echoed from
    /// [`crate::engine::QueryOptions::request_id`]; `None` for local
    /// calls.
    pub request_id: Option<u64>,
}

/// The result of evaluating an XQ query: a sequence of constructed and/or
/// copied nodes, in output order.
///
/// Internally a [`Document`] whose virtual root's children are the items.
/// Two results are equal iff their canonical (compact) serializations are
/// byte-equal — exactly how the course's submission&test system diffed
/// engine outputs against the reference answers.
#[derive(Debug, Clone)]
pub struct QueryResult {
    doc: Document,
    // Boxed: the metrics block (io snapshot, governor counters, span tree)
    // is larger than the result header itself and most results move
    // through channels and enum variants by value.
    metrics: Option<Box<QueryMetrics>>,
}

impl QueryResult {
    /// Wraps a result forest.
    pub(crate) fn new(doc: Document) -> QueryResult {
        QueryResult { doc, metrics: None }
    }

    /// An empty result.
    pub fn empty() -> QueryResult {
        QueryResult {
            doc: Document::new(),
            metrics: None,
        }
    }

    /// Attaches execution metrics (done by the engine dispatcher).
    pub(crate) fn set_metrics(&mut self, metrics: QueryMetrics) {
        self.metrics = Some(Box::new(metrics));
    }

    /// Execution metrics, if the result came through an entry point that
    /// measures them (`Database::query` and friends). `None` for results
    /// built by lower-level calls (e.g. [`QueryResult::empty`]).
    pub fn metrics(&self) -> Option<&QueryMetrics> {
        self.metrics.as_deref()
    }

    /// Mutable metrics access (the facade attaches the span tree after the
    /// trace scope closes).
    pub(crate) fn metrics_mut(&mut self) -> Option<&mut QueryMetrics> {
        self.metrics.as_deref_mut()
    }

    /// The result forest as a DOM.
    pub fn document(&self) -> &Document {
        &self.doc
    }

    /// Number of top-level items.
    pub fn len(&self) -> usize {
        self.doc.children(self.doc.root()).len()
    }

    /// True if the query produced nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Item ids in output order.
    pub fn items(&self) -> &[NodeId] {
        self.doc.children(self.doc.root())
    }

    /// Canonical compact serialization of the whole result sequence.
    pub fn to_xml(&self) -> String {
        xmldb_xml::serialize_document(&self.doc)
    }

    /// Serialization of one item.
    pub fn item_xml(&self, index: usize) -> Option<String> {
        self.items()
            .get(index)
            .map(|&id| serialize_subtree(&self.doc, id))
    }
}

impl PartialEq for QueryResult {
    fn eq(&self, other: &Self) -> bool {
        self.to_xml() == other.to_xml()
    }
}

impl Eq for QueryResult {}

impl std::fmt::Display for QueryResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_xml())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_result() {
        let r = QueryResult::empty();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.to_xml(), "");
    }

    #[test]
    fn items_and_serialization() {
        let mut doc = Document::new();
        let root = doc.root();
        let a = doc.add_element(root, "a");
        doc.add_text(a, "x");
        doc.add_text(root, "tail");
        let r = QueryResult::new(doc);
        assert_eq!(r.len(), 2);
        assert_eq!(r.to_xml(), "<a>x</a>tail");
        assert_eq!(r.item_xml(0).unwrap(), "<a>x</a>");
        assert_eq!(r.item_xml(1).unwrap(), "tail");
        assert!(r.item_xml(2).is_none());
    }

    #[test]
    fn equality_is_canonical_serialization() {
        let mut d1 = Document::new();
        let r1 = d1.root();
        d1.add_element(r1, "a");
        let mut d2 = Document::new();
        let r2 = d2.root();
        d2.add_element(r2, "a");
        assert_eq!(QueryResult::new(d1), QueryResult::new(d2));
    }
}
