//! DBLP-like bibliography generator.

use crate::push_tag;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the DBLP-like generator.
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// Number of `article` publications.
    pub articles: usize,
    /// Number of `inproceedings` publications.
    pub inproceedings: usize,
    /// Author count per publication is uniform in this inclusive range.
    pub authors: (usize, usize),
    /// Probability that an article carries a `volume` element — the rare
    /// label that makes Example 6's plans differ by orders of magnitude.
    pub volume_probability: f64,
    /// Probability that a publication carries a `cite` list.
    pub cite_probability: f64,
    /// RNG seed (same seed ⇒ byte-identical document).
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig {
            articles: 400,
            inproceedings: 300,
            authors: (1, 4),
            volume_probability: 0.08,
            cite_probability: 0.2,
            seed: 0x5AAB,
        }
    }
}

impl DblpConfig {
    /// Scales the default publication counts by `factor` (≈ linear in
    /// output bytes; factor 1.0 ≈ 250 KB, so the paper's 250 MB DBLP is
    /// factor ≈ 1000).
    pub fn scaled(factor: f64) -> DblpConfig {
        let base = DblpConfig::default();
        DblpConfig {
            articles: ((base.articles as f64 * factor) as usize).max(1),
            inproceedings: ((base.inproceedings as f64 * factor) as usize).max(1),
            ..base
        }
    }
}

const FIRST_NAMES: &[&str] = &[
    "Ana",
    "Bob",
    "Carla",
    "Dan",
    "Eva",
    "Frank",
    "Georgiana",
    "Hans",
    "Ioana",
    "Josiane",
    "Katrin",
    "Liviu",
    "Melih",
    "Nadia",
    "Otto",
    "Petra",
];

const LAST_NAMES: &[&str] = &[
    "Koch",
    "Olteanu",
    "Scherzinger",
    "Demir",
    "Ifrim",
    "Moleda",
    "Parreira",
    "Fiebig",
    "Moerkotte",
    "Grust",
    "Weikum",
    "Neumann",
    "Schenkel",
    "Theobald",
];

const TITLE_WORDS: &[&str] = &[
    "Evaluating",
    "Queries",
    "on",
    "Structure",
    "with",
    "Access",
    "Support",
    "Relations",
    "Purely",
    "Relational",
    "Streams",
    "Composition",
    "XQuery",
    "Optimization",
    "Indexes",
    "Storage",
    "Algebra",
    "Cost",
    "Models",
    "Joins",
];

const JOURNALS: &[&str] = &[
    "SIGMOD Record",
    "VLDB Journal",
    "TODS",
    "Informatik Spektrum",
    "WebDB Notes",
];

const BOOKTITLES: &[&str] = &["SIGMOD", "VLDB", "ICDE", "XIME-P", "WebDB", "EDBT"];

/// Generates a DBLP-like document.
///
/// Structure (depth ≤ 3 below the root — shallow, like real DBLP):
///
/// ```text
/// <dblp>
///   <article> <author>…</author>+ <title>…</title> <journal>…</journal>
///             <volume>…</volume>? <year>…</year> <cite>…</cite>* </article>
///   <inproceedings> … <booktitle>…</booktitle> … </inproceedings>
/// </dblp>
/// ```
pub fn generate_dblp(config: &DblpConfig) -> String {
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Interleave kinds deterministically so label positions spread through
    // the document.
    let total = config.articles + config.inproceedings;
    let mut out = String::with_capacity(total * 360 + 16);
    out.push_str("<dblp>");
    let mut articles_left = config.articles;
    let mut inproc_left = config.inproceedings;
    for i in 0..total {
        let is_article = if articles_left == 0 {
            false
        } else if inproc_left == 0 {
            true
        } else {
            rng.gen_bool(config.articles as f64 / total as f64)
        };
        if is_article {
            articles_left -= 1;
            out.push_str("<article>");
            push_publication_body(&mut out, &mut rng, config, i, true);
            out.push_str("</article>");
        } else {
            inproc_left -= 1;
            out.push_str("<inproceedings>");
            push_publication_body(&mut out, &mut rng, config, i, false);
            out.push_str("</inproceedings>");
        }
    }
    out.push_str("</dblp>");
    out
}

fn push_publication_body(
    out: &mut String,
    rng: &mut StdRng,
    config: &DblpConfig,
    index: usize,
    is_article: bool,
) {
    let n_authors = rng.gen_range(config.authors.0..=config.authors.1);
    for _ in 0..n_authors {
        let name = format!(
            "{} {}",
            FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
            LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())]
        );
        push_tag(out, "author", &name);
    }
    let title_len = rng.gen_range(3..8);
    let title: Vec<&str> = (0..title_len)
        .map(|_| TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())])
        .collect();
    push_tag(out, "title", &format!("{} #{index}", title.join(" ")));
    if is_article {
        push_tag(out, "journal", JOURNALS[rng.gen_range(0..JOURNALS.len())]);
        if rng.gen_bool(config.volume_probability) {
            push_tag(out, "volume", &rng.gen_range(1..60).to_string());
        }
    } else {
        push_tag(
            out,
            "booktitle",
            BOOKTITLES[rng.gen_range(0..BOOKTITLES.len())],
        );
    }
    push_tag(out, "year", &rng.gen_range(1990..2006).to_string());
    if rng.gen_bool(config.cite_probability) {
        for _ in 0..rng.gen_range(1..4) {
            push_tag(out, "cite", &format!("ref-{}", rng.gen_range(0..1000)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let config = DblpConfig::default();
        assert_eq!(generate_dblp(&config), generate_dblp(&config));
        let other = DblpConfig {
            seed: 7,
            ..DblpConfig::default()
        };
        assert_ne!(generate_dblp(&config), generate_dblp(&other));
    }

    #[test]
    fn well_formed_and_shallow() {
        let xml = generate_dblp(&DblpConfig {
            articles: 50,
            inproceedings: 30,
            ..Default::default()
        });
        let doc = xmldb_xml::parse(&xml).expect("generated DBLP must parse");
        let root = doc.root_element().unwrap();
        assert_eq!(doc.name(root), "dblp");
        assert_eq!(doc.children(root).len(), 80);
        // Depth: root(1) → publication(2) → field(3) → text(4).
        let max_depth = doc
            .descendants(doc.root())
            .map(|n| doc.depth(n))
            .max()
            .unwrap();
        assert_eq!(max_depth, 4);
    }

    #[test]
    fn label_skew_holds() {
        let xml = generate_dblp(&DblpConfig::default());
        let authors = xml.matches("<author>").count();
        let volumes = xml.matches("<volume>").count();
        let articles = xml.matches("<article>").count();
        assert_eq!(articles, 400);
        assert!(
            authors > 5 * volumes,
            "authors ({authors}) must dwarf volumes ({volumes})"
        );
        assert!(volumes > 0, "some articles must have volumes");
    }

    #[test]
    fn scaling_is_roughly_linear() {
        let small = generate_dblp(&DblpConfig::scaled(0.1)).len();
        let large = generate_dblp(&DblpConfig::scaled(1.0)).len();
        let ratio = large as f64 / small as f64;
        assert!((6.0..14.0).contains(&ratio), "ratio {ratio}");
    }
}
