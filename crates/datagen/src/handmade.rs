//! The fixed hand-made documents.

/// The Figure 2 document of the paper, byte-exact.
pub fn figure2_document() -> &'static str {
    "<journal><authors><name>Ana</name><name>Bob</name></authors><title>DB</title></journal>"
}

/// A richer classroom document ("a small hand-made document of several
/// kilobytes"): a tiny bibliography mixing every structural feature the
/// correctness tests need — empty elements, mixed content, repeated
/// labels at different depths, rare labels, and text at several levels.
pub fn classroom_document() -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("<library>");
    out.push_str(
        "<journal><authors><name>Ana</name><name>Bob</name></authors><title>DB</title></journal>",
    );
    out.push_str(
        "<journal><authors><name>Carla</name></authors><title>Systems</title>\
         <volume>42</volume></journal>",
    );
    out.push_str("<journal><title>Empty Authors</title><authors/></journal>");
    for i in 0..12 {
        out.push_str(&format!(
            "<article><author>Author {i}</author><title>Paper {i}</title>{}{}</article>",
            if i % 4 == 0 {
                format!("<volume>{}</volume>", i + 1)
            } else {
                String::new()
            },
            if i % 3 == 0 {
                "<note>contains <emph>nested</emph> markup</note>".to_string()
            } else {
                String::new()
            },
        ));
    }
    out.push_str("<misc><deep><deeper><deepest>bottom</deepest></deeper></deep></misc>");
    out.push_str("</library>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_is_the_paper_document() {
        let doc = xmldb_xml::parse(figure2_document()).unwrap();
        let labeling = xmldb_xml::Labeling::compute(&doc);
        assert_eq!(
            labeling.out_of(doc.root()),
            18,
            "Figure 2 has tag counts 1..18"
        );
    }

    #[test]
    fn classroom_document_parses_and_is_kilobytes() {
        let xml = classroom_document();
        assert!(xml.len() > 1000, "several kilobytes, got {}", xml.len());
        let doc = xmldb_xml::parse(&xml).unwrap();
        assert_eq!(doc.name(doc.root_element().unwrap()), "library");
        // Mixed content survived.
        assert!(xml.contains("<emph>nested</emph>"));
    }
}
