#![warn(missing_docs)]

//! Synthetic test documents for the saardb testbed and benchmarks.
//!
//! The course evaluated on DBLP (250 MB shallow data, plus a 16 MB
//! excerpt), TREEBANK (80 MB deeply nested data), and "a small hand-made
//! document of several kilobytes". Those exact files are not
//! redistributable inputs here, so this crate generates deterministic
//! substitutes with the same *shape* characteristics (see DESIGN.md §3):
//!
//! * [`dblp`] — shallow (depth ≈ 3–4), wide bibliographic data with heavy
//!   label skew: many `author`s, one `title` per publication, rare
//!   `volume`s. The skew is what makes Example 6-style optimization
//!   decisions interesting.
//! * [`treebank`] — deeply nested parse trees (configurable depth in the
//!   dozens), exercising descendant-axis interval scans and the
//!   average-depth statistic.
//! * [`handmade`] — the paper's Figure 2 document and a slightly richer
//!   classroom document, both fixed.
//!
//! All generators are seeded ([`rand::rngs::StdRng`]) — the same
//! configuration always produces byte-identical documents, so benchmark
//! runs are reproducible.

pub mod dblp;
pub mod handmade;
pub mod treebank;

pub use dblp::{generate_dblp, DblpConfig};
pub use handmade::{classroom_document, figure2_document};
pub use treebank::{generate_treebank, TreebankConfig};

/// Approximate size (bytes) helper used by scale-factor constructors.
pub(crate) fn push_tag(out: &mut String, tag: &str, content: &str) {
    out.push('<');
    out.push_str(tag);
    out.push('>');
    out.push_str(content);
    out.push_str("</");
    out.push_str(tag);
    out.push('>');
}
