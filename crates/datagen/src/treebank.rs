//! TREEBANK-like deeply nested parse trees.

use crate::push_tag;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the TREEBANK-like generator.
#[derive(Debug, Clone)]
pub struct TreebankConfig {
    /// Number of top-level sentences.
    pub sentences: usize,
    /// Maximum nesting depth of phrase structure below a sentence.
    pub max_depth: usize,
    /// Maximum children of an internal phrase node.
    pub branching: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TreebankConfig {
    fn default() -> Self {
        TreebankConfig {
            sentences: 120,
            max_depth: 24,
            branching: 3,
            seed: 0x7EE,
        }
    }
}

impl TreebankConfig {
    /// Scales the sentence count (≈ linear in bytes).
    pub fn scaled(factor: f64) -> TreebankConfig {
        let base = TreebankConfig::default();
        TreebankConfig {
            sentences: ((base.sentences as f64 * factor) as usize).max(1),
            ..base
        }
    }
}

/// Phrase labels, roughly Penn-Treebank-flavoured.
const PHRASES: &[&str] = &["NP", "VP", "PP", "SBAR", "ADJP", "ADVP", "WHNP"];
/// Part-of-speech labels at the frontier.
const POS: &[&str] = &["NN", "VB", "JJ", "DT", "IN", "PRP", "RB"];
const WORDS: &[&str] = &[
    "students",
    "built",
    "native",
    "XML",
    "databases",
    "during",
    "the",
    "summer",
    "course",
    "query",
    "engines",
    "optimizers",
    "indexes",
    "storage",
    "sorting",
    "joins",
];

/// Generates a TREEBANK-like document:
///
/// ```text
/// <treebank> <S> nested phrase structure, depth up to max_depth </S>* </treebank>
/// ```
pub fn generate_treebank(config: &TreebankConfig) -> String {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = String::with_capacity(config.sentences * 600 + 32);
    out.push_str("<treebank>");
    for _ in 0..config.sentences {
        out.push_str("<S>");
        // Force one deep spine per sentence plus bushy sides.
        let depth = rng.gen_range(config.max_depth / 2..=config.max_depth.max(1));
        phrase(&mut out, &mut rng, depth, config.branching);
        out.push_str("</S>");
    }
    out.push_str("</treebank>");
    out
}

fn phrase(out: &mut String, rng: &mut StdRng, depth: usize, branching: usize) {
    if depth == 0 {
        let pos = POS[rng.gen_range(0..POS.len())];
        let word = WORDS[rng.gen_range(0..WORDS.len())];
        push_tag(out, pos, word);
        return;
    }
    let label = PHRASES[rng.gen_range(0..PHRASES.len())];
    out.push('<');
    out.push_str(label);
    out.push('>');
    let kids = rng.gen_range(1..=branching.max(1));
    // One child continues the deep spine; the rest are shallow.
    let spine = rng.gen_range(0..kids);
    for k in 0..kids {
        let child_depth = if k == spine {
            depth - 1
        } else {
            rng.gen_range(0..2.min(depth))
        };
        phrase(out, rng, child_depth, branching);
    }
    out.push_str("</");
    out.push_str(label);
    out.push('>');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let c = TreebankConfig::default();
        assert_eq!(generate_treebank(&c), generate_treebank(&c));
    }

    #[test]
    fn well_formed_and_deep() {
        let xml = generate_treebank(&TreebankConfig {
            sentences: 20,
            ..Default::default()
        });
        let doc = xmldb_xml::parse_with(&xml, &xmldb_xml::ParseOptions::preserving())
            .expect("generated treebank must parse");
        let max_depth = doc
            .descendants(doc.root())
            .map(|n| doc.depth(n))
            .max()
            .unwrap();
        assert!(max_depth >= 14, "treebank should be deep, got {max_depth}");
    }

    #[test]
    fn contains_linguistic_labels() {
        let xml = generate_treebank(&TreebankConfig::default());
        assert!(xml.contains("<NP>"));
        assert!(xml.contains("<VP>"));
        assert!(xml.contains("<NN>"));
        assert_eq!(xml.matches("<S>").count(), 120);
    }
}
