#![warn(missing_docs)]

//! A process-wide work-stealing worker pool for intra-query parallelism.
//!
//! One pool, shared by every parallel query (and, later, the server): each
//! worker owns a deque; submissions are distributed round-robin and an idle
//! worker steals from its siblings before parking. Tasks are *leaf* units
//! of work (morsels) — they never submit and wait on other tasks, so the
//! pool cannot deadlock, and the submitting thread always *helps* (runs
//! queued tasks inline) while it waits, so progress is guaranteed even on a
//! single-worker pool.
//!
//! Borrowed data: [`WorkerPool::scoped`] runs tasks that borrow from the
//! caller's stack. The scope's drop guard blocks (helping) until every
//! submitted task has completed, which is what makes the internal lifetime
//! erasure sound — a task can never observe its borrows dangling.
//!
//! Pool workers install **no** ambient state: the task closure itself must
//! install the query's governor/transaction scopes on entry and drop them
//! on exit (see the scope-install contract in DESIGN.md).

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};
use xmldb_obs::{Counter, Gauge, Histogram, Registry};

/// The delivery phase of a task: runs *after* the pool's `queued`/`active`
/// gauges account the task as finished, and is what publishes the result
/// (and wakes any waiter). Sequencing the gauge decrement before delivery
/// means an observer woken by a result can never read a stale non-zero
/// gauge for that task — quiescence checks after a drained scope are exact,
/// not wait-out-the-lag loops.
type Deliver = Box<dyn FnOnce() + Send + 'static>;

/// A unit of pool work: the work phase (the task body) returns the delivery
/// closure the pool invokes once the task no longer counts as active.
type Task = Box<dyn FnOnce() -> Deliver + Send + 'static>;

/// Metric instruments resolved once per bound registry.
struct Instruments {
    registry_ptr: usize,
    tasks_total: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    /// Per-worker busy time, plus one slot for helper (coordinator) runs.
    busy_us: Vec<Arc<Histogram>>,
}

struct Shared {
    queues: Vec<Mutex<VecDeque<Task>>>,
    sleep: Mutex<()>,
    cv: Condvar,
    next: AtomicUsize,
    queued: AtomicUsize,
    active: AtomicUsize,
    tasks_total: AtomicU64,
    shutdown: AtomicBool,
    instruments: Mutex<Option<Arc<Instruments>>>,
}

impl Shared {
    /// Takes one task: worker `id`'s own queue first, then steal from
    /// siblings (front-of-queue steals keep global submission order roughly
    /// intact, which feeds the ordered gather earlier results first).
    fn take(&self, id: usize) -> Option<Task> {
        let n = self.queues.len();
        for i in 0..n {
            let q = (id + i) % n;
            if let Some(task) = self.queues[q].lock().expect("pool queue").pop_front() {
                // Claim the task as active *before* releasing its queued
                // count, so `queued + active` never under-counts a task in
                // flight between the two gauges.
                self.active.fetch_add(1, Ordering::SeqCst);
                self.queued.fetch_sub(1, Ordering::SeqCst);
                self.gauge_depth();
                return Some(task);
            }
        }
        None
    }

    fn gauge_depth(&self) {
        if let Some(ins) = self.instruments.lock().expect("pool instruments").as_ref() {
            ins.queue_depth
                .set(self.queued.load(Ordering::SeqCst) as i64);
        }
    }

    /// Runs one task (already counted active by [`Shared::take`]),
    /// recording busy time under the `slot` histogram (worker index, or the
    /// last slot for helper runs). The `active` gauge drops *before* the
    /// task's delivery closure publishes its result, so any observer the
    /// delivery wakes sees the gauges already settled.
    fn run(&self, task: Task, slot: usize) {
        let started = Instant::now();
        // Tasks wrap their own catch_unwind around the user closure; this
        // one is a safety net so a stray panic can never kill a pool worker.
        let deliver = catch_unwind(AssertUnwindSafe(task));
        let elapsed_us = started.elapsed().as_micros() as u64;
        self.tasks_total.fetch_add(1, Ordering::Relaxed);
        self.active.fetch_sub(1, Ordering::SeqCst);
        if let Ok(deliver) = deliver {
            let _ = catch_unwind(AssertUnwindSafe(deliver));
        }
        if let Some(ins) = self
            .instruments
            .lock()
            .expect("pool instruments")
            .as_ref()
            .map(Arc::clone)
        {
            ins.tasks_total.inc();
            ins.busy_us[slot.min(ins.busy_us.len() - 1)].record(elapsed_us);
        }
    }

    fn worker_loop(self: &Arc<Shared>, id: usize) {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            match self.take(id) {
                Some(task) => self.run(task, id),
                None => {
                    let guard = self.sleep.lock().expect("pool sleep");
                    if self.queued.load(Ordering::SeqCst) == 0
                        && !self.shutdown.load(Ordering::SeqCst)
                    {
                        // Timed wait: a bounded backstop against any missed
                        // wakeup; normal wakeups come from spawn/shutdown.
                        let _ = self
                            .cv
                            .wait_timeout(guard, Duration::from_millis(50))
                            .expect("pool sleep");
                    }
                }
            }
        }
    }
}

/// A work-stealing pool of OS threads. See the crate docs for the model.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    workers: usize,
}

impl WorkerPool {
    /// Spawns a pool with `workers` threads (min 1).
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep: Mutex::new(()),
            cv: Condvar::new(),
            next: AtomicUsize::new(0),
            queued: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            tasks_total: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            instruments: Mutex::new(None),
        });
        let handles = (0..workers)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("saardb-pool-{id}"))
                    .spawn(move || shared.worker_loop(id))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles: Mutex::new(handles),
            workers,
        }
    }

    /// The process-wide pool, sized to the available cores (raised to
    /// `SAARDB_PARALLELISM` when that is set higher, so an explicit
    /// parallelism request gets real threads even on small machines).
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
            let requested = std::env::var("SAARDB_PARALLELISM")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(0);
            WorkerPool::new(cores.max(requested))
        })
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Tasks currently queued (not yet started).
    pub fn queued(&self) -> usize {
        self.shared.queued.load(Ordering::SeqCst)
    }

    /// Tasks currently executing on workers.
    pub fn active(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Total tasks completed over the pool's lifetime.
    pub fn tasks_completed(&self) -> u64 {
        self.shared.tasks_total.load(Ordering::Relaxed)
    }

    /// Blocks until the pool is quiescent — nothing queued, nothing
    /// running — or `timeout` elapses; returns whether quiescence was
    /// observed. The gauges settle *before* a task's result is delivered
    /// (take claims `active` before releasing `queued`; run drops `active`
    /// before the delivery closure publishes the result), so an observer
    /// that has received every result it waited for — e.g. a caller whose
    /// scoped dispatch just drained — reads `queued == 0 && active == 0`
    /// exactly, with no lag window. The timeout only matters when waiting
    /// out *other* submitters' in-flight work.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.queued() != 0 || self.active() != 0 {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::yield_now();
        }
        true
    }

    /// Binds the pool's metrics (`saardb_pool_*`) to `registry`. Idempotent
    /// for the same registry; a different registry replaces the binding
    /// (last env wins — the embedded/server process has one registry).
    pub fn bind_registry(&self, registry: &Arc<Registry>) {
        let ptr = Arc::as_ptr(registry) as usize;
        let mut slot = self.shared.instruments.lock().expect("pool instruments");
        if slot.as_ref().is_some_and(|i| i.registry_ptr == ptr) {
            return;
        }
        registry.help("saardb_pool_tasks_total", "Pool tasks (morsels) executed");
        registry.help("saardb_pool_queue_depth", "Tasks queued, not yet running");
        registry.help(
            "saardb_pool_worker_busy_us",
            "Per-task busy time per worker (microseconds)",
        );
        let mut busy_us: Vec<Arc<Histogram>> = (0..self.workers)
            .map(|id| {
                registry.histogram("saardb_pool_worker_busy_us", &[("worker", &id.to_string())])
            })
            .collect();
        busy_us.push(registry.histogram("saardb_pool_worker_busy_us", &[("worker", "help")]));
        *slot = Some(Arc::new(Instruments {
            registry_ptr: ptr,
            tasks_total: registry.counter("saardb_pool_tasks_total", &[]),
            queue_depth: registry.gauge("saardb_pool_queue_depth", &[]),
            busy_us,
        }));
    }

    fn spawn_raw(&self, task: Task) {
        let q = self.shared.next.fetch_add(1, Ordering::Relaxed) % self.workers;
        self.shared.queues[q]
            .lock()
            .expect("pool queue")
            .push_back(task);
        self.shared.queued.fetch_add(1, Ordering::SeqCst);
        self.shared.gauge_depth();
        let _guard = self.shared.sleep.lock().expect("pool sleep");
        self.shared.cv.notify_all();
    }

    /// Runs one queued task inline on the calling thread, if any is queued.
    /// This is how submitters help while waiting (and how a scope drains
    /// even if every worker is busy elsewhere).
    pub fn try_run_one(&self) -> bool {
        match self.shared.take(0) {
            Some(task) => {
                // Helper runs record under the extra "help" histogram slot.
                self.shared.run(task, self.workers);
                true
            }
            None => false,
        }
    }

    /// Runs `f` with a [`Scope`] that can submit borrowing tasks to the
    /// pool and receive their results in submission order. All submitted
    /// tasks are guaranteed complete when `scoped` returns — including on
    /// early return or unwind.
    pub fn scoped<'env, T, R, F>(&self, f: F) -> R
    where
        T: Send + 'env,
        F: FnOnce(&mut Scope<'_, 'env, T>) -> R,
    {
        let mut scope = Scope {
            pool: self,
            state: Arc::new(ScopeState {
                slots: Mutex::new(HashMap::new()),
                cv: Condvar::new(),
                outstanding: AtomicUsize::new(0),
            }),
            submitted: 0,
            consumed: 0,
            _env: std::marker::PhantomData,
        };
        // Scope's Drop drains outstanding tasks even if `f` unwinds.
        f(&mut scope)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = self.shared.sleep.lock().expect("pool sleep");
            self.shared.cv.notify_all();
        }
        for handle in self.handles.lock().expect("pool handles").drain(..) {
            let _ = handle.join();
        }
        // Any task still queued (none, if every scope drained correctly)
        // runs inline so no scope can hang on a dead pool.
        while self.try_run_one() {}
    }
}

struct ScopeState<T> {
    /// Completed task results by submission index. Panics travel as `Err`.
    slots: Mutex<HashMap<usize, std::thread::Result<T>>>,
    cv: Condvar,
    outstanding: AtomicUsize,
}

/// A borrowing task scope over a [`WorkerPool`]; see [`WorkerPool::scoped`].
///
/// Results come back via [`Scope::recv_next`] strictly in submission order
/// — the order-preserving gather. The caller controls the dispatch window
/// by interleaving `submit` and `recv_next` (and can throttle on any
/// external signal, e.g. a memory budget).
pub struct Scope<'pool, 'env, T: Send> {
    pool: &'pool WorkerPool,
    state: Arc<ScopeState<T>>,
    submitted: usize,
    consumed: usize,
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'pool, 'env, T: Send + 'env> Scope<'pool, 'env, T> {
    /// Submits a task. It may run on any pool worker (or inline on this
    /// thread via helping) and may borrow anything that outlives the
    /// enclosing [`WorkerPool::scoped`] call.
    pub fn submit(&mut self, task: impl FnOnce() -> T + Send + 'env) {
        let idx = self.submitted;
        self.submitted += 1;
        let state = Arc::clone(&self.state);
        state.outstanding.fetch_add(1, Ordering::SeqCst);
        let job = move || -> Deliver {
            let result = catch_unwind(AssertUnwindSafe(task));
            // The work phase ends here; the pool decrements its `active`
            // gauge, then invokes this delivery closure — publication (and
            // the waiter wakeup) strictly follows the gauge settling.
            let deliver: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let mut slots = state.slots.lock().expect("scope slots");
                slots.insert(idx, result);
                state.outstanding.fetch_sub(1, Ordering::SeqCst);
                state.cv.notify_all();
            });
            // SAFETY: same erasure argument as the outer task below — the
            // pool runs the delivery immediately after the work phase, and
            // the scope cannot end (releasing 'env) until `outstanding`
            // reaches zero, which only this delivery does.
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Deliver>(deliver) }
        };
        let boxed: Box<dyn FnOnce() -> Deliver + Send + 'env> = Box::new(job);
        // SAFETY: the task is erased to 'static to sit in the pool queue,
        // but every borrow it captures outlives the scope: recv_next/Drop
        // block (helping) until `outstanding` is zero before the scope —
        // and with it lifetime 'env — can end.
        let boxed: Task = unsafe { std::mem::transmute(boxed) };
        self.pool.spawn_raw(boxed);
    }

    /// Number of tasks submitted so far.
    pub fn submitted(&self) -> usize {
        self.submitted
    }

    /// Number of results already received.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// Results not yet received (dispatched or completed-and-buffered).
    pub fn in_flight(&self) -> usize {
        self.submitted - self.consumed
    }

    /// Blocks until the next result *in submission order* is available and
    /// returns it; `None` when every submitted task has been received.
    /// While waiting, runs other queued pool tasks inline (helping). If the
    /// task panicked, the panic resumes on this thread.
    pub fn recv_next(&mut self) -> Option<T> {
        if self.consumed == self.submitted {
            return None;
        }
        let want = self.consumed;
        loop {
            {
                let mut slots = self.state.slots.lock().expect("scope slots");
                if let Some(result) = slots.remove(&want) {
                    drop(slots);
                    self.consumed += 1;
                    match result {
                        Ok(value) => return Some(value),
                        Err(payload) => resume_unwind(payload),
                    }
                }
            }
            if !self.pool.try_run_one() {
                let slots = self.state.slots.lock().expect("scope slots");
                if !slots.contains_key(&want) {
                    let _ = self
                        .state
                        .cv
                        .wait_timeout(slots, Duration::from_millis(5))
                        .expect("scope wait");
                }
            }
        }
    }
}

impl<T: Send> Drop for Scope<'_, '_, T> {
    fn drop(&mut self) {
        // Drain every outstanding task (helping) before borrows can end.
        // Unreceived results — and any panic payloads in them — are
        // discarded; an early exit already has its error in hand.
        while self.state.outstanding.load(Ordering::SeqCst) > 0 {
            if !self.pool.try_run_one() {
                let slots = self.state.slots.lock().expect("scope slots");
                if self.state.outstanding.load(Ordering::SeqCst) > 0 {
                    let _ = self
                        .state
                        .cv
                        .wait_timeout(slots, Duration::from_millis(5))
                        .expect("scope wait");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn ordered_gather_preserves_submission_order() {
        let pool = WorkerPool::new(4);
        let input: Vec<u32> = (0..100).collect();
        let out: Vec<u32> = pool.scoped(|scope| {
            for &v in &input {
                scope.submit(move || {
                    // Uneven work so completion order scrambles.
                    if v % 7 == 0 {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    v * 2
                });
            }
            let mut got = Vec::new();
            while let Some(v) = scope.recv_next() {
                got.push(v);
            }
            got
        });
        assert_eq!(out, (0..100).map(|v| v * 2).collect::<Vec<_>>());
        assert!(pool.quiesce(Duration::from_secs(5)));
    }

    #[test]
    fn borrowed_data_is_safe() {
        let pool = WorkerPool::new(2);
        let data: Vec<u64> = (0..1000).collect();
        let total: u64 = pool.scoped(|scope| {
            for chunk in data.chunks(100) {
                scope.submit(move || chunk.iter().sum::<u64>());
            }
            let mut sum = 0;
            while let Some(s) = scope.recv_next() {
                sum += s;
            }
            sum
        });
        assert_eq!(total, data.iter().sum::<u64>());
    }

    #[test]
    fn scope_drop_drains_unconsumed_tasks() {
        let pool = WorkerPool::new(2);
        let ran = Arc::new(AtomicU32::new(0));
        pool.scoped(|scope: &mut Scope<'_, '_, ()>| {
            for _ in 0..50 {
                let ran = Arc::clone(&ran);
                scope.submit(move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Early exit without receiving anything.
        });
        assert_eq!(ran.load(Ordering::SeqCst), 50, "drop guard ran all tasks");
        assert_eq!(pool.queued(), 0);
    }

    #[test]
    fn task_panic_resumes_on_receiver() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|scope: &mut Scope<'_, '_, u32>| {
                scope.submit(|| 1);
                scope.submit(|| panic!("boom in task"));
                scope.submit(|| 3);
                let mut got = Vec::new();
                while let Some(v) = scope.recv_next() {
                    got.push(v);
                }
                got
            })
        }));
        assert!(result.is_err(), "panic must surface to the receiver");
        // Pool workers survive the panic.
        assert_eq!(
            pool.scoped(|s| {
                s.submit(|| 7u32);
                s.recv_next()
            }),
            Some(7)
        );
    }

    #[test]
    fn helping_makes_progress_with_busy_workers() {
        // A 1-worker pool whose worker is blocked: the scope must finish
        // via coordinator helping alone.
        let pool = WorkerPool::new(1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g2 = Arc::clone(&gate);
        pool.scoped(|scope: &mut Scope<'_, '_, ()>| {
            scope.submit(move || {
                let (lock, cv) = &*g2;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            });
            // While the worker is (probably) parked on the gate, more tasks
            // queue and the scope drains them by helping.
            let done: Vec<u32> = {
                let mut inner: Vec<u32> = Vec::new();
                for i in 0..10u32 {
                    scope.submit(move || {
                        std::thread::sleep(Duration::from_micros(50));
                    });
                    inner.push(i);
                }
                inner
            };
            assert_eq!(done.len(), 10);
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        });
        assert_eq!(pool.queued(), 0);
    }

    #[test]
    fn drained_scope_observes_exact_quiescence() {
        // The regression this pins down: the `active` gauge used to be
        // decremented *after* a task delivered its result, so an observer
        // woken by the final result could read a stale non-zero gauge and
        // had to wait out the lag. Delivery now strictly follows the
        // decrement, so the instant the last result is in hand the gauges
        // read zero — no retry loop, single read, every round.
        let pool = WorkerPool::new(4);
        for round in 0..100 {
            pool.scoped(|scope: &mut Scope<'_, '_, u32>| {
                for i in 0..32 {
                    scope.submit(move || i);
                }
                while scope.recv_next().is_some() {}
            });
            assert_eq!((pool.queued(), pool.active()), (0, 0), "round {round}");
        }
    }

    #[test]
    fn metrics_flow_into_bound_registry() {
        let pool = WorkerPool::new(2);
        let registry = Arc::new(Registry::new());
        pool.bind_registry(&registry);
        pool.bind_registry(&registry); // idempotent
        pool.scoped(|scope: &mut Scope<'_, '_, u32>| {
            for i in 0..8 {
                scope.submit(move || i);
            }
            while scope.recv_next().is_some() {}
        });
        let tasks = registry
            .counter_values()
            .into_iter()
            .find(|(name, _)| name.starts_with("saardb_pool_tasks_total"))
            .map(|(_, v)| v)
            .unwrap_or(0);
        assert_eq!(tasks, 8);
        assert_eq!(pool.tasks_completed(), 8);
    }
}
