#![warn(missing_docs)]

//! Physical operators for saardb — the milestone 3/4 execution layer.
//!
//! Operators follow the volcano (open/next/close) model over rows of XASR
//! tuples. The operator set is exactly what the paper's milestones call
//! for:
//!
//! * scans: full clustered scan, and the milestone-4 *index-based
//!   selection* access paths ([`Probe`]) — children by parent index,
//!   descendants by clustered-interval or label-interval scan, label
//!   lookups, point lookups,
//! * selection ([`ops::FilterOp`]) with XQ's strict text-comparison
//!   semantics,
//! * order-aware projection with one-pass duplicate elimination
//!   ([`ops::ProjectOp`]) — approach (c) of the ordering discussion,
//! * joins: order-preserving nested-loops ([`ops::NestedLoopJoinOp`]),
//!   milestone-4 *index nested-loops* ([`ops::IndexNestedLoopJoinOp`]), and
//!   the non-order-preserving block-nested-loops join
//!   ([`ops::BlockNestedLoopJoinOp`]) for sort-based plans and ablations,
//! * external sort ([`ops::SortOp`]) — approach (a),
//! * materialization to scratch files ([`ops::MaterializeOp`]) — the paper
//!   allowed milestone-3 engines to "write to disk each intermediate
//!   result, and re-read it whenever necessary".
//!
//! Rows are vectors of full [`NodeTuple`]s (not just in-values): this *is*
//! the paper's vartuple-out extension — every bound variable carries its
//! `out` value (and the rest of its tuple), so descendant steps on outer
//! variables need no extra join.

pub mod analyze;
pub mod batch;
pub mod exec;
pub mod ops;
pub mod pred;
pub mod row;

pub use analyze::{AnalyzedOperator, OpMetrics, SharedOpMetrics};
pub use batch::{RowBatch, BATCH_ROWS};
pub use exec::{execute_all, Bindings, ExecContext, Operator};
pub use ops::Probe;
pub use pred::{PhysOperand, PhysPred};
pub use row::Row;

use xmldb_xasr::NodeTuple;

/// Errors during physical execution.
#[derive(Debug, Clone)]
pub enum Error {
    /// Underlying storage failure.
    Storage(xmldb_storage::StorageError),
    /// XASR decode failure.
    Xasr(String),
    /// XQ `=` evaluated on a node that is not a text node — the runtime
    /// error the paper allowed engines to raise.
    NonTextComparison {
        /// The offending node's kind.
        kind: xmldb_xasr::NodeType,
        /// Its label/content, for the error message.
        value: Option<String>,
    },
    /// A plan referenced a variable with no binding (plan construction bug).
    UnboundVariable(String),
}

impl From<xmldb_storage::StorageError> for Error {
    fn from(e: xmldb_storage::StorageError) -> Self {
        Error::Storage(e)
    }
}

impl From<xmldb_xasr::Error> for Error {
    fn from(e: xmldb_xasr::Error) -> Self {
        match e {
            xmldb_xasr::Error::Storage(s) => Error::Storage(s),
            other => Error::Xasr(other.to_string()),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Storage(e) => write!(f, "storage: {e}"),
            Error::Xasr(e) => write!(f, "xasr: {e}"),
            Error::NonTextComparison { kind, value } => write!(
                f,
                "comparison on non-text node ({kind} {})",
                value.as_deref().unwrap_or("NULL")
            ),
            Error::UnboundVariable(v) => write!(f, "unbound variable {v} in plan"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Convenience: the tuple a row column holds.
pub fn row_tuple(row: &Row, pos: usize) -> &NodeTuple {
    &row[pos]
}
