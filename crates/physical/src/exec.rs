//! Execution context and the volcano operator trait.

use crate::batch::{RowBatch, BATCH_ROWS};
use crate::row::Row;
use crate::Result;
use xmldb_storage::Governor;
use xmldb_xasr::{NodeTuple, XasrStore};
use xmldb_xq::Var;

/// The current variable environment: every enclosing relfor binding maps to
/// the *full tuple* of its node (the vartuple-out extension — `in`, `out`,
/// type and value all travel with the binding).
///
/// Stored as a flat `Vec` of pairs rather than a `HashMap`: typical queries
/// bind ≤ 4 variables, so a linear scan beats hashing on every predicate
/// lookup and — the part that showed up in EXPLAIN ANALYZE — cloning an
/// environment per relfor is a single small memcpy-style `Vec` clone
/// instead of a hash-table rebuild.
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    entries: Vec<(Var, NodeTuple)>,
}

impl Bindings {
    /// An empty environment.
    pub fn new() -> Bindings {
        Bindings::default()
    }

    /// The root environment: `$root` bound to the document root (in = 1).
    pub fn with_root(store: &XasrStore) -> crate::Result<Bindings> {
        let mut b = Bindings::new();
        b.bind(Var::root(), store.root()?);
        Ok(b)
    }

    /// Binds (or rebinds) a variable.
    pub fn bind(&mut self, var: Var, tuple: NodeTuple) {
        for (v, t) in &mut self.entries {
            if *v == var {
                *t = tuple;
                return;
            }
        }
        self.entries.push((var, tuple));
    }

    /// Looks up a binding.
    pub fn get(&self, var: &Var) -> Option<&NodeTuple> {
        self.entries
            .iter()
            .find_map(|(v, t)| if v == var { Some(t) } else { None })
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Everything an operator needs at runtime.
pub struct ExecContext<'a> {
    /// The shredded document.
    pub store: &'a XasrStore,
    /// External variable bindings (constant for one plan execution).
    pub bindings: &'a Bindings,
    /// The query's resource governor. Operators check it at row boundaries
    /// in `next` and account large buffers against its memory budget; the
    /// inert [`Governor::none`] handle makes every check free.
    pub governor: Governor,
}

impl<'a> ExecContext<'a> {
    /// Bundles a store and a binding environment. Picks up the calling
    /// thread's installed [`Governor`] (the engine entry points install
    /// one per query), so plan execution is governed without every caller
    /// threading a handle through.
    pub fn new(store: &'a XasrStore, bindings: &'a Bindings) -> ExecContext<'a> {
        ExecContext {
            store,
            bindings,
            governor: Governor::current(),
        }
    }

    /// [`ExecContext::new`] with an explicit governor (tests and callers
    /// that manage their own scope).
    pub fn with_governor(
        store: &'a XasrStore,
        bindings: &'a Bindings,
        governor: Governor,
    ) -> ExecContext<'a> {
        ExecContext {
            store,
            bindings,
            governor,
        }
    }
}

/// The volcano iterator interface. `open` may be called again after
/// exhaustion to re-execute the operator (nested-loops inners rely on
/// this).
pub trait Operator {
    /// Prepares (or resets) the operator.
    fn open(&mut self, ctx: &ExecContext<'_>) -> Result<()>;

    /// Produces the next row, or `None` when exhausted.
    fn next(&mut self, ctx: &ExecContext<'_>) -> Result<Option<Row>>;

    /// Releases resources.
    fn close(&mut self);

    /// Operator name for EXPLAIN output.
    fn name(&self) -> &'static str;

    /// Produces up to `max_rows` rows at once. An **empty** batch means the
    /// operator is exhausted; a non-empty batch may be shorter than
    /// `max_rows` (callers must not treat "short" as "done"). The default
    /// implementation is a compatibility shim looping [`Operator::next`],
    /// so untouched operators keep working under batch drivers; hot
    /// operators override it with vectorized implementations.
    fn next_batch(&mut self, ctx: &ExecContext<'_>, max_rows: usize) -> Result<RowBatch> {
        let mut batch = RowBatch::default();
        let mut first = true;
        while batch.len() < max_rows {
            match self.next(ctx)? {
                Some(row) => {
                    if first {
                        batch = RowBatch::with_capacity(row.len(), max_rows.min(BATCH_ROWS));
                        first = false;
                    }
                    batch.push_row_vec(row);
                }
                None => break,
            }
        }
        Ok(batch)
    }
}

/// Runs a plan to completion batch-wise, returning all rows (tests and the
/// exists check use this; result emission streams instead).
pub fn execute_all(plan: &mut dyn Operator, ctx: &ExecContext<'_>) -> Result<Vec<Row>> {
    plan.open(ctx)?;
    let mut rows = Vec::new();
    loop {
        let mut batch = plan.next_batch(ctx, BATCH_ROWS)?;
        if batch.is_empty() {
            break;
        }
        rows.append(&mut batch.take_rows());
    }
    plan.close();
    Ok(rows)
}
