//! Execution context and the volcano operator trait.

use crate::row::Row;
use crate::Result;
use std::collections::HashMap;
use xmldb_storage::Governor;
use xmldb_xasr::{NodeTuple, XasrStore};
use xmldb_xq::Var;

/// The current variable environment: every enclosing relfor binding maps to
/// the *full tuple* of its node (the vartuple-out extension — `in`, `out`,
/// type and value all travel with the binding).
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    map: HashMap<Var, NodeTuple>,
}

impl Bindings {
    /// An empty environment.
    pub fn new() -> Bindings {
        Bindings::default()
    }

    /// The root environment: `$root` bound to the document root (in = 1).
    pub fn with_root(store: &XasrStore) -> crate::Result<Bindings> {
        let mut b = Bindings::new();
        b.bind(Var::root(), store.root()?);
        Ok(b)
    }

    /// Binds (or rebinds) a variable.
    pub fn bind(&mut self, var: Var, tuple: NodeTuple) {
        self.map.insert(var, tuple);
    }

    /// Looks up a binding.
    pub fn get(&self, var: &Var) -> Option<&NodeTuple> {
        self.map.get(var)
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Everything an operator needs at runtime.
pub struct ExecContext<'a> {
    /// The shredded document.
    pub store: &'a XasrStore,
    /// External variable bindings (constant for one plan execution).
    pub bindings: &'a Bindings,
    /// The query's resource governor. Operators check it at row boundaries
    /// in `next` and account large buffers against its memory budget; the
    /// inert [`Governor::none`] handle makes every check free.
    pub governor: Governor,
}

impl<'a> ExecContext<'a> {
    /// Bundles a store and a binding environment. Picks up the calling
    /// thread's installed [`Governor`] (the engine entry points install
    /// one per query), so plan execution is governed without every caller
    /// threading a handle through.
    pub fn new(store: &'a XasrStore, bindings: &'a Bindings) -> ExecContext<'a> {
        ExecContext {
            store,
            bindings,
            governor: Governor::current(),
        }
    }

    /// [`ExecContext::new`] with an explicit governor (tests and callers
    /// that manage their own scope).
    pub fn with_governor(
        store: &'a XasrStore,
        bindings: &'a Bindings,
        governor: Governor,
    ) -> ExecContext<'a> {
        ExecContext {
            store,
            bindings,
            governor,
        }
    }
}

/// The volcano iterator interface. `open` may be called again after
/// exhaustion to re-execute the operator (nested-loops inners rely on
/// this).
pub trait Operator {
    /// Prepares (or resets) the operator.
    fn open(&mut self, ctx: &ExecContext<'_>) -> Result<()>;

    /// Produces the next row, or `None` when exhausted.
    fn next(&mut self, ctx: &ExecContext<'_>) -> Result<Option<Row>>;

    /// Releases resources.
    fn close(&mut self);

    /// Operator name for EXPLAIN output.
    fn name(&self) -> &'static str;
}

/// Runs a plan to completion, returning all rows (tests and the exists
/// check use this; result emission streams instead).
pub fn execute_all(plan: &mut dyn Operator, ctx: &ExecContext<'_>) -> Result<Vec<Row>> {
    plan.open(ctx)?;
    let mut rows = Vec::new();
    while let Some(row) = plan.next(ctx)? {
        rows.push(row);
    }
    plan.close();
    Ok(rows)
}
