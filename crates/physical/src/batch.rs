//! Batch-at-a-time row containers.
//!
//! A [`RowBatch`] holds up to a few thousand rows of a fixed width in one
//! flat allocation, row-major. The tuple-at-a-time path pays a `Vec`
//! allocation, a virtual call and a governor check *per row*; the batch
//! path pays each of those once per ~[`BATCH_ROWS`] rows, which is where
//! most of the vectorized speedup comes from.

use xmldb_xasr::NodeTuple;

/// Default number of rows an operator produces per `next_batch` call.
/// Large enough to amortize per-batch costs (B+-tree descents, virtual
/// dispatch, governor checks), small enough that a batch of widest rows
/// stays cache- and budget-friendly.
pub const BATCH_ROWS: usize = 1024;

/// A column-width-`width` batch of rows stored row-major in one flat
/// `Vec<NodeTuple>`. Width 0 is legal (singleton/nullary rows): the row
/// count is tracked separately from the tuple storage.
#[derive(Debug, Clone, Default)]
pub struct RowBatch {
    width: usize,
    rows: usize,
    tuples: Vec<NodeTuple>,
}

impl RowBatch {
    /// An empty batch of the given row width.
    pub fn new(width: usize) -> RowBatch {
        RowBatch {
            width,
            rows: 0,
            tuples: Vec::new(),
        }
    }

    /// An empty batch with storage pre-sized for `rows` rows.
    pub fn with_capacity(width: usize, rows: usize) -> RowBatch {
        RowBatch {
            width,
            rows: 0,
            tuples: Vec::with_capacity(width * rows),
        }
    }

    /// Wraps a vector of tuples as a width-1 batch without copying (the
    /// leaf-scan fast path).
    pub fn from_tuples(tuples: Vec<NodeTuple>) -> RowBatch {
        RowBatch {
            width: 1,
            rows: tuples.len(),
            tuples,
        }
    }

    /// Columns per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Drops all rows, keeping the allocation.
    pub fn clear(&mut self) {
        self.rows = 0;
        self.tuples.clear();
    }

    /// Appends a row given as a slice (clones the tuples).
    pub fn push_row(&mut self, row: &[NodeTuple]) {
        debug_assert_eq!(row.len(), self.width);
        self.tuples.extend_from_slice(row);
        self.rows += 1;
    }

    /// Appends a row by value (moves the tuples; the common shim path).
    pub fn push_row_vec(&mut self, row: Vec<NodeTuple>) {
        debug_assert_eq!(row.len(), self.width);
        self.tuples.extend(row);
        self.rows += 1;
    }

    /// Appends a single-column row (the leaf-scan fast path).
    pub fn push_tuple(&mut self, tuple: NodeTuple) {
        debug_assert_eq!(self.width, 1);
        self.tuples.push(tuple);
        self.rows += 1;
    }

    /// Appends a row from an iterator of exactly `width` tuples, without an
    /// intermediate `Vec` (the projection fast path).
    pub fn push_row_iter(&mut self, row: impl Iterator<Item = NodeTuple>) {
        let before = self.tuples.len();
        self.tuples.extend(row);
        debug_assert_eq!(self.tuples.len() - before, self.width);
        self.rows += 1;
    }

    /// Appends a row formed by a prefix slice plus one joined tuple,
    /// without building an intermediate `Vec` (the join fast path).
    pub fn push_joined(&mut self, left: &[NodeTuple], right: NodeTuple) {
        debug_assert_eq!(left.len() + 1, self.width);
        self.tuples.extend_from_slice(left);
        self.tuples.push(right);
        self.rows += 1;
    }

    /// Row `i` as a tuple slice.
    pub fn row(&self, i: usize) -> &[NodeTuple] {
        debug_assert!(i < self.rows);
        if self.width == 0 {
            &[]
        } else {
            &self.tuples[i * self.width..(i + 1) * self.width]
        }
    }

    /// Iterates rows as tuple slices. Width-0 rows yield empty slices.
    pub fn iter(&self) -> impl Iterator<Item = &[NodeTuple]> + '_ {
        (0..self.rows).map(move |i| self.row(i))
    }

    /// Keeps only rows for which `keep` returns true, in place, preserving
    /// order. `keep` may fail (strict text comparisons raise); the first
    /// error aborts and leaves the batch in an unspecified but valid state.
    pub fn retain_rows<E>(
        &mut self,
        mut keep: impl FnMut(&[NodeTuple]) -> std::result::Result<bool, E>,
    ) -> std::result::Result<(), E> {
        if self.width == 0 {
            // Nullary rows: count survivors.
            let mut kept = 0;
            for _ in 0..self.rows {
                if keep(&[])? {
                    kept += 1;
                }
            }
            self.rows = kept;
            return Ok(());
        }
        let w = self.width;
        let mut write = 0; // next row slot to fill
        for read in 0..self.rows {
            let row = &self.tuples[read * w..(read + 1) * w];
            if keep(row)? {
                if write != read {
                    for c in 0..w {
                        self.tuples.swap(write * w + c, read * w + c);
                    }
                }
                write += 1;
            }
        }
        self.tuples.truncate(write * w);
        self.rows = write;
        Ok(())
    }

    /// Moves all rows out as owned `Vec` rows (compatibility with the
    /// tuple-at-a-time API).
    pub fn take_rows(&mut self) -> Vec<Vec<NodeTuple>> {
        let w = self.width;
        let rows = self.rows;
        self.rows = 0;
        if w == 0 {
            return (0..rows).map(|_| Vec::new()).collect();
        }
        let mut out = Vec::with_capacity(rows);
        let mut it = std::mem::take(&mut self.tuples).into_iter();
        for _ in 0..rows {
            out.push(it.by_ref().take(w).collect());
        }
        out
    }

    /// Approximate heap footprint in bytes, for governor accounting.
    pub fn bytes(&self) -> u64 {
        let mut total = (self.tuples.capacity() * std::mem::size_of::<NodeTuple>()) as u64;
        for t in &self.tuples {
            if let Some(v) = &t.value {
                total += v.capacity() as u64;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldb_xasr::NodeType;

    fn tuple(in_: u64) -> NodeTuple {
        NodeTuple {
            in_,
            out: in_ + 1,
            parent_in: 0,
            kind: NodeType::Element,
            value: Some(format!("e{in_}")),
        }
    }

    #[test]
    fn push_and_iterate() {
        let mut b = RowBatch::new(2);
        b.push_row(&[tuple(1), tuple(3)]);
        b.push_joined(&[tuple(5)], tuple(7));
        assert_eq!(b.len(), 2);
        assert_eq!(b.row(0)[1].in_, 3);
        assert_eq!(b.row(1), &[tuple(5), tuple(7)][..]);
        let ins: Vec<u64> = b.iter().map(|r| r[0].in_).collect();
        assert_eq!(ins, vec![1, 5]);
    }

    #[test]
    fn retain_preserves_order() {
        let mut b = RowBatch::new(1);
        for i in 1..=9 {
            b.push_tuple(tuple(i));
        }
        b.retain_rows(|r| Ok::<bool, ()>(r[0].in_ % 2 == 0))
            .unwrap();
        let ins: Vec<u64> = b.iter().map(|r| r[0].in_).collect();
        assert_eq!(ins, vec![2, 4, 6, 8]);
    }

    #[test]
    fn width_zero_rows() {
        let mut b = RowBatch::new(0);
        b.push_row(&[]);
        b.push_row(&[]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.row(1), &[] as &[NodeTuple]);
        b.retain_rows(|_| Ok::<bool, ()>(true)).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b.take_rows(), vec![Vec::new(), Vec::new()]);
    }

    #[test]
    fn take_rows_roundtrip() {
        let mut b = RowBatch::new(2);
        b.push_row(&[tuple(1), tuple(2)]);
        b.push_row(&[tuple(3), tuple(4)]);
        assert_eq!(
            b.take_rows(),
            vec![vec![tuple(1), tuple(2)], vec![tuple(3), tuple(4)]]
        );
        assert!(b.is_empty());
    }
}
