//! Rows and their spill codec.

use crate::{Error, Result};
use xmldb_storage::codec;
use xmldb_xasr::NodeTuple;

/// A row: one XASR tuple per joined relation, in plan column order.
pub type Row = Vec<NodeTuple>;

/// Serializes a row for spilling (materialization, sort runs).
pub fn encode_row(row: &Row) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + row.len() * 32);
    codec::put_u64(&mut out, row.len() as u64);
    for tuple in row {
        codec::put_bytes(&mut out, &tuple.encode());
    }
    out
}

/// Inverse of [`encode_row`].
pub fn decode_row(bytes: &[u8]) -> Result<Row> {
    if bytes.len() < 8 {
        return Err(Error::Xasr("row record too short".into()));
    }
    let mut pos = 0;
    let n = codec::get_u64(bytes, &mut pos) as usize;
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        let tuple_bytes = codec::get_bytes(bytes, &mut pos);
        row.push(NodeTuple::decode(tuple_bytes)?);
    }
    Ok(row)
}

/// Lexicographic comparison of rows by the `in` values of the given
/// columns — "sorted hierarchically in document order" over those columns.
pub fn compare_rows_by(cols: &[usize], a: &Row, b: &Row) -> std::cmp::Ordering {
    for &c in cols {
        match a[c].in_.cmp(&b[c].in_) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldb_xasr::NodeType;

    fn tuple(in_: u64) -> NodeTuple {
        NodeTuple {
            in_,
            out: in_ + 1,
            parent_in: 0,
            kind: NodeType::Element,
            value: Some(format!("e{in_}")),
        }
    }

    #[test]
    fn row_codec_roundtrip() {
        for row in [vec![], vec![tuple(1)], vec![tuple(2), tuple(5), tuple(9)]] {
            assert_eq!(decode_row(&encode_row(&row)).unwrap(), row);
        }
    }

    #[test]
    fn compare_rows_hierarchical() {
        use std::cmp::Ordering::*;
        let a = vec![tuple(2), tuple(4)];
        let b = vec![tuple(2), tuple(8)];
        let c = vec![tuple(3), tuple(1)];
        assert_eq!(compare_rows_by(&[0, 1], &a, &b), Less);
        assert_eq!(compare_rows_by(&[0, 1], &b, &c), Less);
        assert_eq!(compare_rows_by(&[0, 1], &a, &a), Equal);
        assert_eq!(compare_rows_by(&[1], &c, &a), Less);
        assert_eq!(compare_rows_by(&[], &a, &c), Equal);
    }

    #[test]
    fn decode_rejects_short() {
        assert!(decode_row(&[1, 2]).is_err());
    }
}
