//! Join operators: order-preserving nested loops, milestone-4 index nested
//! loops, and the non-order-preserving block nested loops.

use super::scan::{Probe, ProbeCursor};
use crate::exec::{ExecContext, Operator};
use crate::pred::{eval_all, PhysPred};
use crate::row::Row;
use crate::{Error, Result};
use xmldb_storage::MemReservation;

/// Tuple-at-a-time nested-loops join (order-preserving). The right input is
/// re-opened for every left row; with a [`super::MaterializeOp`] right this
/// is the milestone-3 "write each intermediate result and re-read it"
/// evaluation.
pub struct NestedLoopJoinOp {
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    preds: Vec<PhysPred>,
    current_left: Option<Row>,
}

impl NestedLoopJoinOp {
    /// Joins `left` and `right` under `preds` (right re-opened per left row).
    pub fn new(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        preds: Vec<PhysPred>,
    ) -> NestedLoopJoinOp {
        NestedLoopJoinOp {
            left,
            right,
            preds,
            current_left: None,
        }
    }
}

impl Operator for NestedLoopJoinOp {
    fn open(&mut self, ctx: &ExecContext<'_>) -> Result<()> {
        self.current_left = None;
        self.left.open(ctx)
    }

    fn next(&mut self, ctx: &ExecContext<'_>) -> Result<Option<Row>> {
        loop {
            ctx.governor.check()?;
            if self.current_left.is_none() {
                match self.left.next(ctx)? {
                    Some(row) => {
                        self.current_left = Some(row);
                        self.right.open(ctx)?;
                    }
                    None => return Ok(None),
                }
            }
            let left = self.current_left.as_ref().expect("set above");
            while let Some(right_row) = self.right.next(ctx)? {
                let mut joined = left.clone();
                joined.extend(right_row);
                if eval_all(&self.preds, &joined, ctx.bindings)? {
                    return Ok(Some(joined));
                }
            }
            self.current_left = None;
        }
    }

    fn close(&mut self) {
        self.left.close();
        self.right.close();
        self.current_left = None;
    }

    fn name(&self) -> &'static str {
        "nl-join"
    }
}

/// Batched merge probing for the vectorized drive of label probes: instead
/// of one B+-tree descent per outer row, fetch the probe label's index run
/// once over the whole buffered outer batch's document window, then answer
/// each row with a binary search into the fetched run. The per-row
/// semantics are exact: matches are the label tuples with
/// `row.in < t.in < row.out` (descendant probes), restricted to
/// `t.parent_in == row.in` for children probes — the same sets the
/// per-row cursors produce (the label index holds only elements), in the
/// same document order. Only column sources qualify; an `Ext` source is
/// constant per execution, where the per-row cursor is already a single
/// range scan.
struct MergeProbe {
    label: String,
    pos: usize,
    /// Direct children only (`t.parent_in == row.in`), else descendants.
    children_only: bool,
    /// Label tuples fetched for the current outer batch's window, in
    /// document order.
    buf: Vec<xmldb_xasr::NodeTuple>,
    /// `buf` corresponds to the operator's current left batch.
    valid: bool,
    /// Resume index into `buf` for the current outer row; `None` means the
    /// row has not been started (the operator resets it per row).
    cur: Option<usize>,
    /// Accounts `buf` against the governor's memory budget.
    reservation: MemReservation,
    /// Reused residual-predicate evaluation row.
    scratch: Row,
}

/// Estimated heap footprint of a fetched index tuple.
fn tuple_bytes(t: &xmldb_xasr::NodeTuple) -> usize {
    std::mem::size_of::<xmldb_xasr::NodeTuple>() + t.value.as_ref().map_or(0, |v| v.len())
}

impl MergeProbe {
    fn for_probe(probe: &Probe) -> Option<MergeProbe> {
        let (label, pos, children_only) = match probe {
            Probe::LabelChildrenOf(l, super::scan::Src::Col(pos)) => (l, *pos, true),
            Probe::LabelDescendantsOf(l, super::scan::Src::Col(pos)) => (l, *pos, false),
            _ => return None,
        };
        Some(MergeProbe {
            label: label.clone(),
            pos,
            children_only,
            buf: Vec::new(),
            valid: false,
            cur: None,
            reservation: MemReservation::default(),
            scratch: Row::new(),
        })
    }

    fn reset(&mut self, ctx: &ExecContext<'_>) {
        self.buf.clear();
        self.valid = false;
        self.cur = None;
        self.reservation = MemReservation::empty(&ctx.governor);
        self.scratch.clear();
    }

    /// Fetches the label run covering every remaining row of `batch`
    /// (rows `from..`), in chunks so cancellation stays responsive.
    fn fill_window(
        &mut self,
        ctx: &ExecContext<'_>,
        batch: &crate::RowBatch,
        from: usize,
    ) -> Result<()> {
        const CHUNK: usize = 4096;
        self.buf.clear();
        self.reservation.release_all();
        self.valid = true;
        self.cur = None;
        let mut win_lo = u64::MAX;
        let mut win_hi = 0u64;
        for i in from..batch.len() {
            let t = batch.row(i).get(self.pos).ok_or_else(|| {
                Error::Xasr(format!("probe source column {} out of range", self.pos))
            })?;
            // NULL outer tuples (left-outer padding) have the empty window
            // (0, 0) and never match; keep them out of the fetch window.
            if t.is_null() {
                continue;
            }
            win_lo = win_lo.min(t.in_);
            win_hi = win_hi.max(t.out);
        }
        if win_lo >= win_hi {
            return Ok(());
        }
        let mut resume = None;
        loop {
            ctx.governor.check()?;
            let lower = Some(resume.unwrap_or(win_lo));
            let appended = ctx.store.label_range_into(
                &self.label,
                lower,
                Some(win_hi),
                CHUNK,
                &mut self.buf,
            )?;
            if appended == 0 {
                break;
            }
            let grown: usize = self.buf[self.buf.len() - appended..]
                .iter()
                .map(tuple_bytes)
                .sum();
            if !self.reservation.grow(grown) {
                return Err(xmldb_storage::StorageError::MemoryExceeded {
                    used: ctx.governor.mem_used() + grown,
                    budget: ctx.governor.mem_budget().unwrap_or(0),
                }
                .into());
            }
            if appended < CHUNK {
                break;
            }
            resume = Some(self.buf.last().expect("appended > 0").in_);
        }
        Ok(())
    }

    /// Emits the current row's remaining matches into `out` until
    /// `max_rows`. Returns `(row_done, matched_now)`; when `row_done` is
    /// false the batch filled up and the row resumes on the next call.
    /// The caller resets `self.cur` to `None` when it advances to the
    /// next row.
    fn emit_row(
        &mut self,
        ctx: &ExecContext<'_>,
        row: &[NodeTuple],
        preds: &[PhysPred],
        out: &mut crate::RowBatch,
        max_rows: usize,
    ) -> Result<(bool, bool)> {
        let t = row
            .get(self.pos)
            .ok_or_else(|| Error::Xasr(format!("probe source column {} out of range", self.pos)))?;
        let (lo, hi) = (t.in_, t.out);
        let mut cur = match self.cur {
            Some(i) => i,
            None => self.buf.partition_point(|b| b.in_ <= lo),
        };
        let mut matched = false;
        loop {
            if cur >= self.buf.len() || self.buf[cur].in_ >= hi {
                self.cur = Some(cur);
                return Ok((true, matched));
            }
            if out.len() >= max_rows {
                self.cur = Some(cur);
                return Ok((false, matched));
            }
            let t = self.buf[cur].clone();
            cur += 1;
            if self.children_only && t.parent_in != lo {
                continue;
            }
            if preds.is_empty() {
                out.push_joined(row, t);
                matched = true;
            } else {
                self.scratch.clear();
                self.scratch.extend_from_slice(row);
                self.scratch.push(t);
                if eval_all(preds, &self.scratch, ctx.bindings)? {
                    let t = self.scratch.pop().expect("pushed above");
                    out.push_joined(row, t);
                    matched = true;
                }
            }
        }
    }
}

/// Index nested-loops join (milestone 4): for each left row, probe an XASR
/// index. Order-preserving — probes deliver in document order per left row.
pub struct IndexNestedLoopJoinOp {
    left: Box<dyn Operator>,
    probe: Probe,
    /// Residual conjuncts over the joined row.
    preds: Vec<PhysPred>,
    current_left: Option<Row>,
    cursor: Option<ProbeCursor>,
    /// Left rows buffered by the batch path (`next` drains it too, so the
    /// two drive styles can never skip rows if mixed).
    left_batch: crate::RowBatch,
    left_pos: usize,
    /// Batched merge probing for label probes (vectorized drive only).
    merge: Option<MergeProbe>,
}

impl IndexNestedLoopJoinOp {
    /// Probes `probe` per `left` row; `preds` are residual conjuncts.
    pub fn new(
        left: Box<dyn Operator>,
        probe: Probe,
        preds: Vec<PhysPred>,
    ) -> IndexNestedLoopJoinOp {
        IndexNestedLoopJoinOp {
            merge: MergeProbe::for_probe(&probe),
            left,
            probe,
            preds,
            current_left: None,
            cursor: None,
            left_batch: crate::RowBatch::default(),
            left_pos: 0,
        }
    }

    /// The vectorized drive for merge-eligible probes: one label-index
    /// fetch per buffered left batch, binary-searched per row.
    fn merge_next_batch(
        &mut self,
        ctx: &ExecContext<'_>,
        max_rows: usize,
    ) -> Result<crate::RowBatch> {
        let mut out = crate::RowBatch::default();
        loop {
            if out.len() >= max_rows {
                return Ok(out);
            }
            if self.left_pos >= self.left_batch.len() {
                self.left_batch = self.left.next_batch(ctx, crate::BATCH_ROWS)?;
                self.left_pos = 0;
                let merge = self.merge.as_mut().expect("merge drive");
                merge.valid = false;
                merge.cur = None;
                if self.left_batch.is_empty() {
                    break;
                }
                ctx.governor.check()?;
            }
            if !self.merge.as_ref().expect("merge drive").valid {
                let (merge, batch) = (self.merge.as_mut().expect("merge drive"), &self.left_batch);
                merge.fill_window(ctx, batch, self.left_pos)?;
            }
            if out.width() != self.left_batch.width() + 1 {
                debug_assert!(out.is_empty(), "left width is constant per execution");
                out = crate::RowBatch::with_capacity(self.left_batch.width() + 1, max_rows);
            }
            let row = self.left_batch.row(self.left_pos);
            let merge = self.merge.as_mut().expect("merge drive");
            let (row_done, _) = merge.emit_row(ctx, row, &self.preds, &mut out, max_rows)?;
            if !row_done {
                return Ok(out);
            }
            merge.cur = None;
            self.left_pos += 1;
        }
        Ok(out)
    }

    /// Next left row: from the buffered batch if any, else from the left
    /// child — batch-at-a-time when `batched` (vectorized driver), else
    /// row-at-a-time (keeps `next`-driven plans lazy under LIMIT).
    fn next_left(&mut self, ctx: &ExecContext<'_>, batched: bool) -> Result<Option<Row>> {
        if self.left_pos < self.left_batch.len() {
            let row = self.left_batch.row(self.left_pos).to_vec();
            self.left_pos += 1;
            return Ok(Some(row));
        }
        if !batched {
            return self.left.next(ctx);
        }
        self.left_batch = self.left.next_batch(ctx, crate::BATCH_ROWS)?;
        self.left_pos = 0;
        if self.left_batch.is_empty() {
            return Ok(None);
        }
        self.left_pos = 1;
        Ok(Some(self.left_batch.row(0).to_vec()))
    }
}

impl Operator for IndexNestedLoopJoinOp {
    fn open(&mut self, ctx: &ExecContext<'_>) -> Result<()> {
        self.current_left = None;
        self.cursor = None;
        self.left_batch = crate::RowBatch::default();
        self.left_pos = 0;
        if let Some(merge) = self.merge.as_mut() {
            merge.reset(ctx);
        }
        self.left.open(ctx)
    }

    fn next(&mut self, ctx: &ExecContext<'_>) -> Result<Option<Row>> {
        loop {
            ctx.governor.check()?;
            if self.current_left.is_none() {
                match self.next_left(ctx, false)? {
                    Some(row) => {
                        self.cursor = Some(ProbeCursor::start(&self.probe, Some(&row), ctx)?);
                        self.current_left = Some(row);
                    }
                    None => return Ok(None),
                }
            }
            let left = self.current_left.as_ref().expect("set above");
            let cursor = self.cursor.as_mut().expect("set with left");
            while let Some(tuple) = cursor.next(ctx)? {
                let mut joined = left.clone();
                joined.push(tuple);
                if eval_all(&self.preds, &joined, ctx.bindings)? {
                    return Ok(Some(joined));
                }
            }
            self.current_left = None;
            self.cursor = None;
        }
    }

    fn close(&mut self) {
        self.left.close();
        self.current_left = None;
        self.cursor = None;
        self.left_batch = crate::RowBatch::default();
        self.left_pos = 0;
        if let Some(merge) = self.merge.as_mut() {
            merge.buf = Vec::new();
            merge.valid = false;
            merge.cur = None;
            merge.reservation.release_all();
        }
    }

    fn name(&self) -> &'static str {
        "inl-join"
    }

    fn next_batch(&mut self, ctx: &ExecContext<'_>, max_rows: usize) -> Result<crate::RowBatch> {
        // Vectorized: bulk-fill probe results per left row and evaluate the
        // residual conjuncts against a reused scratch row, emitting into a
        // flat output batch — no per-row Vec allocation or virtual call.
        ctx.governor.check()?;
        if self.merge.is_some() {
            return self.merge_next_batch(ctx, max_rows);
        }
        let mut out = crate::RowBatch::default();
        let mut fetched: Vec<NodeTuple> = Vec::new();
        let mut scratch: Row = Vec::new();
        loop {
            if self.current_left.is_none() {
                match self.next_left(ctx, true)? {
                    Some(row) => {
                        self.cursor = Some(ProbeCursor::start(&self.probe, Some(&row), ctx)?);
                        self.current_left = Some(row);
                    }
                    None => break,
                }
            }
            let left = self.current_left.as_ref().expect("set above");
            if out.width() != left.len() + 1 {
                debug_assert!(out.is_empty(), "left width is constant per execution");
                out = crate::RowBatch::with_capacity(left.len() + 1, max_rows);
            }
            let cursor = self.cursor.as_mut().expect("set with left");
            while out.len() < max_rows {
                fetched.clear();
                if cursor.fill(ctx, &mut fetched, max_rows - out.len())? == 0 {
                    break;
                }
                if self.preds.is_empty() {
                    for t in fetched.drain(..) {
                        out.push_joined(left, t);
                    }
                    continue;
                }
                scratch.clear();
                scratch.extend_from_slice(left);
                scratch.push(NodeTuple::null());
                let last = scratch.len() - 1;
                for t in fetched.drain(..) {
                    scratch[last] = t;
                    if eval_all(&self.preds, &scratch, ctx.bindings)? {
                        let t = std::mem::replace(&mut scratch[last], NodeTuple::null());
                        out.push_joined(left, t);
                    }
                }
            }
            if out.len() >= max_rows {
                return Ok(out);
            }
            self.current_left = None;
            self.cursor = None;
        }
        Ok(out)
    }
}

/// Block nested-loops join: buffers a block of left rows, then scans the
/// right once per block. Fewer right rescans than tuple-at-a-time NLJ, but
/// **not order-preserving** (output order is right-major within a block) —
/// plans using it must restore order by sorting, which is exactly the
/// trade-off of the paper's ordering discussion.
pub struct BlockNestedLoopJoinOp {
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    preds: Vec<PhysPred>,
    block_rows: usize,
    block: Vec<Row>,
    /// Index of the next block row to pair with the current right row.
    block_pos: usize,
    current_right: Option<Row>,
    left_exhausted: bool,
    /// A left row pulled but deferred to the next block because the
    /// governor's budget could not cover it alongside the current block.
    pending_left: Option<Row>,
    /// Accounts the buffered block against the governor's memory budget.
    reservation: MemReservation,
}

/// Estimated heap footprint of a buffered row (tuples plus text values).
fn row_bytes(row: &Row) -> usize {
    std::mem::size_of::<Row>()
        + row.len() * std::mem::size_of::<xmldb_xasr::NodeTuple>()
        + row
            .iter()
            .map(|t| t.value.as_ref().map_or(0, |v| v.len()))
            .sum::<usize>()
}

impl BlockNestedLoopJoinOp {
    /// Joins block-at-a-time with `block_rows` buffered left rows.
    pub fn new(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        preds: Vec<PhysPred>,
        block_rows: usize,
    ) -> BlockNestedLoopJoinOp {
        BlockNestedLoopJoinOp {
            left,
            right,
            preds,
            block_rows: block_rows.max(1),
            block: Vec::new(),
            block_pos: 0,
            current_right: None,
            left_exhausted: false,
            pending_left: None,
            reservation: MemReservation::default(),
        }
    }

    fn fill_block(&mut self, ctx: &ExecContext<'_>) -> Result<bool> {
        self.block.clear();
        self.reservation.release_all();
        while self.block.len() < self.block_rows {
            let row = match self.pending_left.take() {
                Some(row) => row,
                None => match self.left.next(ctx)? {
                    Some(row) => row,
                    None => {
                        self.left_exhausted = true;
                        break;
                    }
                },
            };
            // A block the budget cannot hold degrades gracefully: stop
            // filling and run the partial block (more right rescans,
            // bounded memory). Only a single row that does not fit even in
            // an otherwise empty block is a hard error.
            if !self.reservation.grow(row_bytes(&row)) {
                if self.block.is_empty() {
                    return Err(xmldb_storage::StorageError::MemoryExceeded {
                        used: ctx.governor.mem_used() + row_bytes(&row),
                        budget: ctx.governor.mem_budget().unwrap_or(0),
                    }
                    .into());
                }
                self.pending_left = Some(row);
                break;
            }
            self.block.push(row);
        }
        Ok(!self.block.is_empty())
    }
}

impl Operator for BlockNestedLoopJoinOp {
    fn open(&mut self, ctx: &ExecContext<'_>) -> Result<()> {
        self.block.clear();
        self.block_pos = 0;
        self.current_right = None;
        self.left_exhausted = false;
        self.pending_left = None;
        self.reservation = MemReservation::empty(&ctx.governor);
        self.left.open(ctx)?;
        Ok(())
    }

    fn next(&mut self, ctx: &ExecContext<'_>) -> Result<Option<Row>> {
        loop {
            ctx.governor.check()?;
            if self.block.is_empty() {
                if self.left_exhausted || !self.fill_block(ctx)? {
                    return Ok(None);
                }
                self.right.open(ctx)?;
                self.current_right = None;
                self.block_pos = 0;
            }
            if self.current_right.is_none() {
                match self.right.next(ctx)? {
                    Some(row) => {
                        self.current_right = Some(row);
                        self.block_pos = 0;
                    }
                    None => {
                        // Block finished against the whole right side.
                        self.block.clear();
                        continue;
                    }
                }
            }
            let right = self.current_right.as_ref().expect("set above");
            while self.block_pos < self.block.len() {
                let left = &self.block[self.block_pos];
                self.block_pos += 1;
                let mut joined = left.clone();
                joined.extend(right.iter().cloned());
                if eval_all(&self.preds, &joined, ctx.bindings)? {
                    return Ok(Some(joined));
                }
            }
            self.current_right = None;
        }
    }

    fn close(&mut self) {
        self.left.close();
        self.right.close();
        self.block.clear();
        self.pending_left = None;
        self.reservation.release_all();
    }

    fn name(&self) -> &'static str {
        "bnl-join"
    }
}

/// Left-outer index nested-loops join — the paper's proposed TPM extension
/// ("one solution to this problem is to extend TPM by left-outer-joins"):
/// every left row survives; when the probe yields no tuple passing the
/// residual predicates, the row is emitted once with the
/// [`NodeTuple::null`] sentinel in the joined column, so constructors can
/// still emit their (empty) element for match-less outer bindings.
pub struct LeftOuterIndexNestedLoopJoinOp {
    left: Box<dyn Operator>,
    probe: Probe,
    preds: Vec<PhysPred>,
    current_left: Option<Row>,
    cursor: Option<ProbeCursor>,
    matched: bool,
    /// Left rows buffered by the vectorized merge drive.
    left_batch: crate::RowBatch,
    left_pos: usize,
    /// Batched merge probing for label probes (vectorized drive only).
    merge: Option<MergeProbe>,
}

use xmldb_xasr::NodeTuple;

impl LeftOuterIndexNestedLoopJoinOp {
    /// Left-outer probe join; match-less left rows are NULL-padded.
    pub fn new(
        left: Box<dyn Operator>,
        probe: Probe,
        preds: Vec<PhysPred>,
    ) -> LeftOuterIndexNestedLoopJoinOp {
        LeftOuterIndexNestedLoopJoinOp {
            merge: MergeProbe::for_probe(&probe),
            left,
            probe,
            preds,
            current_left: None,
            cursor: None,
            matched: false,
            left_batch: crate::RowBatch::default(),
            left_pos: 0,
        }
    }

    /// The vectorized drive for merge-eligible probes: like the inner
    /// join's, plus NULL padding for match-less left rows. `self.matched`
    /// accumulates across resumed calls for the row in progress.
    fn merge_next_batch(
        &mut self,
        ctx: &ExecContext<'_>,
        max_rows: usize,
    ) -> Result<crate::RowBatch> {
        let mut out = crate::RowBatch::default();
        loop {
            if out.len() >= max_rows {
                return Ok(out);
            }
            if self.left_pos >= self.left_batch.len() {
                self.left_batch = self.left.next_batch(ctx, crate::BATCH_ROWS)?;
                self.left_pos = 0;
                let merge = self.merge.as_mut().expect("merge drive");
                merge.valid = false;
                merge.cur = None;
                if self.left_batch.is_empty() {
                    break;
                }
                ctx.governor.check()?;
            }
            if !self.merge.as_ref().expect("merge drive").valid {
                let (merge, batch) = (self.merge.as_mut().expect("merge drive"), &self.left_batch);
                merge.fill_window(ctx, batch, self.left_pos)?;
            }
            if out.width() != self.left_batch.width() + 1 {
                debug_assert!(out.is_empty(), "left width is constant per execution");
                out = crate::RowBatch::with_capacity(self.left_batch.width() + 1, max_rows);
            }
            let row = self.left_batch.row(self.left_pos);
            let merge = self.merge.as_mut().expect("merge drive");
            if merge.cur.is_none() {
                self.matched = false;
            }
            let (row_done, matched_now) =
                merge.emit_row(ctx, row, &self.preds, &mut out, max_rows)?;
            self.matched |= matched_now;
            if !row_done {
                return Ok(out);
            }
            if !self.matched {
                if out.len() >= max_rows {
                    // No room for the padded row; `merge.cur` stays at the
                    // row's end so the next call pads before advancing.
                    return Ok(out);
                }
                out.push_joined(row, NodeTuple::null());
            }
            merge.cur = None;
            self.left_pos += 1;
        }
        Ok(out)
    }
}

impl Operator for LeftOuterIndexNestedLoopJoinOp {
    fn open(&mut self, ctx: &ExecContext<'_>) -> Result<()> {
        self.current_left = None;
        self.cursor = None;
        self.matched = false;
        self.left_batch = crate::RowBatch::default();
        self.left_pos = 0;
        if let Some(merge) = self.merge.as_mut() {
            merge.reset(ctx);
        }
        self.left.open(ctx)
    }

    fn next(&mut self, ctx: &ExecContext<'_>) -> Result<Option<Row>> {
        loop {
            ctx.governor.check()?;
            if self.current_left.is_none() {
                match self.left.next(ctx)? {
                    Some(row) => {
                        self.cursor = Some(ProbeCursor::start(&self.probe, Some(&row), ctx)?);
                        self.current_left = Some(row);
                        self.matched = false;
                    }
                    None => return Ok(None),
                }
            }
            let left = self.current_left.as_ref().expect("set above");
            let cursor = self.cursor.as_mut().expect("set with left");
            while let Some(tuple) = cursor.next(ctx)? {
                let mut joined = left.clone();
                joined.push(tuple);
                if eval_all(&self.preds, &joined, ctx.bindings)? {
                    self.matched = true;
                    return Ok(Some(joined));
                }
            }
            // Probe exhausted: emit the NULL-padded row if nothing matched.
            let emit_null = !self.matched;
            let mut padded = self.current_left.take().expect("set above");
            self.cursor = None;
            if emit_null {
                padded.push(NodeTuple::null());
                return Ok(Some(padded));
            }
        }
    }

    fn close(&mut self) {
        self.left.close();
        self.current_left = None;
        self.cursor = None;
        self.left_batch = crate::RowBatch::default();
        self.left_pos = 0;
        if let Some(merge) = self.merge.as_mut() {
            merge.buf = Vec::new();
            merge.valid = false;
            merge.cur = None;
            merge.reservation.release_all();
        }
    }

    fn name(&self) -> &'static str {
        "left-outer-inl-join"
    }

    fn next_batch(&mut self, ctx: &ExecContext<'_>, max_rows: usize) -> Result<crate::RowBatch> {
        ctx.governor.check()?;
        if self.merge.is_some() {
            return self.merge_next_batch(ctx, max_rows);
        }
        let mut out = crate::RowBatch::default();
        let mut fetched: Vec<NodeTuple> = Vec::new();
        let mut scratch: Row = Vec::new();
        loop {
            if self.current_left.is_none() {
                match self.left.next(ctx)? {
                    Some(row) => {
                        self.cursor = Some(ProbeCursor::start(&self.probe, Some(&row), ctx)?);
                        self.current_left = Some(row);
                        self.matched = false;
                    }
                    None => break,
                }
            }
            let left = self.current_left.as_ref().expect("set above");
            if out.width() != left.len() + 1 {
                debug_assert!(out.is_empty(), "left width is constant per execution");
                out = crate::RowBatch::with_capacity(left.len() + 1, max_rows);
            }
            let cursor = self.cursor.as_mut().expect("set with left");
            let mut probe_done = false;
            while out.len() < max_rows {
                fetched.clear();
                if cursor.fill(ctx, &mut fetched, max_rows - out.len())? == 0 {
                    probe_done = true;
                    break;
                }
                scratch.clear();
                scratch.extend_from_slice(left);
                scratch.push(NodeTuple::null());
                let last = scratch.len() - 1;
                for t in fetched.drain(..) {
                    scratch[last] = t;
                    if eval_all(&self.preds, &scratch, ctx.bindings)? {
                        self.matched = true;
                        let t = std::mem::replace(&mut scratch[last], NodeTuple::null());
                        out.push_joined(left, t);
                    }
                }
            }
            if !probe_done {
                // Batch full with the probe still live; resume next call.
                return Ok(out);
            }
            let emit_null = !self.matched;
            let padded = self.current_left.take().expect("set above");
            self.cursor = None;
            if emit_null {
                out.push_joined(&padded, NodeTuple::null());
                if out.len() >= max_rows {
                    return Ok(out);
                }
            }
        }
        Ok(out)
    }
}

/// Left-outer nested-loops join over a re-openable right input (the
/// fallback when no index probe is derivable for the inner side).
pub struct LeftOuterNestedLoopJoinOp {
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    preds: Vec<PhysPred>,
    current_left: Option<Row>,
    matched: bool,
}

impl LeftOuterNestedLoopJoinOp {
    /// Left-outer nested-loops join over a re-openable right.
    pub fn new(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        preds: Vec<PhysPred>,
    ) -> LeftOuterNestedLoopJoinOp {
        LeftOuterNestedLoopJoinOp {
            left,
            right,
            preds,
            current_left: None,
            matched: false,
        }
    }
}

impl Operator for LeftOuterNestedLoopJoinOp {
    fn open(&mut self, ctx: &ExecContext<'_>) -> Result<()> {
        self.current_left = None;
        self.matched = false;
        self.left.open(ctx)
    }

    fn next(&mut self, ctx: &ExecContext<'_>) -> Result<Option<Row>> {
        loop {
            ctx.governor.check()?;
            if self.current_left.is_none() {
                match self.left.next(ctx)? {
                    Some(row) => {
                        self.current_left = Some(row);
                        self.matched = false;
                        self.right.open(ctx)?;
                    }
                    None => return Ok(None),
                }
            }
            let left = self.current_left.as_ref().expect("set above");
            while let Some(right_row) = self.right.next(ctx)? {
                debug_assert_eq!(right_row.len(), 1, "LOJ inners are single-relation");
                let mut joined = left.clone();
                joined.extend(right_row);
                if eval_all(&self.preds, &joined, ctx.bindings)? {
                    self.matched = true;
                    return Ok(Some(joined));
                }
            }
            let emit_null = !self.matched;
            let mut padded = self.current_left.take().expect("set above");
            if emit_null {
                padded.push(NodeTuple::null());
                return Ok(Some(padded));
            }
        }
    }

    fn close(&mut self) {
        self.left.close();
        self.right.close();
        self.current_left = None;
    }

    fn name(&self) -> &'static str {
        "left-outer-nl-join"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute_all, Bindings};
    use crate::ops::{RowsOp, ScanOp, Src};
    use crate::pred::PhysOperand;
    use xmldb_algebra::{Attr, CmpOp};
    use xmldb_storage::Env;
    use xmldb_xasr::shred_document;

    const FIGURE2: &str =
        "<journal><authors><name>Ana</name><name>Bob</name></authors><title>DB</title></journal>";

    fn fixture() -> (Env, xmldb_xasr::XasrStore) {
        let env = Env::memory();
        let store = shred_document(&env, "f", FIGURE2).unwrap();
        (env, store)
    }

    fn descendant_preds(left: usize, right: usize) -> Vec<PhysPred> {
        vec![
            PhysPred {
                op: CmpOp::Lt,
                lhs: PhysOperand::Col {
                    pos: left,
                    attr: Attr::In,
                },
                rhs: PhysOperand::Col {
                    pos: right,
                    attr: Attr::In,
                },
                strict_text: false,
            },
            PhysPred {
                op: CmpOp::Lt,
                lhs: PhysOperand::Col {
                    pos: right,
                    attr: Attr::Out,
                },
                rhs: PhysOperand::Col {
                    pos: left,
                    attr: Attr::Out,
                },
                strict_text: false,
            },
        ]
    }

    /// Example 2 as a join: journals × names with descendant predicate.
    #[test]
    fn nlj_example2_bindings() {
        let (_e, store) = fixture();
        let binds = Bindings::with_root(&store).unwrap();
        let ctx = ExecContext::new(&store, &binds);
        let left = ScanOp::new(Probe::ByLabel("journal".into()), vec![]);
        let right = ScanOp::new(Probe::ByLabel("name".into()), vec![]);
        let mut join =
            NestedLoopJoinOp::new(Box::new(left), Box::new(right), descendant_preds(0, 1));
        let rows = execute_all(&mut join, &ctx).unwrap();
        let pairs: Vec<(u64, u64)> = rows.iter().map(|r| (r[0].in_, r[1].in_)).collect();
        assert_eq!(
            pairs,
            vec![(2, 4), (2, 8)],
            "the Example 2 vartuple sequence"
        );
    }

    #[test]
    fn inlj_matches_nlj() {
        let (_e, store) = fixture();
        let binds = Bindings::with_root(&store).unwrap();
        let ctx = ExecContext::new(&store, &binds);
        let left = ScanOp::new(Probe::ByLabel("journal".into()), vec![]);
        let mut join = IndexNestedLoopJoinOp::new(
            Box::new(left),
            Probe::LabelDescendantsOf("name".into(), Src::Col(0)),
            vec![],
        );
        let rows = execute_all(&mut join, &ctx).unwrap();
        let pairs: Vec<(u64, u64)> = rows.iter().map(|r| (r[0].in_, r[1].in_)).collect();
        assert_eq!(pairs, vec![(2, 4), (2, 8)]);
    }

    #[test]
    fn bnlj_same_rows_different_order() {
        let (_e, store) = fixture();
        let binds = Bindings::with_root(&store).unwrap();
        let ctx = ExecContext::new(&store, &binds);
        // names × names cross (no preds) via both joins.
        let mk_scan = || Box::new(ScanOp::new(Probe::ByLabel("name".into()), vec![]));
        let mut nlj = NestedLoopJoinOp::new(mk_scan(), mk_scan(), vec![]);
        let mut bnlj = BlockNestedLoopJoinOp::new(mk_scan(), mk_scan(), vec![], 10);
        let a = execute_all(&mut nlj, &ctx).unwrap();
        let b = execute_all(&mut bnlj, &ctx).unwrap();
        assert_eq!(a.len(), 4);
        let mut pa: Vec<(u64, u64)> = a.iter().map(|r| (r[0].in_, r[1].in_)).collect();
        let mut pb: Vec<(u64, u64)> = b.iter().map(|r| (r[0].in_, r[1].in_)).collect();
        // BNLJ with a block bigger than the input is right-major: (4,4),
        // (8,4), (4,8), (8,8) — same set, different order.
        assert_ne!(pa, pb, "BNLJ must not be order-preserving here");
        pa.sort_unstable();
        pb.sort_unstable();
        assert_eq!(pa, pb);
    }

    #[test]
    fn bnlj_small_blocks_rescan_right() {
        let (_e, store) = fixture();
        let binds = Bindings::with_root(&store).unwrap();
        let ctx = ExecContext::new(&store, &binds);
        let left = ScanOp::new(Probe::Full, vec![]);
        let right = ScanOp::new(Probe::ByLabel("name".into()), vec![]);
        let mut join = BlockNestedLoopJoinOp::new(
            Box::new(left),
            Box::new(right),
            descendant_preds(0, 1),
            2, // 9 left rows → 5 blocks
        );
        let rows = execute_all(&mut join, &ctx).unwrap();
        // Ancestors of names: root(1), journal(2), authors(3) each × both
        // names, plus each name's own parents... count pairs (x, name).
        let mut pairs: Vec<(u64, u64)> = rows.iter().map(|r| (r[0].in_, r[1].in_)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 4), (1, 8), (2, 4), (2, 8), (3, 4), (3, 8)]);
    }

    #[test]
    fn left_outer_inlj_pads_with_null() {
        let (_e, store) = fixture();
        let binds = Bindings::with_root(&store).unwrap();
        let ctx = ExecContext::new(&store, &binds);
        // Every element × its text children: title(13) and authors(3) have
        // none directly (authors' text is under name).
        let left = ScanOp::new(Probe::ByLabel("name".into()), vec![]);
        let mut join = LeftOuterIndexNestedLoopJoinOp::new(
            Box::new(left),
            Probe::ChildrenOf(Src::Col(0)),
            vec![],
        );
        let rows = execute_all(&mut join, &ctx).unwrap();
        // Both names have exactly one text child → two matched rows.
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| !r[1].is_null()));
        // Authors element (in=3) as the left: children are elements, so a
        // text()-style filter (via preds) yields NULL padding.
        let left = ScanOp::new(Probe::ByLabel("authors".into()), vec![]);
        let text_only = vec![PhysPred {
            op: CmpOp::Eq,
            lhs: PhysOperand::Col {
                pos: 1,
                attr: Attr::Type,
            },
            rhs: PhysOperand::Kind(xmldb_xasr::NodeType::Text),
            strict_text: false,
        }];
        let mut join = LeftOuterIndexNestedLoopJoinOp::new(
            Box::new(left),
            Probe::ChildrenOf(Src::Col(0)),
            text_only,
        );
        let rows = execute_all(&mut join, &ctx).unwrap();
        assert_eq!(rows.len(), 1, "one padded row for the match-less left");
        assert!(rows[0][1].is_null());
    }

    #[test]
    fn left_outer_nlj_matches_inlj() {
        let (_e, store) = fixture();
        let binds = Bindings::with_root(&store).unwrap();
        let ctx = ExecContext::new(&store, &binds);
        let preds = descendant_preds(0, 1);
        let mut loj_nl = LeftOuterNestedLoopJoinOp::new(
            Box::new(ScanOp::new(Probe::ByLabel("title".into()), vec![])),
            Box::new(ScanOp::new(Probe::ByLabel("name".into()), vec![])),
            preds,
        );
        let rows = execute_all(&mut loj_nl, &ctx).unwrap();
        // Titles have no name descendants → single NULL-padded row.
        assert_eq!(rows.len(), 1);
        assert!(rows[0][1].is_null());
        let mut loj_inl = LeftOuterIndexNestedLoopJoinOp::new(
            Box::new(ScanOp::new(Probe::ByLabel("title".into()), vec![])),
            Probe::LabelDescendantsOf("name".into(), Src::Col(0)),
            vec![],
        );
        let rows2 = execute_all(&mut loj_inl, &ctx).unwrap();
        assert_eq!(
            rows.iter()
                .map(|r| (r[0].in_, r[1].in_))
                .collect::<Vec<_>>(),
            rows2
                .iter()
                .map(|r| (r[0].in_, r[1].in_))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn bnlj_degrades_to_smaller_blocks_under_budget() {
        use xmldb_storage::Governor;
        let (_e, store) = fixture();
        let binds = Bindings::with_root(&store).unwrap();
        // Budget fits roughly one row at a time: the huge configured block
        // degrades to tiny blocks and the join still completes correctly.
        let gov = Governor::with_limits(None, Some(row_bytes(&vec![store.root().unwrap()]) + 16));
        let ctx = ExecContext::with_governor(&store, &binds, gov.clone());
        let mk_scan = || Box::new(ScanOp::new(Probe::ByLabel("name".into()), vec![]));
        let mut bnlj = BlockNestedLoopJoinOp::new(mk_scan(), mk_scan(), vec![], 1000);
        let rows = execute_all(&mut bnlj, &ctx).unwrap();
        let mut pairs: Vec<(u64, u64)> = rows.iter().map(|r| (r[0].in_, r[1].in_)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(4, 4), (4, 8), (8, 4), (8, 8)]);
        assert_eq!(gov.mem_used(), 0, "block reservation released");
    }

    #[test]
    fn cancellation_mid_join_is_clean() {
        use xmldb_storage::Governor;
        let (env, store) = fixture();
        let binds = Bindings::with_root(&store).unwrap();
        let gov = Governor::unlimited();
        gov.trip_cancel_after_checks(3);
        let ctx = ExecContext::with_governor(&store, &binds, gov);
        let mk_scan = || Box::new(ScanOp::new(Probe::Full, vec![]));
        let mut nlj = NestedLoopJoinOp::new(mk_scan(), mk_scan(), vec![]);
        let err = execute_all(&mut nlj, &ctx).unwrap_err();
        assert!(
            matches!(
                err,
                crate::Error::Storage(xmldb_storage::StorageError::Cancelled)
            ),
            "{err}"
        );
        assert_eq!(env.pinned_frames(), 0);
    }

    #[test]
    fn joins_with_empty_inputs() {
        let (_e, store) = fixture();
        let binds = Bindings::with_root(&store).unwrap();
        let ctx = ExecContext::new(&store, &binds);
        let empty = || Box::new(RowsOp::new(vec![]));
        let names = || Box::new(ScanOp::new(Probe::ByLabel("name".into()), vec![]));
        let mut j1 = NestedLoopJoinOp::new(empty(), names(), vec![]);
        assert!(execute_all(&mut j1, &ctx).unwrap().is_empty());
        let mut j2 = NestedLoopJoinOp::new(names(), empty(), vec![]);
        assert!(execute_all(&mut j2, &ctx).unwrap().is_empty());
        let mut j3 = BlockNestedLoopJoinOp::new(empty(), names(), vec![], 4);
        assert!(execute_all(&mut j3, &ctx).unwrap().is_empty());
    }
}
