//! Access paths and the scan operator.

use crate::exec::{ExecContext, Operator};
use crate::pred::{eval_all, PhysPred};
use crate::row::Row;
use crate::{Error, Result};
use xmldb_xasr::NodeTuple;
use xmldb_xq::Var;

/// Tuples fetched per index round-trip (block-based reading).
const BATCH: usize = 128;

/// Where a probe gets its context node from.
#[derive(Debug, Clone, PartialEq)]
pub enum Src {
    /// A column of the outer row (index nested-loops join).
    Col(usize),
    /// An externally bound variable.
    Ext(Var),
}

impl Src {
    fn resolve(&self, left: Option<&Row>, ctx: &ExecContext<'_>) -> Result<NodeTuple> {
        match self {
            Src::Col(pos) => left
                .and_then(|row| row.get(*pos))
                .cloned()
                .ok_or_else(|| Error::Xasr(format!("probe source column {pos} out of range"))),
            Src::Ext(var) => ctx
                .bindings
                .get(var)
                .cloned()
                .ok_or_else(|| Error::UnboundVariable(var.to_string())),
        }
    }
}

/// An index access path — milestone 4's "index-based selection". Every
/// probe yields tuples in document order, so index plans stay
/// order-preserving.
#[derive(Debug, Clone, PartialEq)]
pub enum Probe {
    /// Full clustered scan (the unoptimized engines' only access path).
    Full,
    /// All elements with a label, via the label index.
    ByLabel(String),
    /// Children of the context node, via the parent index.
    ChildrenOf(Src),
    /// Children with a label test (parent-index scan + label filter).
    LabelChildrenOf(String, Src),
    /// Descendants of the context node (clustered interval scan).
    DescendantsOf(Src),
    /// Descendants with a label (label-index interval scan — the covering
    /// two-sided range the XASR encoding makes possible).
    LabelDescendantsOf(String, Src),
    /// Exactly the context node itself (`T.in = $x` lookups that survive
    /// rewriting in the less-optimized engines).
    Bound(Src),
    /// All text nodes with exactly this content (text-value index — the
    /// milestone-4 extension index for equality selections).
    ByTextEq(String),
    /// Text nodes whose content equals the context node's content (the
    /// index-join side of an XQ value join). Errors with the paper's
    /// non-text runtime error when the context node is not a text node.
    TextEqOf(Src),
    /// Clustered-index scan over `lo_excl < in < hi_excl` — a
    /// morsel-bounded [`Probe::Full`], used by the parallel driver to hand
    /// each worker a contiguous document-order slice.
    ClusteredRange(u64, u64),
    /// Label-index scan over `lo_excl < in < hi_excl` — a morsel-bounded
    /// [`Probe::ByLabel`].
    LabelRange(String, u64, u64),
}

impl Probe {
    /// Human-readable form for EXPLAIN.
    pub fn describe(&self) -> String {
        match self {
            Probe::Full => "full-scan".to_string(),
            Probe::ByLabel(l) => format!("label-scan({l})"),
            Probe::ChildrenOf(s) => format!("children({s:?})"),
            Probe::LabelChildrenOf(l, s) => format!("children({s:?}, label={l})"),
            Probe::DescendantsOf(s) => format!("descendants({s:?})"),
            Probe::LabelDescendantsOf(l, s) => format!("descendants({s:?}, label={l})"),
            Probe::Bound(s) => format!("bound({s:?})"),
            Probe::ByTextEq(t) => format!("text-eq({t:?})"),
            Probe::TextEqOf(s) => format!("text-eq({s:?})"),
            Probe::ClusteredRange(lo, hi) => format!("clustered-range({lo},{hi})"),
            Probe::LabelRange(l, lo, hi) => format!("label-range({l},{lo},{hi})"),
        }
    }
}

/// A running probe with owned cursor state (batched fetches).
pub(crate) struct ProbeCursor {
    resolved: Resolved,
    /// Resume point: last `in` value delivered.
    resume: Option<u64>,
    batch: std::collections::VecDeque<NodeTuple>,
    done: bool,
}

enum Resolved {
    Full,
    ByLabel(String),
    Children { parent_in: u64 },
    LabelChildren { label: String, parent_in: u64 },
    Descendants { lo: u64, hi: u64 },
    LabelDescendants { label: String, lo: u64, hi: u64 },
    Bound(Option<NodeTuple>),
    TextEq { text: String },
}

impl ProbeCursor {
    pub(crate) fn start(
        probe: &Probe,
        left: Option<&Row>,
        ctx: &ExecContext<'_>,
    ) -> Result<ProbeCursor> {
        let resolved = match probe {
            Probe::Full => Resolved::Full,
            Probe::ByLabel(l) => Resolved::ByLabel(l.clone()),
            Probe::ChildrenOf(s) => Resolved::Children {
                parent_in: s.resolve(left, ctx)?.in_,
            },
            Probe::LabelChildrenOf(l, s) => Resolved::LabelChildren {
                label: l.clone(),
                parent_in: s.resolve(left, ctx)?.in_,
            },
            Probe::DescendantsOf(s) => {
                let t = s.resolve(left, ctx)?;
                Resolved::Descendants {
                    lo: t.in_,
                    hi: t.out,
                }
            }
            Probe::LabelDescendantsOf(l, s) => {
                let t = s.resolve(left, ctx)?;
                Resolved::LabelDescendants {
                    label: l.clone(),
                    lo: t.in_,
                    hi: t.out,
                }
            }
            Probe::ClusteredRange(lo, hi) => Resolved::Descendants { lo: *lo, hi: *hi },
            Probe::LabelRange(l, lo, hi) => Resolved::LabelDescendants {
                label: l.clone(),
                lo: *lo,
                hi: *hi,
            },
            Probe::Bound(s) => Resolved::Bound(Some(s.resolve(left, ctx)?)),
            Probe::ByTextEq(t) => Resolved::TextEq { text: t.clone() },
            Probe::TextEqOf(s) => {
                let t = s.resolve(left, ctx)?;
                match (t.kind, &t.value) {
                    (xmldb_xasr::NodeType::Text, Some(content)) => Resolved::TextEq {
                        text: content.clone(),
                    },
                    _ => {
                        return Err(Error::NonTextComparison {
                            kind: t.kind,
                            value: t.value.clone(),
                        })
                    }
                }
            }
        };
        Ok(ProbeCursor {
            resolved,
            resume: None,
            batch: std::collections::VecDeque::new(),
            done: false,
        })
    }

    pub(crate) fn next(&mut self, ctx: &ExecContext<'_>) -> Result<Option<NodeTuple>> {
        loop {
            if let Some(t) = self.batch.pop_front() {
                self.resume = Some(t.in_);
                return Ok(Some(t));
            }
            if self.done {
                return Ok(None);
            }
            let fetched: Vec<NodeTuple> = match &mut self.resolved {
                Resolved::Full => ctx.store.clustered_batch(self.resume, None, BATCH)?,
                Resolved::ByLabel(label) => {
                    ctx.store.label_batch(label, self.resume, None, BATCH)?
                }
                Resolved::Children { parent_in } => {
                    ctx.store.parent_batch(*parent_in, self.resume, BATCH)?
                }
                Resolved::LabelChildren { label, parent_in } => {
                    let raw = ctx.store.parent_batch(*parent_in, self.resume, BATCH)?;
                    if raw.is_empty() {
                        Vec::new()
                    } else {
                        // Remember the raw resume point before filtering so
                        // skipped tuples are not refetched forever.
                        self.resume = Some(raw.last().expect("non-empty").in_);
                        let filtered: Vec<NodeTuple> = raw
                            .into_iter()
                            .filter(|t| t.label() == Some(label.as_str()))
                            .collect();
                        if filtered.is_empty() {
                            continue;
                        }
                        self.batch.extend(filtered);
                        continue;
                    }
                }
                Resolved::Descendants { lo, hi } => {
                    let lower = Some(self.resume.map_or(*lo, |r| r.max(*lo)));
                    ctx.store.clustered_batch(lower, Some(*hi), BATCH)?
                }
                Resolved::LabelDescendants { label, lo, hi } => {
                    let lower = Some(self.resume.map_or(*lo, |r| r.max(*lo)));
                    ctx.store.label_batch(label, lower, Some(*hi), BATCH)?
                }
                Resolved::TextEq { text } => ctx.store.text_batch(text, self.resume, BATCH)?,
                Resolved::Bound(slot) => match slot.take() {
                    Some(t) => {
                        self.done = true;
                        return Ok(Some(t));
                    }
                    None => Vec::new(),
                },
            };
            if fetched.is_empty() {
                self.done = true;
                return Ok(None);
            }
            self.batch.extend(fetched);
        }
    }

    /// Vectorized fetch: appends up to `max` tuples to `out`. Probes with a
    /// contiguous index range (full/label scans and interval scans) fill
    /// straight from the B+-tree leaf pages via the zero-copy visitor — no
    /// per-tuple VecDeque hop, key/value allocation, or tree re-descent.
    /// The remaining probes fall back to the row-at-a-time path.
    pub(crate) fn fill(
        &mut self,
        ctx: &ExecContext<'_>,
        out: &mut Vec<NodeTuple>,
        max: usize,
    ) -> Result<usize> {
        let before = out.len();
        // Drain tuples already buffered by the row-at-a-time path first.
        while out.len() - before < max {
            match self.batch.pop_front() {
                Some(t) => {
                    self.resume = Some(t.in_);
                    out.push(t);
                }
                None => break,
            }
        }
        while out.len() - before < max && !self.done {
            let want = max - (out.len() - before);
            let appended = match &mut self.resolved {
                Resolved::Full => ctx
                    .store
                    .clustered_range_into(self.resume, None, want, out)?,
                Resolved::ByLabel(label) => {
                    ctx.store
                        .label_range_into(label, self.resume, None, want, out)?
                }
                Resolved::Descendants { lo, hi } => {
                    let lower = Some(self.resume.map_or(*lo, |r| r.max(*lo)));
                    ctx.store
                        .clustered_range_into(lower, Some(*hi), want, out)?
                }
                Resolved::LabelDescendants { label, lo, hi } => {
                    let lower = Some(self.resume.map_or(*lo, |r| r.max(*lo)));
                    ctx.store
                        .label_range_into(label, lower, Some(*hi), want, out)?
                }
                _ => {
                    // Children/text/bound probes: no contiguous bulk range.
                    while out.len() - before < max {
                        match self.next(ctx)? {
                            Some(t) => out.push(t),
                            None => break,
                        }
                    }
                    return Ok(out.len() - before);
                }
            };
            if appended == 0 {
                self.done = true;
                break;
            }
            // A short fill means the index range is exhausted.
            if appended < want {
                self.done = true;
            }
            self.resume = Some(out.last().expect("appended > 0").in_);
        }
        Ok(out.len() - before)
    }
}

/// Leaf scan: a probe plus pushed-down selection conjuncts, producing
/// one-column rows.
pub struct ScanOp {
    probe: Probe,
    filter: Vec<PhysPred>,
    cursor: Option<ProbeCursor>,
}

impl ScanOp {
    /// Creates a scan over `probe` with pushed-down `filter` conjuncts.
    pub fn new(probe: Probe, filter: Vec<PhysPred>) -> ScanOp {
        ScanOp {
            probe,
            filter,
            cursor: None,
        }
    }
}

impl Operator for ScanOp {
    fn open(&mut self, ctx: &ExecContext<'_>) -> Result<()> {
        self.cursor = Some(ProbeCursor::start(&self.probe, None, ctx)?);
        Ok(())
    }

    fn next(&mut self, ctx: &ExecContext<'_>) -> Result<Option<Row>> {
        let cursor = self
            .cursor
            .as_mut()
            .ok_or_else(|| Error::Xasr("scan not open".into()))?;
        ctx.governor.check()?;
        while let Some(tuple) = cursor.next(ctx)? {
            let row = vec![tuple];
            if eval_all(&self.filter, &row, ctx.bindings)? {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }

    fn close(&mut self) {
        self.cursor = None;
    }

    fn name(&self) -> &'static str {
        "scan"
    }

    fn next_batch(&mut self, ctx: &ExecContext<'_>, max_rows: usize) -> Result<crate::RowBatch> {
        let cursor = self
            .cursor
            .as_mut()
            .ok_or_else(|| Error::Xasr("scan not open".into()))?;
        // One governor check per batch instead of per row.
        ctx.governor.check()?;
        let mut tuples: Vec<NodeTuple> = Vec::new();
        while tuples.len() < max_rows {
            let start = tuples.len();
            if cursor.fill(ctx, &mut tuples, max_rows - start)? == 0 {
                break;
            }
            if !self.filter.is_empty() {
                // Filter the newly appended range in place, before the rows
                // are ever materialized as batch rows.
                let mut write = start;
                for read in start..tuples.len() {
                    if eval_all(
                        &self.filter,
                        std::slice::from_ref(&tuples[read]),
                        ctx.bindings,
                    )? {
                        tuples.swap(write, read);
                        write += 1;
                    }
                }
                tuples.truncate(write);
            }
        }
        Ok(crate::RowBatch::from_tuples(tuples))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute_all, Bindings};
    use xmldb_algebra::{Attr, CmpOp};
    use xmldb_storage::Env;
    use xmldb_xasr::{shred_document, NodeType};

    const FIGURE2: &str =
        "<journal><authors><name>Ana</name><name>Bob</name></authors><title>DB</title></journal>";

    fn fixture() -> (Env, xmldb_xasr::XasrStore) {
        let env = Env::memory();
        let store = shred_document(&env, "f", FIGURE2).unwrap();
        (env, store)
    }

    fn ins(rows: &[Row]) -> Vec<u64> {
        rows.iter().map(|r| r[0].in_).collect()
    }

    #[test]
    fn full_scan_document_order() {
        let (_e, store) = fixture();
        let binds = Bindings::with_root(&store).unwrap();
        let ctx = ExecContext::new(&store, &binds);
        let mut op = ScanOp::new(Probe::Full, vec![]);
        let rows = execute_all(&mut op, &ctx).unwrap();
        assert_eq!(ins(&rows), vec![1, 2, 3, 4, 5, 8, 9, 13, 14]);
    }

    #[test]
    fn filtered_scan() {
        let (_e, store) = fixture();
        let binds = Bindings::with_root(&store).unwrap();
        let ctx = ExecContext::new(&store, &binds);
        let filter = vec![PhysPred {
            op: CmpOp::Eq,
            lhs: crate::pred::PhysOperand::Col {
                pos: 0,
                attr: Attr::Type,
            },
            rhs: crate::pred::PhysOperand::Kind(NodeType::Text),
            strict_text: false,
        }];
        let mut op = ScanOp::new(Probe::Full, filter);
        let rows = execute_all(&mut op, &ctx).unwrap();
        assert_eq!(ins(&rows), vec![5, 9, 14]);
    }

    #[test]
    fn probe_by_label() {
        let (_e, store) = fixture();
        let binds = Bindings::with_root(&store).unwrap();
        let ctx = ExecContext::new(&store, &binds);
        let mut op = ScanOp::new(Probe::ByLabel("name".into()), vec![]);
        assert_eq!(ins(&execute_all(&mut op, &ctx).unwrap()), vec![4, 8]);
        let mut op = ScanOp::new(Probe::ByLabel("ghost".into()), vec![]);
        assert!(execute_all(&mut op, &ctx).unwrap().is_empty());
    }

    #[test]
    fn probe_children_of_ext() {
        let (_e, store) = fixture();
        let mut binds = Bindings::with_root(&store).unwrap();
        binds.bind(Var::named("a"), store.get(3).unwrap().unwrap()); // authors
        let ctx = ExecContext::new(&store, &binds);
        let mut op = ScanOp::new(Probe::ChildrenOf(Src::Ext(Var::named("a"))), vec![]);
        assert_eq!(ins(&execute_all(&mut op, &ctx).unwrap()), vec![4, 8]);
    }

    #[test]
    fn probe_descendants_of_root_var() {
        let (_e, store) = fixture();
        let binds = Bindings::with_root(&store).unwrap();
        let ctx = ExecContext::new(&store, &binds);
        let mut op = ScanOp::new(Probe::DescendantsOf(Src::Ext(Var::root())), vec![]);
        assert_eq!(
            ins(&execute_all(&mut op, &ctx).unwrap()),
            vec![2, 3, 4, 5, 8, 9, 13, 14]
        );
    }

    #[test]
    fn probe_label_descendants() {
        let (_e, store) = fixture();
        let mut binds = Bindings::with_root(&store).unwrap();
        binds.bind(Var::named("j"), store.get(2).unwrap().unwrap());
        let ctx = ExecContext::new(&store, &binds);
        let mut op = ScanOp::new(
            Probe::LabelDescendantsOf("name".into(), Src::Ext(Var::named("j"))),
            vec![],
        );
        assert_eq!(ins(&execute_all(&mut op, &ctx).unwrap()), vec![4, 8]);
    }

    #[test]
    fn probe_label_children_filters() {
        let (_e, store) = fixture();
        let mut binds = Bindings::with_root(&store).unwrap();
        binds.bind(Var::named("j"), store.get(2).unwrap().unwrap());
        let ctx = ExecContext::new(&store, &binds);
        let mut op = ScanOp::new(
            Probe::LabelChildrenOf("title".into(), Src::Ext(Var::named("j"))),
            vec![],
        );
        assert_eq!(ins(&execute_all(&mut op, &ctx).unwrap()), vec![13]);
        let mut op = ScanOp::new(
            Probe::LabelChildrenOf("name".into(), Src::Ext(Var::named("j"))),
            vec![],
        );
        assert!(execute_all(&mut op, &ctx).unwrap().is_empty());
    }

    #[test]
    fn probe_bound_emits_once() {
        let (_e, store) = fixture();
        let mut binds = Bindings::with_root(&store).unwrap();
        binds.bind(Var::named("x"), store.get(5).unwrap().unwrap());
        let ctx = ExecContext::new(&store, &binds);
        let mut op = ScanOp::new(Probe::Bound(Src::Ext(Var::named("x"))), vec![]);
        let rows = execute_all(&mut op, &ctx).unwrap();
        assert_eq!(ins(&rows), vec![5]);
    }

    #[test]
    fn reopen_restarts() {
        let (_e, store) = fixture();
        let binds = Bindings::with_root(&store).unwrap();
        let ctx = ExecContext::new(&store, &binds);
        let mut op = ScanOp::new(Probe::ByLabel("name".into()), vec![]);
        assert_eq!(execute_all(&mut op, &ctx).unwrap().len(), 2);
        assert_eq!(execute_all(&mut op, &ctx).unwrap().len(), 2);
    }

    #[test]
    fn unbound_var_is_error() {
        let (_e, store) = fixture();
        let binds = Bindings::new();
        let ctx = ExecContext::new(&store, &binds);
        let mut op = ScanOp::new(Probe::ChildrenOf(Src::Ext(Var::named("zap"))), vec![]);
        assert!(matches!(op.open(&ctx), Err(Error::UnboundVariable(_))));
    }
}
