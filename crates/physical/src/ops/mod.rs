//! The operator zoo. See crate docs for the inventory.

mod filter;
mod join;
mod scan;
mod sort;

pub use filter::{FilterOp, LimitOp, ProjectOp, RowsOp, SingletonOp};
pub use join::{
    BlockNestedLoopJoinOp, IndexNestedLoopJoinOp, LeftOuterIndexNestedLoopJoinOp,
    LeftOuterNestedLoopJoinOp, NestedLoopJoinOp,
};
pub use scan::{Probe, ScanOp, Src};
pub use sort::{BTreeSortOp, MaterializeOp, SortOp};
