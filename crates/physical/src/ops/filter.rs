//! Selection, projection (with one-pass duplicate elimination), and small
//! structural operators.

use crate::exec::{ExecContext, Operator};
use crate::pred::{eval_all, PhysPred};
use crate::row::Row;
use crate::Result;

/// σ — residual selection over any input.
pub struct FilterOp {
    input: Box<dyn Operator>,
    preds: Vec<PhysPred>,
}

impl FilterOp {
    /// Creates a selection over `input`.
    pub fn new(input: Box<dyn Operator>, preds: Vec<PhysPred>) -> FilterOp {
        FilterOp { input, preds }
    }
}

impl Operator for FilterOp {
    fn open(&mut self, ctx: &ExecContext<'_>) -> Result<()> {
        self.input.open(ctx)
    }

    fn next(&mut self, ctx: &ExecContext<'_>) -> Result<Option<Row>> {
        while let Some(row) = self.input.next(ctx)? {
            if eval_all(&self.preds, &row, ctx.bindings)? {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }

    fn close(&mut self) {
        self.input.close();
    }

    fn name(&self) -> &'static str {
        "filter"
    }

    fn next_batch(&mut self, ctx: &ExecContext<'_>, max_rows: usize) -> Result<crate::RowBatch> {
        // Vectorized: filter whole input batches in place; loop until some
        // rows survive (an empty result batch must mean "exhausted").
        loop {
            let mut batch = self.input.next_batch(ctx, max_rows)?;
            if batch.is_empty() {
                return Ok(batch);
            }
            batch.retain_rows(|row| eval_all(&self.preds, row, ctx.bindings))?;
            if !batch.is_empty() {
                return Ok(batch);
            }
        }
    }
}

/// π — projection onto a subset of row columns, optionally removing
/// duplicates in one pass.
///
/// One-pass dedup is approach (c) of the paper's ordering discussion: it is
/// only sound when the input is sorted hierarchically w.r.t. the projected
/// columns (equal projections adjacent), which the planner guarantees by
/// choosing a projection-compatible join order — or by sorting first.
pub struct ProjectOp {
    input: Box<dyn Operator>,
    cols: Vec<usize>,
    dedup: bool,
    last: Option<Vec<u64>>,
}

impl ProjectOp {
    /// Creates a projection onto `cols`, optionally deduplicating.
    pub fn new(input: Box<dyn Operator>, cols: Vec<usize>, dedup: bool) -> ProjectOp {
        ProjectOp {
            input,
            cols,
            dedup,
            last: None,
        }
    }
}

impl Operator for ProjectOp {
    fn open(&mut self, ctx: &ExecContext<'_>) -> Result<()> {
        self.last = None;
        self.input.open(ctx)
    }

    fn next(&mut self, ctx: &ExecContext<'_>) -> Result<Option<Row>> {
        while let Some(row) = self.input.next(ctx)? {
            let key: Vec<u64> = self.cols.iter().map(|&c| row[c].in_).collect();
            if self.dedup && self.last.as_ref() == Some(&key) {
                continue;
            }
            self.last = Some(key);
            let projected: Row = self.cols.iter().map(|&c| row[c].clone()).collect();
            return Ok(Some(projected));
        }
        Ok(None)
    }

    fn close(&mut self) {
        self.input.close();
        self.last = None;
    }

    fn name(&self) -> &'static str {
        "project"
    }

    fn next_batch(&mut self, ctx: &ExecContext<'_>, max_rows: usize) -> Result<crate::RowBatch> {
        loop {
            let input = self.input.next_batch(ctx, max_rows)?;
            if input.is_empty() {
                return Ok(crate::RowBatch::new(self.cols.len()));
            }
            let mut out = crate::RowBatch::with_capacity(self.cols.len(), input.len());
            for row in input.iter() {
                if self.dedup {
                    let key: Vec<u64> = self.cols.iter().map(|&c| row[c].in_).collect();
                    if self.last.as_ref() == Some(&key) {
                        continue;
                    }
                    self.last = Some(key);
                }
                out.push_row_iter(self.cols.iter().map(|&c| row[c].clone()));
            }
            if !out.is_empty() {
                return Ok(out);
            }
        }
    }
}

/// Emits exactly one empty row — the nullary "true" relation, and the seed
/// left input for building join chains.
pub struct SingletonOp {
    emitted: bool,
}

impl SingletonOp {
    /// Creates the one-empty-row operator.
    pub fn new() -> SingletonOp {
        SingletonOp { emitted: false }
    }
}

impl Default for SingletonOp {
    fn default() -> Self {
        Self::new()
    }
}

impl Operator for SingletonOp {
    fn open(&mut self, _ctx: &ExecContext<'_>) -> Result<()> {
        self.emitted = false;
        Ok(())
    }

    fn next(&mut self, _ctx: &ExecContext<'_>) -> Result<Option<Row>> {
        if self.emitted {
            Ok(None)
        } else {
            self.emitted = true;
            Ok(Some(Vec::new()))
        }
    }

    fn close(&mut self) {}

    fn name(&self) -> &'static str {
        "singleton"
    }
}

/// Stops after `limit` rows — the early exit for existential (nullary
/// relfor) checks.
pub struct LimitOp {
    input: Box<dyn Operator>,
    limit: usize,
    seen: usize,
}

impl LimitOp {
    /// Caps `input` at `limit` rows.
    pub fn new(input: Box<dyn Operator>, limit: usize) -> LimitOp {
        LimitOp {
            input,
            limit,
            seen: 0,
        }
    }
}

impl Operator for LimitOp {
    fn open(&mut self, ctx: &ExecContext<'_>) -> Result<()> {
        self.seen = 0;
        self.input.open(ctx)
    }

    fn next(&mut self, ctx: &ExecContext<'_>) -> Result<Option<Row>> {
        if self.seen >= self.limit {
            return Ok(None);
        }
        match self.input.next(ctx)? {
            Some(row) => {
                self.seen += 1;
                Ok(Some(row))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self) {
        self.input.close();
    }

    fn name(&self) -> &'static str {
        "limit"
    }
}

/// Emits a fixed set of rows (testing, and re-play of tiny materialized
/// results).
pub struct RowsOp {
    rows: Vec<Row>,
    pos: usize,
}

impl RowsOp {
    /// Wraps a fixed row set.
    pub fn new(rows: Vec<Row>) -> RowsOp {
        RowsOp { rows, pos: 0 }
    }
}

impl Operator for RowsOp {
    fn open(&mut self, _ctx: &ExecContext<'_>) -> Result<()> {
        self.pos = 0;
        Ok(())
    }

    fn next(&mut self, _ctx: &ExecContext<'_>) -> Result<Option<Row>> {
        if self.pos < self.rows.len() {
            let row = self.rows[self.pos].clone();
            self.pos += 1;
            Ok(Some(row))
        } else {
            Ok(None)
        }
    }

    fn close(&mut self) {}

    fn name(&self) -> &'static str {
        "rows"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute_all, Bindings, ExecContext};
    use xmldb_storage::Env;
    use xmldb_xasr::{shred_document, NodeTuple, NodeType};

    fn t(in_: u64) -> NodeTuple {
        NodeTuple {
            in_,
            out: in_ + 1,
            parent_in: 0,
            kind: NodeType::Element,
            value: Some("x".into()),
        }
    }

    fn ctx_fixture() -> (Env, xmldb_xasr::XasrStore) {
        let env = Env::memory();
        let store = shred_document(&env, "f", "<a/>").unwrap();
        (env, store)
    }

    #[test]
    fn project_dedup_one_pass() {
        let (_e, store) = ctx_fixture();
        let binds = Bindings::new();
        let ctx = ExecContext::new(&store, &binds);
        // Rows sorted on col 0 with adjacent duplicates.
        let rows = vec![
            vec![t(2), t(5)],
            vec![t(2), t(9)],
            vec![t(4), t(5)],
            vec![t(4), t(9)],
        ];
        let mut op = ProjectOp::new(Box::new(RowsOp::new(rows.clone())), vec![0], true);
        let out = execute_all(&mut op, &ctx).unwrap();
        assert_eq!(out.iter().map(|r| r[0].in_).collect::<Vec<_>>(), vec![2, 4]);
        // Without dedup all four survive (projected to width 1).
        let mut op = ProjectOp::new(Box::new(RowsOp::new(rows)), vec![0], false);
        assert_eq!(execute_all(&mut op, &ctx).unwrap().len(), 4);
    }

    #[test]
    fn project_reorders_columns() {
        let (_e, store) = ctx_fixture();
        let binds = Bindings::new();
        let ctx = ExecContext::new(&store, &binds);
        let rows = vec![vec![t(1), t(2), t(3)]];
        let mut op = ProjectOp::new(Box::new(RowsOp::new(rows)), vec![2, 0], false);
        let out = execute_all(&mut op, &ctx).unwrap();
        assert_eq!(out[0].iter().map(|t| t.in_).collect::<Vec<_>>(), vec![3, 1]);
    }

    #[test]
    fn singleton_and_limit() {
        let (_e, store) = ctx_fixture();
        let binds = Bindings::new();
        let ctx = ExecContext::new(&store, &binds);
        let mut s = SingletonOp::new();
        assert_eq!(
            execute_all(&mut s, &ctx).unwrap(),
            vec![Vec::<NodeTuple>::new()]
        );
        let rows = vec![vec![t(1)], vec![t(2)], vec![t(3)]];
        let mut l = LimitOp::new(Box::new(RowsOp::new(rows)), 2);
        assert_eq!(execute_all(&mut l, &ctx).unwrap().len(), 2);
    }

    #[test]
    fn nullary_dedup_keeps_single_row() {
        // Projecting everything away with dedup = the exists check: many
        // input rows collapse to one empty row.
        let (_e, store) = ctx_fixture();
        let binds = Bindings::new();
        let ctx = ExecContext::new(&store, &binds);
        let rows = vec![vec![t(1)], vec![t(2)], vec![t(3)]];
        let mut op = ProjectOp::new(Box::new(RowsOp::new(rows)), vec![], true);
        let out = execute_all(&mut op, &ctx).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].is_empty());
    }
}
