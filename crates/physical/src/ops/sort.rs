//! Sort and materialization operators.

use crate::exec::{ExecContext, Operator};
use crate::row::{decode_row, encode_row, Row};
use crate::{Error, Result};
use xmldb_storage::{HeapFile, SortedRecords};

/// Default sort memory budget (run-generation buffer).
const SORT_BUDGET: usize = 2 << 20;

/// External sort on the `in` values of key columns — approach (a) of the
/// ordering discussion: restore hierarchical document order after a
/// non-order-preserving plan (e.g. one using [`super::BlockNestedLoopJoinOp`]).
pub struct SortOp {
    input: Box<dyn Operator>,
    key_cols: Vec<usize>,
    sorted: Option<SortedRecords>,
}

impl SortOp {
    /// Sorts `input` by the `in` values of `key_cols`.
    pub fn new(input: Box<dyn Operator>, key_cols: Vec<usize>) -> SortOp {
        SortOp {
            input,
            key_cols,
            sorted: None,
        }
    }
}

impl Operator for SortOp {
    fn open(&mut self, ctx: &ExecContext<'_>) -> Result<()> {
        self.input.open(ctx)?;
        // Records are prefixed with the fixed-width sort key so the sorter
        // can compare bytes directly.
        let key_width = self.key_cols.len() * 8;
        // The sorter accounts its buffer against the query's governor:
        // budget pressure forces early spills instead of unbounded growth.
        let mut sorter = xmldb_storage::ExternalSorter::with_governor(
            ctx.store.env(),
            SORT_BUDGET,
            ctx.governor.clone(),
            move |a, b| a[..key_width].cmp(&b[..key_width]),
        );
        while let Some(row) = self.input.next(ctx)? {
            ctx.governor.check()?;
            let mut rec = Vec::with_capacity(key_width + 32);
            for &c in &self.key_cols {
                rec.extend_from_slice(&row[c].in_.to_be_bytes());
            }
            rec.extend_from_slice(&encode_row(&row));
            sorter.push(rec)?;
        }
        self.input.close();
        self.sorted = Some(sorter.finish()?);
        Ok(())
    }

    fn next(&mut self, _ctx: &ExecContext<'_>) -> Result<Option<Row>> {
        let sorted = self
            .sorted
            .as_mut()
            .ok_or_else(|| Error::Xasr("sort not open".into()))?;
        let key_width = self.key_cols.len() * 8;
        match sorted.next() {
            Some(rec) => {
                let rec = rec?;
                Ok(Some(decode_row(&rec[key_width..])?))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self) {
        self.sorted = None;
    }

    fn name(&self) -> &'static str {
        "sort"
    }
}

/// Materializes its input into a scratch heap file on first open, then
/// streams from disk — including on re-opens, making any subtree cheaply
/// re-iterable (the milestone-3 "write to disk each intermediate result,
/// and re-read it whenever necessary as the input of a subsequent
/// operation").
pub struct MaterializeOp {
    input: Box<dyn Operator>,
    heap: Option<HeapFile>,
    /// Cursor: (data page index, offset within the page's records).
    page: u64,
    buffered: Vec<Vec<u8>>,
    buffer_pos: usize,
}

impl MaterializeOp {
    /// Materializes `input` into a scratch file on first open.
    pub fn new(input: Box<dyn Operator>) -> MaterializeOp {
        MaterializeOp {
            input,
            heap: None,
            page: 0,
            buffered: Vec::new(),
            buffer_pos: 0,
        }
    }
}

impl Operator for MaterializeOp {
    fn open(&mut self, ctx: &ExecContext<'_>) -> Result<()> {
        if self.heap.is_none() {
            let mut heap = HeapFile::temp(ctx.store.env())?;
            self.input.open(ctx)?;
            while let Some(row) = self.input.next(ctx)? {
                ctx.governor.check()?;
                heap.append(&encode_row(&row))?;
            }
            self.input.close();
            self.heap = Some(heap);
        }
        self.page = 0;
        self.buffered.clear();
        self.buffer_pos = 0;
        Ok(())
    }

    fn next(&mut self, _ctx: &ExecContext<'_>) -> Result<Option<Row>> {
        let heap = self
            .heap
            .as_ref()
            .ok_or_else(|| Error::Xasr("materialize not open".into()))?;
        loop {
            if self.buffer_pos < self.buffered.len() {
                let rec = &self.buffered[self.buffer_pos];
                self.buffer_pos += 1;
                return Ok(Some(decode_row(rec)?));
            }
            if self.page >= heap.data_pages()? {
                return Ok(None);
            }
            self.buffered = heap.page_records(self.page)?;
            self.buffer_pos = 0;
            self.page += 1;
        }
    }

    fn close(&mut self) {
        // Keep the heap: re-open streams it again without recompute. It is
        // dropped (and its scratch file deleted) with the operator.
        self.buffered.clear();
        self.buffer_pos = 0;
    }

    fn name(&self) -> &'static str {
        "materialize"
    }
}

/// The student workaround the paper describes: "several students chose to
/// enforce sorted intermediate results by constructing a clustered B-tree
/// index on the input to the projection operator, thus retrieving the
/// results in the proper order. While this is certainly not an elegant
/// solution, we accepted it as a creative workaround."
///
/// Rows are inserted into a scratch B+-tree keyed by the sort columns (plus
/// a disambiguating sequence number, since B+-tree keys are unique), then
/// streamed back in key order. Compare against [`SortOp`] in the `ablations`
/// bench to see why the external sort is the by-the-book choice.
pub struct BTreeSortOp {
    input: Box<dyn Operator>,
    key_cols: Vec<usize>,
    tree: Option<xmldb_storage::BTree>,
    /// Resume key for streaming the sorted output.
    cursor_after: Option<Vec<u8>>,
}

impl BTreeSortOp {
    /// Sorts `input` via a scratch B+-tree keyed on `key_cols`.
    pub fn new(input: Box<dyn Operator>, key_cols: Vec<usize>) -> BTreeSortOp {
        BTreeSortOp {
            input,
            key_cols,
            tree: None,
            cursor_after: None,
        }
    }
}

impl Operator for BTreeSortOp {
    fn open(&mut self, ctx: &ExecContext<'_>) -> Result<()> {
        self.input.open(ctx)?;
        let mut tree = xmldb_storage::BTree::temp(ctx.store.env())?;
        let mut seq = 0u64;
        while let Some(row) = self.input.next(ctx)? {
            ctx.governor.check()?;
            let mut key = Vec::with_capacity(self.key_cols.len() * 8 + 8);
            for &c in &self.key_cols {
                key.extend_from_slice(&row[c].in_.to_be_bytes());
            }
            // Unique suffix: duplicates must all survive (bag semantics).
            key.extend_from_slice(&seq.to_be_bytes());
            seq += 1;
            tree.insert(&key, &encode_row(&row))?;
        }
        self.input.close();
        self.tree = Some(tree);
        self.cursor_after = None;
        Ok(())
    }

    fn next(&mut self, _ctx: &ExecContext<'_>) -> Result<Option<Row>> {
        let tree = self
            .tree
            .as_ref()
            .ok_or_else(|| Error::Xasr("btree-sort not open".into()))?;
        let lower = match &self.cursor_after {
            Some(k) => std::ops::Bound::Excluded(k.as_slice()),
            None => std::ops::Bound::Unbounded,
        };
        match tree.range(lower, std::ops::Bound::Unbounded).next() {
            Some(entry) => {
                let (key, value) = entry?;
                self.cursor_after = Some(key);
                Ok(Some(decode_row(&value)?))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self) {
        self.tree = None;
        self.cursor_after = None;
    }

    fn name(&self) -> &'static str {
        "btree-sort"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute_all, Bindings};
    use crate::ops::{Probe, RowsOp, ScanOp};
    use xmldb_storage::Env;
    use xmldb_xasr::{shred_document, NodeTuple, NodeType};

    fn t(in_: u64) -> NodeTuple {
        NodeTuple {
            in_,
            out: in_ + 1,
            parent_in: 0,
            kind: NodeType::Element,
            value: Some("x".into()),
        }
    }

    fn fixture() -> (Env, xmldb_xasr::XasrStore) {
        let env = Env::memory();
        let store = shred_document(&env, "f", "<a><b/><c/></a>").unwrap();
        (env, store)
    }

    #[test]
    fn sort_restores_order() {
        let (_e, store) = fixture();
        let binds = Bindings::new();
        let ctx = ExecContext::new(&store, &binds);
        let rows = vec![
            vec![t(9), t(1)],
            vec![t(2), t(5)],
            vec![t(9), t(0)],
            vec![t(2), t(3)],
        ];
        let mut op = SortOp::new(Box::new(RowsOp::new(rows)), vec![0, 1]);
        let out = execute_all(&mut op, &ctx).unwrap();
        let keys: Vec<(u64, u64)> = out.iter().map(|r| (r[0].in_, r[1].in_)).collect();
        assert_eq!(keys, vec![(2, 3), (2, 5), (9, 0), (9, 1)]);
    }

    #[test]
    fn sort_large_input_spills() {
        let (_e, store) = fixture();
        let binds = Bindings::new();
        let ctx = ExecContext::new(&store, &binds);
        let n = 20_000u64;
        let rows: Vec<Row> = (0..n).map(|i| vec![t((i * 7919 + 13) % n)]).collect();
        let mut op = SortOp::new(Box::new(RowsOp::new(rows)), vec![0]);
        let out = execute_all(&mut op, &ctx).unwrap();
        assert_eq!(out.len(), n as usize);
        assert!(out.windows(2).all(|w| w[0][0].in_ <= w[1][0].in_));
    }

    #[test]
    fn materialize_replays_without_recompute() {
        let (_e, store) = fixture();
        let binds = Bindings::with_root(&store).unwrap();
        let ctx = ExecContext::new(&store, &binds);
        let scan = ScanOp::new(Probe::Full, vec![]);
        let mut op = MaterializeOp::new(Box::new(scan));
        let first = execute_all(&mut op, &ctx).unwrap();
        assert_eq!(first.len(), 4); // root, a, b, c
                                    // Re-execution streams from the scratch file, same contents.
        let io_before = store.env().io_stats();
        let second = execute_all(&mut op, &ctx).unwrap();
        assert_eq!(first, second);
        let io_after = store.env().io_stats();
        // Replay touched pages (reads) but performed no fresh index scans —
        // at minimum it did not grow the store; just sanity-check it read
        // something through the pool.
        assert!(io_after.requests() >= io_before.requests());
    }

    #[test]
    fn materialize_empty_input() {
        let (_e, store) = fixture();
        let binds = Bindings::new();
        let ctx = ExecContext::new(&store, &binds);
        let mut op = MaterializeOp::new(Box::new(RowsOp::new(vec![])));
        assert!(execute_all(&mut op, &ctx).unwrap().is_empty());
        assert!(execute_all(&mut op, &ctx).unwrap().is_empty());
    }

    #[test]
    fn btree_sort_matches_external_sort() {
        let (_e, store) = fixture();
        let binds = Bindings::new();
        let ctx = ExecContext::new(&store, &binds);
        let rows = vec![
            vec![t(9), t(1)],
            vec![t(2), t(5)],
            vec![t(9), t(1)], // duplicate row must survive
            vec![t(2), t(3)],
        ];
        let mut external = SortOp::new(Box::new(RowsOp::new(rows.clone())), vec![0, 1]);
        let mut btree = BTreeSortOp::new(Box::new(RowsOp::new(rows)), vec![0, 1]);
        let a = execute_all(&mut external, &ctx).unwrap();
        let b = execute_all(&mut btree, &ctx).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        // Re-open restarts the stream.
        let c = execute_all(&mut btree, &ctx).unwrap();
        assert_eq!(b, c);
    }

    #[test]
    fn btree_sort_empty() {
        let (_e, store) = fixture();
        let binds = Bindings::new();
        let ctx = ExecContext::new(&store, &binds);
        let mut op = BTreeSortOp::new(Box::new(RowsOp::new(vec![])), vec![0]);
        assert!(execute_all(&mut op, &ctx).unwrap().is_empty());
    }

    #[test]
    fn sort_empty_input() {
        let (_e, store) = fixture();
        let binds = Bindings::new();
        let ctx = ExecContext::new(&store, &binds);
        let mut op = SortOp::new(Box::new(RowsOp::new(vec![])), vec![0]);
        assert!(execute_all(&mut op, &ctx).unwrap().is_empty());
    }

    #[test]
    fn sort_under_memory_budget_spills_and_completes() {
        use xmldb_storage::Governor;
        let (_e, store) = fixture();
        let binds = Bindings::new();
        // A budget far below the rows' footprint: the sort must spill to
        // disk and still produce the full ordered output — never an error.
        let gov = Governor::with_limits(None, Some(4096));
        let ctx = ExecContext::with_governor(&store, &binds, gov.clone());
        let n = 2000u64;
        let rows: Vec<Row> = (0..n).map(|i| vec![t((i * 7919 + 13) % n)]).collect();
        let mut op = SortOp::new(Box::new(RowsOp::new(rows)), vec![0]);
        let out = execute_all(&mut op, &ctx).unwrap();
        assert_eq!(out.len(), n as usize);
        assert!(out.windows(2).all(|w| w[0][0].in_ <= w[1][0].in_));
        let snap = gov.snapshot();
        assert!(snap.spill_count > 0, "budget pressure must have spilled");
        assert!(snap.peak_bytes <= 4096, "peak {}", snap.peak_bytes);
        assert_eq!(gov.mem_used(), 0, "reservations released after close");
    }

    #[test]
    fn cancellation_mid_sort_leaves_no_temp_files() {
        use xmldb_storage::Governor;
        let (env, store) = fixture();
        let binds = Bindings::new();
        // Small budget: runs spill to disk before the scripted cancellation
        // fires, so the test proves spill files are cleaned up on unwind.
        let gov = Governor::with_limits(None, Some(2048));
        gov.trip_cancel_after_checks(300);
        let ctx = ExecContext::with_governor(&store, &binds, gov.clone());
        let rows: Vec<Row> = (0..500u64).map(|i| vec![t(i)]).collect();
        let mut op = SortOp::new(Box::new(RowsOp::new(rows)), vec![0]);
        let err = execute_all(&mut op, &ctx).unwrap_err();
        assert!(
            matches!(err, Error::Storage(xmldb_storage::StorageError::Cancelled)),
            "{err}"
        );
        assert!(
            gov.snapshot().spill_count > 0,
            "test must cancel after spills happened"
        );
        drop(op);
        assert!(
            env.temp_files().is_empty(),
            "spill files leaked: {:?}",
            env.temp_files()
        );
        assert_eq!(env.pinned_frames(), 0);
    }

    #[test]
    fn cancellation_mid_materialize_cleans_up() {
        use xmldb_storage::Governor;
        let (env, store) = fixture();
        let binds = Bindings::new();
        let gov = Governor::unlimited();
        gov.trip_cancel_after_checks(10);
        let ctx = ExecContext::with_governor(&store, &binds, gov);
        let rows: Vec<Row> = (0..100u64).map(|i| vec![t(i)]).collect();
        let mut op = MaterializeOp::new(Box::new(RowsOp::new(rows)));
        assert!(execute_all(&mut op, &ctx).is_err());
        drop(op);
        assert!(env.temp_files().is_empty());
        assert_eq!(env.pinned_frames(), 0);
    }
}
