//! EXPLAIN ANALYZE instrumentation: a decorator that wraps any volcano
//! operator and accumulates actual row counts and wall-clock time.
//!
//! The counters live behind shared handles ([`SharedOpMetrics`]) owned by
//! the *plan*, not the operator instance: a relfor's source plan is
//! instantiated once per outer binding environment, and the decorator of
//! each fresh instantiation accumulates into the same slot. `opens` thus
//! counts re-executions, and `rows` is the total across all of them —
//! exactly the numbers needed to spot a mis-planned inner loop.

use crate::exec::{ExecContext, Operator};
use crate::row::Row;
use crate::Result;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

/// Actual execution counters for one plan operator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpMetrics {
    /// Rows produced (`Ok(Some(_))` returns from `next`).
    pub rows: u64,
    /// `open` calls, across every instantiation and re-open.
    pub opens: u64,
    /// Wall time spent inside `open`, inclusive of children.
    pub open_nanos: u64,
    /// Wall time spent inside `next`, inclusive of children.
    pub next_nanos: u64,
}

impl OpMetrics {
    /// Total wall time (open + next) in milliseconds.
    pub fn total_ms(&self) -> f64 {
        (self.open_nanos + self.next_nanos) as f64 / 1e6
    }
}

/// A shared handle onto one operator's counters: the plan holds one per
/// node, every instantiation of that node updates it.
pub type SharedOpMetrics = Rc<RefCell<OpMetrics>>;

/// Decorates an operator with counter collection. Timing is inclusive of
/// children (the usual EXPLAIN ANALYZE convention): subtract a child's
/// total from its parent's for exclusive time.
pub struct AnalyzedOperator {
    inner: Box<dyn Operator>,
    metrics: SharedOpMetrics,
}

impl AnalyzedOperator {
    /// Wraps `inner`, accumulating into `metrics`.
    pub fn new(inner: Box<dyn Operator>, metrics: SharedOpMetrics) -> AnalyzedOperator {
        AnalyzedOperator { inner, metrics }
    }
}

impl Operator for AnalyzedOperator {
    fn open(&mut self, ctx: &ExecContext<'_>) -> Result<()> {
        let started = Instant::now();
        let result = self.inner.open(ctx);
        let mut m = self.metrics.borrow_mut();
        m.opens += 1;
        m.open_nanos += started.elapsed().as_nanos() as u64;
        result
    }

    fn next(&mut self, ctx: &ExecContext<'_>) -> Result<Option<Row>> {
        let started = Instant::now();
        let result = self.inner.next(ctx);
        let mut m = self.metrics.borrow_mut();
        m.next_nanos += started.elapsed().as_nanos() as u64;
        if matches!(result, Ok(Some(_))) {
            m.rows += 1;
        }
        result
    }

    fn close(&mut self) {
        self.inner.close();
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn next_batch(&mut self, ctx: &ExecContext<'_>, max_rows: usize) -> Result<crate::RowBatch> {
        // Forwarded (not shimmed): the inner operator's vectorized path
        // stays active under EXPLAIN ANALYZE, and timings reflect it.
        let started = Instant::now();
        let result = self.inner.next_batch(ctx, max_rows);
        let mut m = self.metrics.borrow_mut();
        m.next_nanos += started.elapsed().as_nanos() as u64;
        if let Ok(batch) = &result {
            m.rows += batch.len() as u64;
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute_all, Bindings};
    use crate::ops::SingletonOp;
    use xmldb_storage::Env;
    use xmldb_xasr::shred_document;

    #[test]
    fn counts_rows_and_opens_across_reexecutions() {
        let env = Env::memory();
        let store = shred_document(&env, "d", "<a/>").unwrap();
        let bindings = Bindings::new();
        let ctx = ExecContext::new(&store, &bindings);
        let metrics: SharedOpMetrics = SharedOpMetrics::default();
        // Two separate instantiations feed the same slot, as relfor
        // re-instantiations do.
        for _ in 0..2 {
            let mut op = AnalyzedOperator::new(Box::new(SingletonOp::new()), Rc::clone(&metrics));
            let rows = execute_all(&mut op, &ctx).unwrap();
            assert_eq!(rows.len(), 1);
            assert_eq!(op.name(), SingletonOp::new().name());
        }
        let m = *metrics.borrow();
        assert_eq!(m.rows, 2);
        assert_eq!(m.opens, 2);
    }
}
