//! Resolved predicates: [`xmldb_algebra::AtomicPred`] with column
//! references bound to row positions. Produced by the planner, evaluated
//! per row here.

use crate::exec::Bindings;
use crate::{Error, Result};
use xmldb_algebra::{Attr, CmpOp};
use xmldb_xasr::{NodeTuple, NodeType};
use xmldb_xq::Var;

/// One side of a resolved comparison.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum PhysOperand {
    /// A field of the tuple at row position `pos`.
    Col { pos: usize, attr: Attr },
    /// A field of an externally bound variable's tuple.
    Ext { var: Var, attr: Attr },
    /// A numeric (in-value) constant.
    Num(u64),
    /// A string constant.
    Str(String),
    /// A node-type constant.
    Kind(NodeType),
}

/// A resolved atomic predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysPred {
    /// Comparison operator.
    pub op: CmpOp,
    /// Left operand.
    pub lhs: PhysOperand,
    /// Right operand.
    pub rhs: PhysOperand,
    /// XQ `=` semantics: error if a compared node is not a text node.
    pub strict_text: bool,
}

/// A runtime comparison value.
#[derive(Debug, Clone, PartialEq)]
enum Value<'a> {
    Num(u64),
    Str(Option<&'a str>),
    Kind(NodeType),
}

impl PhysPred {
    /// Evaluates the predicate over `row` and `bindings`. Takes a tuple
    /// slice so batch rows evaluate without materializing a `Vec`.
    pub fn eval(&self, row: &[NodeTuple], bindings: &Bindings) -> Result<bool> {
        let lhs = resolve(&self.lhs, row, bindings, self.strict_text)?;
        let rhs = resolve(&self.rhs, row, bindings, self.strict_text)?;
        let ord = match (&lhs, &rhs) {
            (Value::Num(a), Value::Num(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => match (a, b) {
                // SQL NULL semantics: comparisons with the root's NULL
                // value never hold.
                (None, _) | (_, None) => return Ok(false),
                (Some(a), Some(b)) => a.cmp(b),
            },
            (Value::Kind(a), Value::Kind(b)) => {
                return Ok(match self.op {
                    CmpOp::Eq => a == b,
                    // Kinds have no order; Lt/Gt never hold.
                    CmpOp::Lt | CmpOp::Gt => false,
                });
            }
            // Type-mismatched comparisons (planner bug or root NULL):
            // never hold.
            _ => return Ok(false),
        };
        Ok(match self.op {
            CmpOp::Eq => ord == std::cmp::Ordering::Equal,
            CmpOp::Lt => ord == std::cmp::Ordering::Less,
            CmpOp::Gt => ord == std::cmp::Ordering::Greater,
        })
    }
}

fn resolve<'a>(
    operand: &'a PhysOperand,
    row: &'a [NodeTuple],
    bindings: &'a Bindings,
    strict_text: bool,
) -> Result<Value<'a>> {
    match operand {
        PhysOperand::Num(n) => Ok(Value::Num(*n)),
        PhysOperand::Str(s) => Ok(Value::Str(Some(s))),
        PhysOperand::Kind(k) => Ok(Value::Kind(*k)),
        PhysOperand::Col { pos, attr } => {
            let tuple = row
                .get(*pos)
                .ok_or_else(|| Error::Xasr(format!("row has no column {pos}")))?;
            field(tuple, *attr, strict_text)
        }
        PhysOperand::Ext { var, attr } => {
            let tuple = bindings
                .get(var)
                .ok_or_else(|| Error::UnboundVariable(var.to_string()))?;
            field(tuple, *attr, strict_text)
        }
    }
}

fn field(tuple: &NodeTuple, attr: Attr, strict_text: bool) -> Result<Value<'_>> {
    Ok(match attr {
        Attr::In => Value::Num(tuple.in_),
        Attr::Out => Value::Num(tuple.out),
        Attr::ParentIn => Value::Num(tuple.parent_in),
        Attr::Type => Value::Kind(tuple.kind),
        Attr::Value => {
            if strict_text && tuple.kind != NodeType::Text {
                return Err(Error::NonTextComparison {
                    kind: tuple.kind,
                    value: tuple.value.clone(),
                });
            }
            Value::Str(tuple.value.as_deref())
        }
    })
}

/// Evaluates a conjunction.
pub fn eval_all(preds: &[PhysPred], row: &[NodeTuple], bindings: &Bindings) -> Result<bool> {
    for p in preds {
        if !p.eval(row, bindings)? {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Row;

    fn elem(in_: u64, out: u64, parent: u64, label: &str) -> NodeTuple {
        NodeTuple {
            in_,
            out,
            parent_in: parent,
            kind: NodeType::Element,
            value: Some(label.into()),
        }
    }

    fn text(in_: u64, content: &str) -> NodeTuple {
        NodeTuple {
            in_,
            out: in_ + 1,
            parent_in: 0,
            kind: NodeType::Text,
            value: Some(content.into()),
        }
    }

    fn col(pos: usize, attr: Attr) -> PhysOperand {
        PhysOperand::Col { pos, attr }
    }

    #[test]
    fn structural_predicates() {
        let row: Row = vec![elem(2, 17, 1, "journal"), elem(4, 7, 3, "name")];
        let binds = Bindings::new();
        // Descendant: J.in < N.in ∧ N.out < J.out.
        let p1 = PhysPred {
            op: CmpOp::Lt,
            lhs: col(0, Attr::In),
            rhs: col(1, Attr::In),
            strict_text: false,
        };
        let p2 = PhysPred {
            op: CmpOp::Lt,
            lhs: col(1, Attr::Out),
            rhs: col(0, Attr::Out),
            strict_text: false,
        };
        assert!(eval_all(&[p1, p2], &row, &binds).unwrap());
        // Child of root: parent_in = 1.
        let p = PhysPred {
            op: CmpOp::Eq,
            lhs: col(0, Attr::ParentIn),
            rhs: PhysOperand::Num(1),
            strict_text: false,
        };
        assert!(p.eval(&row, &binds).unwrap());
    }

    #[test]
    fn label_and_kind_tests() {
        let row: Row = vec![elem(2, 17, 1, "journal")];
        let binds = Bindings::new();
        let is_elem = PhysPred {
            op: CmpOp::Eq,
            lhs: col(0, Attr::Type),
            rhs: PhysOperand::Kind(NodeType::Element),
            strict_text: false,
        };
        assert!(is_elem.eval(&row, &binds).unwrap());
        let label = PhysPred {
            op: CmpOp::Eq,
            lhs: col(0, Attr::Value),
            rhs: PhysOperand::Str("journal".into()),
            strict_text: false,
        };
        assert!(label.eval(&row, &binds).unwrap());
        let wrong = PhysPred {
            op: CmpOp::Eq,
            lhs: col(0, Attr::Value),
            rhs: PhysOperand::Str("title".into()),
            strict_text: false,
        };
        assert!(!wrong.eval(&row, &binds).unwrap());
    }

    #[test]
    fn strict_text_errors_on_elements() {
        let row: Row = vec![elem(2, 17, 1, "journal")];
        let binds = Bindings::new();
        let p = PhysPred {
            op: CmpOp::Eq,
            lhs: col(0, Attr::Value),
            rhs: PhysOperand::Str("journal".into()),
            strict_text: true,
        };
        assert!(matches!(
            p.eval(&row, &binds),
            Err(Error::NonTextComparison { .. })
        ));
    }

    #[test]
    fn strict_text_compares_text_nodes() {
        let row: Row = vec![text(5, "Ana"), text(9, "Ana")];
        let binds = Bindings::new();
        let p = PhysPred {
            op: CmpOp::Eq,
            lhs: col(0, Attr::Value),
            rhs: col(1, Attr::Value),
            strict_text: true,
        };
        assert!(p.eval(&row, &binds).unwrap());
        let row2: Row = vec![text(5, "Ana"), text(9, "Bob")];
        assert!(!p.eval(&row2, &binds).unwrap());
    }

    #[test]
    fn external_bindings_resolved() {
        let mut binds = Bindings::new();
        binds.bind(Var::named("x"), elem(2, 17, 1, "journal"));
        let row: Row = vec![elem(4, 7, 3, "name")];
        // N.in > $x.in (descendant lower bound via vartuple).
        let p = PhysPred {
            op: CmpOp::Gt,
            lhs: col(0, Attr::In),
            rhs: PhysOperand::Ext {
                var: Var::named("x"),
                attr: Attr::In,
            },
            strict_text: false,
        };
        assert!(p.eval(&row, &binds).unwrap());
        let missing = PhysPred {
            op: CmpOp::Eq,
            lhs: PhysOperand::Ext {
                var: Var::named("nope"),
                attr: Attr::In,
            },
            rhs: PhysOperand::Num(1),
            strict_text: false,
        };
        assert!(matches!(
            missing.eval(&row, &binds),
            Err(Error::UnboundVariable(_))
        ));
    }

    #[test]
    fn null_value_comparisons_are_false() {
        let root = NodeTuple {
            in_: 1,
            out: 10,
            parent_in: 0,
            kind: NodeType::Root,
            value: None,
        };
        let row: Row = vec![root];
        let binds = Bindings::new();
        let p = PhysPred {
            op: CmpOp::Eq,
            lhs: col(0, Attr::Value),
            rhs: PhysOperand::Str("x".into()),
            strict_text: false,
        };
        assert!(!p.eval(&row, &binds).unwrap());
    }
}
