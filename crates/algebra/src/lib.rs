#![warn(missing_docs)]

//! TPM — "the professor's mistake" — the algebra of milestone 3.
//!
//! TPM is "not a query algebra in the usual sense", but it gracefully
//! reduces XQ optimization to relational-algebra optimization: `for`-loops
//! and rewritable `if`-conditions become [`ir::Psx`] expressions
//! (project–select–product normal form) under a "super-for-loop" operator
//! [`ir::Tpm::RelFor`]:
//!
//! ```text
//! relfor vartuple in xasr-alg return expression
//! ```
//!
//! This crate contains the *logical* layer:
//!
//! * [`ir`] — the TPM intermediate representation and its pretty-printer
//!   (whose output reproduces Figures 3–6),
//! * [`compile`] — the XQ→TPM rewrite rules for `for`-loops and
//!   if-conditions (`some`/`and`/equality only; `or`/`not` fall back to the
//!   interpreter, exactly as the paper restricts),
//! * [`rewrite`] — relfor merging (with the paper's strict rule: no merge
//!   across an intervening constructor) and redundant-relation elimination
//!   (the "N1.in = $j = J.in, so we can safely drop N1" step, generalized
//!   to the vartuple-out extension the paper proposes),
//! * [`ordering`] — the hierarchical-document-order analysis: which
//!   relation orders allow one-pass duplicate-eliminating projection
//!   without a sort operator.
//!
//! Physical planning (join algorithms, index selection, cost) lives in
//! `xmldb-optimizer`; execution in `xmldb-physical`.

pub mod compile;
pub mod ir;
pub mod ordering;
pub mod rewrite;

pub use compile::compile_query;
pub use ir::{AtomicPred, Attr, CmpOp, ColRef, Operand, Psx, Tpm};
