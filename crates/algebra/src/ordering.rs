//! The Role of Order: which evaluation plans keep relfor results "sorted
//! hierarchically in document order" so the final projection can remove
//! duplicates in one pass, without a sort operator.
//!
//! A relation `R` of tuples of node in-values is *sorted hierarchically in
//! document order* if for all tᵢ, tⱼ ∈ R with i < j there is an attribute
//! Aₖ such that tᵢ.Aₗ = tⱼ.Aₗ for all l < k and tᵢ.Aₖ < tⱼ.Aₖ — i.e.
//! lexicographic order of the in-value columns.
//!
//! The paper's "basic strategy which was implemented in the majority of the
//! student projects":
//!
//! 1. use only order-preserving physical operators (nested-loops join, not
//!    block-nested-loops join), and
//! 2. pick a join order in which every projection attribute `Aᵢ` comes from
//!    the `i`-th joined relation — then the intermediate result is sorted
//!    w.r.t. the projection attributes and projection can deduplicate in
//!    one pass.

use crate::ir::Psx;

/// Is `order` (a permutation of `psx.relations`) *projection-compatible*:
/// does the `i`-th projection column's relation appear at position `i`?
/// Non-projected relations may only follow all projected ones.
pub fn is_projection_compatible(psx: &Psx, order: &[String]) -> bool {
    if order.len() != psx.relations.len() {
        return false;
    }
    // Must be a permutation.
    for r in &psx.relations {
        if !order.contains(r) {
            return false;
        }
    }
    for (i, col) in psx.cols.iter().enumerate() {
        match order.get(i) {
            Some(alias) if *alias == col.alias => {}
            _ => return false,
        }
    }
    true
}

/// All projection-compatible orders of the PSX's relations (the space the
/// cost-based optimizer searches when it must avoid sorting). The projected
/// prefix is fixed; the unprojected relations permute freely after it.
pub fn projection_compatible_orders(psx: &Psx) -> Vec<Vec<String>> {
    let prefix: Vec<String> = psx.cols.iter().map(|c| c.alias.clone()).collect();
    // Duplicated producers (same relation projected twice) cannot prefix.
    {
        let mut seen = std::collections::HashSet::new();
        for alias in &prefix {
            if !seen.insert(alias) {
                return Vec::new();
            }
        }
    }
    if prefix.iter().any(|a| !psx.relations.contains(a)) {
        return Vec::new();
    }
    let rest: Vec<String> = psx
        .relations
        .iter()
        .filter(|r| !prefix.contains(r))
        .cloned()
        .collect();
    permutations(&rest)
        .into_iter()
        .map(|tail| prefix.iter().cloned().chain(tail).collect())
        .collect()
}

/// All permutations of `items` (the full join-order search space; PSX
/// expressions from real queries have few relations).
pub fn permutations(items: &[String]) -> Vec<Vec<String>> {
    if items.is_empty() {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for (i, first) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, first.clone());
            out.push(tail);
        }
    }
    out
}

/// Does projecting this PSX require duplicate elimination? Yes exactly when
/// some relation is not a projection producer (its bindings multiply rows
/// without appearing in the output — the Example 5 text-witness `T2`).
pub fn needs_dedup(psx: &Psx) -> bool {
    psx.relations
        .iter()
        .any(|r| psx.cols.iter().all(|c| &c.alias != r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_query;
    use crate::ir::Tpm;
    use crate::rewrite::{optimize, RewriteOptions};
    use xmldb_xq::parse;

    fn merged_psx(q: &str) -> Psx {
        let tpm = optimize(
            compile_query(&parse(q).unwrap()),
            &RewriteOptions::default(),
        );
        fn find(t: &Tpm) -> Option<&Psx> {
            match t {
                Tpm::RelFor { source, .. } => Some(source),
                Tpm::Constr { content, .. } => find(content),
                Tpm::Concat(parts) => parts.iter().find_map(find),
                _ => None,
            }
        }
        find(&tpm).expect("query has a relfor").clone()
    }

    #[test]
    fn example2_orders() {
        let psx =
            merged_psx("<names>{ for $j in /journal return for $n in $j//name return $n }</names>");
        // Two relations, both projected: only [J, N2] is compatible.
        let orders = projection_compatible_orders(&psx);
        assert_eq!(orders, vec![vec!["J".to_string(), "N2".to_string()]]);
        assert!(is_projection_compatible(&psx, &orders[0]));
        assert!(!is_projection_compatible(
            &psx,
            &["N2".to_string(), "J".to_string()]
        ));
        assert!(!needs_dedup(&psx));
    }

    #[test]
    fn example5_orders_and_dedup() {
        let psx = merged_psx(
            "<names>{ for $j in /journal return \
             if (some $t in $j//text() satisfies true()) \
             then for $n in $j//name return $n else () }</names>",
        );
        // Relations J, T2, N2; projected (J, N2). Compatible orders place
        // T2 last: exactly [J, N2, T2].
        let orders = projection_compatible_orders(&psx);
        assert_eq!(orders.len(), 1);
        assert_eq!(orders[0][0], "J");
        assert_eq!(orders[0][1], "N2");
        // The unprojected text witness forces duplicate elimination — the
        // paper's ordering discussion.
        assert!(needs_dedup(&psx));
        // The paper's counterexample order [J, T2, N2] is rejected: with T2
        // in the middle, (J.in, N2.in) pairs repeat non-adjacently.
        assert!(!is_projection_compatible(
            &psx,
            &["J".to_string(), "T2".to_string(), "N2".to_string()]
        ));
    }

    #[test]
    fn nullary_psx_all_orders_compatible() {
        let psx = Psx {
            cols: vec![],
            conjuncts: vec![],
            relations: vec!["A".into(), "B".into()],
        };
        let orders = projection_compatible_orders(&psx);
        assert_eq!(orders.len(), 2);
        assert!(needs_dedup(&psx));
    }

    #[test]
    fn permutation_count() {
        let items: Vec<String> = ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect();
        assert_eq!(permutations(&items).len(), 24);
        assert_eq!(permutations(&[]).len(), 1);
    }

    #[test]
    fn wrong_length_rejected() {
        let psx = Psx {
            cols: vec![],
            conjuncts: vec![],
            relations: vec!["A".into()],
        };
        assert!(!is_projection_compatible(&psx, &[]));
        assert!(!is_projection_compatible(&psx, &["B".to_string()]));
    }
}
