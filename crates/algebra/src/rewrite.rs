//! Logical TPM rewrites: relfor merging and redundant-relation elimination.

use crate::compile::substitute_var;
use crate::ir::{AtomicPred, Attr, CmpOp, Operand, Psx, Tpm};

/// Which rewrites to apply — the knobs that differentiate the Figure 7
/// engine configurations.
#[derive(Debug, Clone)]
pub struct RewriteOptions {
    /// Merge directly-nested relfors (the milestone 3 merging rule). The
    /// paper's strict restriction is built in: merging never crosses a
    /// constructor or text output.
    pub merge_relfors: bool,
    /// Drop relations equated to an external variable or to another
    /// relation's `in` column (the "N1.in = $j = J.in ⇒ drop N1" step and
    /// the vartuple-out extension).
    pub drop_redundant_relations: bool,
    /// The paper's proposed left-outer-join extension: merge a constructor
    /// sandwiched between two loops into a single outer-joined relfor,
    /// avoiding per-binding evaluation of the inner algebra expression.
    /// Applied only to the single-inner-relation shape; other shapes stay
    /// unmerged (the sound default).
    pub outer_join_constructors: bool,
}

impl Default for RewriteOptions {
    fn default() -> Self {
        RewriteOptions {
            merge_relfors: true,
            drop_redundant_relations: true,
            outer_join_constructors: false,
        }
    }
}

impl RewriteOptions {
    /// No rewrites at all (the naive milestone-3-without-optimizer engine).
    pub fn none() -> RewriteOptions {
        RewriteOptions {
            merge_relfors: false,
            drop_redundant_relations: false,
            outer_join_constructors: false,
        }
    }

    /// Everything on, including the left-outer-join extension (the
    /// milestone-4 engines).
    pub fn extended() -> RewriteOptions {
        RewriteOptions {
            outer_join_constructors: true,
            ..RewriteOptions::default()
        }
    }
}

/// Applies the enabled rewrites bottom-up until fixpoint.
pub fn optimize(tpm: Tpm, options: &RewriteOptions) -> Tpm {
    let mut current = tpm;
    loop {
        let next = pass(current.clone(), options);
        if next == current {
            return current;
        }
        current = next;
    }
}

fn pass(tpm: Tpm, options: &RewriteOptions) -> Tpm {
    match tpm {
        Tpm::Empty | Tpm::Text(_) | Tpm::VarOut(_) => tpm,
        Tpm::Concat(parts) => Tpm::concat(parts.into_iter().map(|p| pass(p, options)).collect()),
        Tpm::Constr { label, content } => Tpm::Constr {
            label,
            content: Box::new(pass(*content, options)),
        },
        Tpm::IfFallback { cond, body } => Tpm::IfFallback {
            cond,
            body: Box::new(pass(*body, options)),
        },
        Tpm::RelFor { vars, source, body } => {
            let body = pass(*body, options);
            let mut source = source;
            if options.drop_redundant_relations {
                source = drop_redundant(source);
            }
            // `relfor () in TRUE return β` is β.
            if vars.is_empty() && source == Psx::truth() {
                return body;
            }
            if options.merge_relfors {
                if let Tpm::RelFor {
                    vars: inner_vars,
                    source: inner_src,
                    body: inner_body,
                } = body
                {
                    let merged = merge_psx(&vars, &source, inner_vars.clone(), inner_src);
                    let mut all_vars = vars;
                    all_vars.extend(inner_vars);
                    return Tpm::RelFor {
                        vars: all_vars,
                        source: merged,
                        body: inner_body,
                    };
                }
            }
            // The left-outer-join extension: a constructor between two
            // loops blocks ordinary merging (empty elements must survive),
            // but an outer join preserves match-less outer bindings.
            if options.outer_join_constructors && !vars.is_empty() {
                if let Tpm::Constr { label, content } = &body {
                    if let Tpm::RelFor {
                        vars: ivars,
                        source: isource,
                        body: ibody,
                    } = content.as_ref()
                    {
                        if ivars.len() == 1 && isource.relations.len() == 1 {
                            let mut inner = isource.clone();
                            for (i, var) in vars.iter().enumerate() {
                                inner = substitute_var(inner, var, source.producer(i));
                            }
                            return Tpm::RelForOuter {
                                outer_vars: vars,
                                outer_source: source,
                                label: label.clone(),
                                inner_var: ivars[0].clone(),
                                inner_source: inner,
                                body: ibody.clone(),
                            };
                        }
                    }
                }
            }
            Tpm::RelFor {
                vars,
                source,
                body: Box::new(body),
            }
        }
        Tpm::RelForOuter {
            outer_vars,
            outer_source,
            label,
            inner_var,
            inner_source,
            body,
        } => Tpm::RelForOuter {
            outer_vars,
            outer_source,
            label,
            inner_var,
            inner_source,
            body: Box::new(pass(*body, options)),
        },
    }
}

/// The merging rule: inner PSX references to variables bound by the outer
/// vartuple become column references (`ψ'` substitution), then columns,
/// conjuncts and relations concatenate.
fn merge_psx(
    outer_vars: &[xmldb_xq::Var],
    outer: &Psx,
    _inner_vars: Vec<xmldb_xq::Var>,
    mut inner: Psx,
) -> Psx {
    for (i, var) in outer_vars.iter().enumerate() {
        inner = substitute_var(inner, var, outer.producer(i));
    }
    Psx {
        cols: outer.cols.iter().cloned().chain(inner.cols).collect(),
        conjuncts: outer
            .conjuncts
            .iter()
            .cloned()
            .chain(inner.conjuncts)
            .collect(),
        relations: outer
            .relations
            .iter()
            .cloned()
            .chain(inner.relations)
            .collect(),
    }
}

/// Eliminates relations pinned to a single known tuple:
///
/// * `R.in = S.in` (two relations over the same node): rename `R` to `S`
///   — the paper's "because N1.in = $j = J.in, the relations J and N1 are
///   the same and we can safely drop N1";
/// * `R.in = $x` with `R` unprojected: replace `R.attr` by `$x.attr`
///   everywhere — the vartuple-out extension ("modify the vartuples so
///   that they also contain the out-value of the bound nodes").
fn drop_redundant(mut psx: Psx) -> Psx {
    loop {
        let mut action: Option<DropAction> = None;
        for (idx, pred) in psx.conjuncts.iter().enumerate() {
            if pred.op != CmpOp::Eq || pred.strict_text {
                continue;
            }
            match (&pred.lhs, &pred.rhs) {
                (Operand::Col(a), Operand::Col(b))
                    if a.attr == Attr::In && b.attr == Attr::In && a.alias != b.alias =>
                {
                    action = Some(DropAction::Unify {
                        conjunct: idx,
                        from: a.alias.clone(),
                        to: b.alias.clone(),
                    });
                    break;
                }
                (Operand::Col(c), Operand::ExtVar(v, Attr::In))
                | (Operand::ExtVar(v, Attr::In), Operand::Col(c))
                    if c.attr == Attr::In
                    // Only drop relations that are not projection producers:
                    // projecting a pinned relation is meaningful (it emits
                    // the bound node) and must stay.
                    && psx.cols.iter().all(|col| col.alias != c.alias) =>
                {
                    action = Some(DropAction::Inline {
                        conjunct: idx,
                        alias: c.alias.clone(),
                        var: v.clone(),
                    });
                    break;
                }
                _ => {}
            }
        }
        match action {
            None => break,
            Some(DropAction::Unify { conjunct, from, to }) => {
                psx.conjuncts.remove(conjunct);
                psx.rename_alias(&from, &to);
                dedup_conjuncts(&mut psx);
            }
            Some(DropAction::Inline {
                conjunct,
                alias,
                var,
            }) => {
                psx.conjuncts.remove(conjunct);
                for pred in &mut psx.conjuncts {
                    for side in [&mut pred.lhs, &mut pred.rhs] {
                        if let Operand::Col(c) = side {
                            if c.alias == alias {
                                *side = Operand::ExtVar(var.clone(), c.attr);
                            }
                        }
                    }
                }
                psx.relations.retain(|r| r != &alias);
                dedup_conjuncts(&mut psx);
            }
        }
    }
    psx
}

enum DropAction {
    Unify {
        conjunct: usize,
        from: String,
        to: String,
    },
    Inline {
        conjunct: usize,
        alias: String,
        var: xmldb_xq::Var,
    },
}

/// Removes duplicate and trivially-true conjuncts introduced by unification.
fn dedup_conjuncts(psx: &mut Psx) {
    let mut seen: Vec<AtomicPred> = Vec::new();
    psx.conjuncts.retain(|p| {
        if p.op == CmpOp::Eq && p.lhs == p.rhs && !p.strict_text {
            return false;
        }
        // Normalize symmetric equality for dedup.
        let normalized = normalize(p);
        if seen.contains(&normalized) {
            false
        } else {
            seen.push(normalized);
            true
        }
    });
}

fn normalize(p: &AtomicPred) -> AtomicPred {
    if p.op == CmpOp::Eq {
        let (a, b) = (format!("{}", p.lhs), format!("{}", p.rhs));
        if b < a {
            return AtomicPred {
                op: CmpOp::Eq,
                lhs: p.rhs.clone(),
                rhs: p.lhs.clone(),
                strict_text: p.strict_text,
            };
        }
    }
    let mut q = p.clone();
    // Canonicalize > into < for dedup purposes.
    if q.op == CmpOp::Gt {
        q = AtomicPred {
            op: CmpOp::Lt,
            lhs: q.rhs,
            rhs: q.lhs,
            strict_text: q.strict_text,
        };
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_query;
    use xmldb_xq::parse;

    fn compile_optimized(q: &str) -> Tpm {
        optimize(
            compile_query(&parse(q).unwrap()),
            &RewriteOptions::default(),
        )
    }

    /// Example 4 / Figure 4: merged relfor with N1 dropped.
    #[test]
    fn figure4_merged_shape() {
        let tpm = compile_optimized(
            "<names>{ for $j in /journal return for $n in $j//name return $n }</names>",
        );
        let rendered = tpm.render();
        assert_eq!(
            rendered,
            "constr(names)\n\
             \x20 relfor ($j, $n) in π(J.in, N2.in) σ[J.parent_in = $root ∧ J.type = element ∧ J.value = journal ∧ J.in < N2.in ∧ N2.out < J.out ∧ N2.type = element ∧ N2.value = name] ×(XASR[J], XASR[N2])\n\
             \x20   $n\n",
            "got:\n{rendered}"
        );
        assert_eq!(tpm.relfor_count(), 1);
    }

    /// The paper's strict-merging counterexample: a constructor between the
    /// loops must block merging, because empty `<j/>` elements must still be
    /// constructed for journals without names.
    #[test]
    fn constructor_blocks_merge() {
        let tpm = compile_optimized(
            "<names>{ for $j in /journal return <j>{ for $n in $j//name return $n }</j> }</names>",
        );
        assert_eq!(
            tpm.relfor_count(),
            2,
            "merge across constructor is unsound:\n{}",
            tpm.render()
        );
        let Tpm::Constr { content, .. } = &tpm else {
            panic!()
        };
        let Tpm::RelFor { body, .. } = content.as_ref() else {
            panic!()
        };
        assert!(matches!(body.as_ref(), Tpm::Constr { .. }));
    }

    /// Example 5's three relfors merge into one (if-relfor is transparent).
    #[test]
    fn figure5_merges_through_if() {
        let tpm = compile_optimized(
            "<names>{ for $j in /journal return \
             if (some $t in $j//text() satisfies true()) \
             then for $n in $j//name return $n else () }</names>",
        );
        assert_eq!(tpm.relfor_count(), 1, "got:\n{}", tpm.render());
        let Tpm::Constr { content, .. } = &tpm else {
            panic!()
        };
        let Tpm::RelFor { vars, source, .. } = content.as_ref() else {
            panic!()
        };
        assert_eq!(vars.len(), 2, "vartuple ($j, $n)");
        assert_eq!(source.cols.len(), 2);
        // Relations: J, T2 (text witness), N2. T1/N1 binder copies dropped.
        assert_eq!(source.relations.len(), 3, "got:\n{}", tpm.render());
    }

    #[test]
    fn descendant_binder_relation_dropped() {
        // Unmerged //name step has relations [N, N2]; after dropping, only
        // the target remains with $x.in / $x.out bounds.
        let tpm = compile_optimized("for $x in /a return for $y in $x//name return $y");
        let Tpm::RelFor { source, .. } = &tpm else {
            panic!()
        };
        // After merging: relations [A, N2]; the N binder is gone.
        assert_eq!(source.relations.len(), 2, "got:\n{}", tpm.render());
        assert!(source.relations.iter().all(|r| r != "N"));
    }

    #[test]
    fn true_if_relfor_eliminated() {
        let tpm = compile_optimized("for $x in /a return if (true()) then $x else ()");
        // `relfor () in TRUE` disappears entirely; merging leaves one loop.
        assert_eq!(tpm.relfor_count(), 1, "got:\n{}", tpm.render());
        let Tpm::RelFor { body, .. } = &tpm else {
            panic!()
        };
        assert!(matches!(body.as_ref(), Tpm::VarOut(_)));
    }

    /// With the extended options, the constructor-blocked shape becomes
    /// the paper's proposed left-outer-joined relfor.
    #[test]
    fn outer_join_extension_merges_through_constructor() {
        let q = parse(
            "<names>{ for $j in /journal return <j>{ for $n in $j//name return $n }</j> }</names>",
        )
        .unwrap();
        let tpm = optimize(compile_query(&q), &RewriteOptions::extended());
        let Tpm::Constr { content, .. } = &tpm else {
            panic!()
        };
        let Tpm::RelForOuter {
            outer_vars,
            label,
            inner_var,
            inner_source,
            ..
        } = content.as_ref()
        else {
            panic!("expected relfor-outer, got:\n{}", tpm.render());
        };
        assert_eq!(outer_vars.len(), 1);
        assert_eq!(label, "j");
        assert_eq!(inner_var, &xmldb_xq::Var::named("n"));
        assert_eq!(inner_source.relations.len(), 1);
        // The inner references the outer producer's columns, not $j.
        assert!(inner_source
            .external_vars()
            .iter()
            .all(|v| v.is_root() || v != &xmldb_xq::Var::named("j")));
    }

    /// Multi-relation inners stay unmerged even with the extension on.
    #[test]
    fn outer_join_extension_skips_complex_inners() {
        // The inner loop's source needs a text witness (two relations after
        // compile if the condition survives)... use an if inside instead:
        let q = parse(
            "<r>{ for $j in /journal return <j>{ \
             if (some $t in $j//text() satisfies true()) \
             then for $n in $j//name return $n else () }</j> }</r>",
        )
        .unwrap();
        let tpm = optimize(compile_query(&q), &RewriteOptions::extended());
        // The inner content is an if-merged relfor over 2 relations (T2,
        // N2) — not the single-relation shape, so no outer join.
        let Tpm::Constr { content, .. } = &tpm else {
            panic!()
        };
        assert!(
            matches!(content.as_ref(), Tpm::RelFor { .. }),
            "got:\n{}",
            tpm.render()
        );
    }

    #[test]
    fn no_rewrites_under_none_options() {
        let q = parse("<names>{ for $j in /journal return for $n in $j//name return $n }</names>")
            .unwrap();
        let raw = compile_query(&q);
        let untouched = optimize(raw.clone(), &RewriteOptions::none());
        assert_eq!(untouched, raw);
    }

    #[test]
    fn merge_preserves_projection_order() {
        let tpm =
            compile_optimized("for $a in /x return for $b in $a/y return for $c in $b/z return $c");
        let Tpm::RelFor { vars, source, .. } = &tpm else {
            panic!()
        };
        assert_eq!(vars.len(), 3);
        assert_eq!(source.cols.len(), 3);
        // Projection columns follow binding order: X, Y, Z producers.
        for (i, var) in vars.iter().enumerate() {
            let _ = var;
            assert_eq!(&source.cols[i].alias, source.producer(i));
        }
        // Chained child steps: each links to the previous producer.
        assert_eq!(source.relations.len(), 3);
    }

    /// Example 6's query: one relfor over three relations (A, V, B).
    #[test]
    fn example6_single_relfor() {
        let tpm = compile_optimized(
            "for $x in //article return \
             if (some $v in $x/volume satisfies true()) \
             then for $y in $x//author return $y else ()",
        );
        assert_eq!(tpm.relfor_count(), 1, "got:\n{}", tpm.render());
        let Tpm::RelFor { vars, source, .. } = &tpm else {
            panic!()
        };
        assert_eq!(vars.len(), 2); // ($x, $y)
        assert_eq!(source.cols.len(), 2);
        assert_eq!(source.relations.len(), 3, "A, V, B:\n{}", tpm.render());
    }

    #[test]
    fn fallback_if_blocks_merge_but_optimizes_children() {
        let tpm = compile_optimized(
            "for $x in /a return if (not(true())) then for $y in $x/b return $y else ()",
        );
        let Tpm::RelFor { body, .. } = &tpm else {
            panic!()
        };
        assert!(matches!(body.as_ref(), Tpm::IfFallback { .. }));
        assert_eq!(tpm.relfor_count(), 2);
    }
}
