//! The TPM intermediate representation.

use std::fmt;
use xmldb_xasr::NodeType;
use xmldb_xq::{Cond, Var};

/// An XASR column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Attr {
    /// The preorder tag count (`in`).
    In,
    /// The postorder tag count (`out`).
    Out,
    /// The parent's `in` value.
    ParentIn,
    /// The node type (root/element/text).
    Type,
    /// The element label or text content.
    Value,
}

impl fmt::Display for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Attr::In => f.write_str("in"),
            Attr::Out => f.write_str("out"),
            Attr::ParentIn => f.write_str("parent_in"),
            Attr::Type => f.write_str("type"),
            Attr::Value => f.write_str("value"),
        }
    }
}

/// A column of a named XASR occurrence, e.g. `J.in`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColRef {
    /// Relation alias (an XASR occurrence).
    pub alias: String,
    /// The referenced column.
    pub attr: Attr,
}

impl ColRef {
    /// Convenience constructor.
    pub fn new(alias: impl Into<String>, attr: Attr) -> ColRef {
        ColRef {
            alias: alias.into(),
            attr,
        }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.alias, self.attr)
    }
}

/// One side of an atomic comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// A column of a relation in the current PSX.
    Col(ColRef),
    /// A numeric constant (an `in` value; e.g. `parent_in = 1` selects
    /// children of the root).
    Num(u64),
    /// A string constant (label or text comparison).
    Str(String),
    /// A node-type constant.
    Kind(NodeType),
    /// A field of the tuple an *external* variable (bound by an enclosing
    /// relfor) is bound to. `ExtVar($x, In)` is the paper's "`$x`";
    /// `ExtVar($x, Out)` is the vartuple-out extension.
    ExtVar(Var, Attr),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Col(c) => write!(f, "{c}"),
            Operand::Num(n) => write!(f, "{n}"),
            Operand::Str(s) => write!(f, "{s}"),
            Operand::Kind(k) => write!(f, "{k}"),
            Operand::ExtVar(v, Attr::In) => write!(f, "{v}"),
            Operand::ExtVar(v, attr) => write!(f, "{v}.{attr}"),
        }
    }
}

/// Comparison operator of an atomic condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Strictly less than.
    Lt,
    /// Strictly greater than.
    Gt,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmpOp::Eq => f.write_str("="),
            CmpOp::Lt => f.write_str("<"),
            CmpOp::Gt => f.write_str(">"),
        }
    }
}

/// An atomic conjunct `lhs op rhs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicPred {
    /// Comparison operator.
    pub op: CmpOp,
    /// Left operand.
    pub lhs: Operand,
    /// Right operand.
    pub rhs: Operand,
    /// XQ comparison semantics: evaluating this predicate on a node whose
    /// type is not `text` is a runtime error (the paper lets engines "exit
    /// with an error message" for non-text comparisons). Set only on
    /// value-vs-value / value-vs-string conjuncts from XQ `=`.
    pub strict_text: bool,
}

impl AtomicPred {
    /// Plain structural conjunct.
    pub fn new(lhs: Operand, op: CmpOp, rhs: Operand) -> AtomicPred {
        AtomicPred {
            op,
            lhs,
            rhs,
            strict_text: false,
        }
    }

    /// XQ `=` conjunct (errors on non-text nodes at runtime).
    pub fn strict(lhs: Operand, op: CmpOp, rhs: Operand) -> AtomicPred {
        AtomicPred {
            op,
            lhs,
            rhs,
            strict_text: true,
        }
    }

    /// Aliases referenced by this predicate (0, 1 or 2).
    pub fn aliases(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for side in [&self.lhs, &self.rhs] {
            if let Operand::Col(c) = side {
                if !out.contains(&c.alias.as_str()) {
                    out.push(c.alias.as_str());
                }
            }
        }
        out
    }
}

impl fmt::Display for AtomicPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

/// A relational algebra expression in project–select–product normal form:
/// `π_{cols}(σ_{conjuncts}(R₁ × ... × Rₙ))`, abbreviated
/// `PSX(cols, φ₁ ∧ ... ∧ φₖ, (R₁, ..., Rₙ))`. All relations are occurrences
/// of the XASR relation, distinguished by alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Psx {
    /// Projection columns, positionally matching the enclosing relfor's
    /// vartuple. Each is an `in` column (plus, after the vartuple-out
    /// rewrite, implicitly its tuple).
    pub cols: Vec<ColRef>,
    /// The conjunctive selection condition.
    pub conjuncts: Vec<AtomicPred>,
    /// XASR occurrences in syntactic order.
    pub relations: Vec<String>,
}

impl Psx {
    /// The nullary, relation-free PSX whose result is the "true" nullary
    /// relation (one empty tuple): the translation of `true()`.
    pub fn truth() -> Psx {
        Psx {
            cols: Vec::new(),
            conjuncts: Vec::new(),
            relations: Vec::new(),
        }
    }

    /// Alias of the relation producing projection column `i`.
    pub fn producer(&self, i: usize) -> &str {
        &self.cols[i].alias
    }

    /// All conjuncts that mention only `alias` (and constants/external
    /// variables) — these are pushable selections for that relation.
    pub fn local_conjuncts(&self, alias: &str) -> Vec<&AtomicPred> {
        self.conjuncts
            .iter()
            .filter(|p| {
                let aliases = p.aliases();
                aliases.len() == 1 && aliases[0] == alias
            })
            .collect()
    }

    /// All conjuncts that mention two distinct aliases (join conditions).
    pub fn join_conjuncts(&self) -> Vec<&AtomicPred> {
        self.conjuncts
            .iter()
            .filter(|p| p.aliases().len() == 2)
            .collect()
    }

    /// Renames every reference to `from` into `to` (alias unification when
    /// dropping a redundant relation).
    pub fn rename_alias(&mut self, from: &str, to: &str) {
        let fix = |op: &mut Operand| {
            if let Operand::Col(c) = op {
                if c.alias == from {
                    c.alias = to.to_string();
                }
            }
        };
        for pred in &mut self.conjuncts {
            fix(&mut pred.lhs);
            fix(&mut pred.rhs);
        }
        for col in &mut self.cols {
            if col.alias == from {
                col.alias = to.to_string();
            }
        }
        self.relations.retain(|r| r != from);
    }

    /// External variables mentioned in the conjuncts.
    pub fn external_vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for pred in &self.conjuncts {
            for side in [&pred.lhs, &pred.rhs] {
                if let Operand::ExtVar(v, _) = side {
                    if !out.contains(v) {
                        out.push(v.clone());
                    }
                }
            }
        }
        out
    }
}

impl fmt::Display for Psx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "π(")?;
        for (i, c) in self.cols.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ") σ[")?;
        for (i, p) in self.conjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "] ×(")?;
        for (i, r) in self.relations.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "XASR[{r}]")?;
        }
        write!(f, ")")
    }
}

/// A TPM expression.
#[allow(missing_docs)] // variant fields are self-describing
#[derive(Debug, Clone, PartialEq)]
pub enum Tpm {
    /// `()`.
    Empty,
    /// Literal text output.
    Text(String),
    /// Concatenation of results.
    Concat(Vec<Tpm>),
    /// Node construction around the computed result.
    Constr { label: String, content: Box<Tpm> },
    /// Emit a copy of the subtree the variable is bound to.
    VarOut(Var),
    /// `relfor vartuple in psx return body`: evaluate the PSX (with
    /// external variables interpreted as constants), sorted hierarchically
    /// in document order; bind `vars` to each result tuple; evaluate `body`
    /// per binding; concatenate.
    RelFor {
        vars: Vec<Var>,
        source: Psx,
        body: Box<Tpm>,
    },
    /// Conditions outside the TPM-rewritable fragment (`or`, `not`):
    /// evaluated by the interpreter per binding environment, as the paper's
    /// restriction implies.
    IfFallback { cond: Cond, body: Box<Tpm> },
    /// The left-outer-join extension the paper proposes for the
    /// constructor-blocks-merging inefficiency ("one solution to this
    /// problem is to extend TPM by left-outer-joins"):
    ///
    /// ```text
    /// relfor (x̄) in α return <l>{ relfor (y) in β return γ }</l>
    ///   ⊢ relfor-outer (x̄; y) in α ⟕ β return <l>{ γ }</l>
    /// ```
    ///
    /// The joined relation streams once, sorted by the outer vartuple;
    /// execution groups rows by the outer prefix, emitting one `l` element
    /// per outer binding — including empty elements for bindings whose
    /// outer row is NULL-padded (no inner match).
    RelForOuter {
        outer_vars: Vec<Var>,
        outer_source: Psx,
        label: String,
        inner_var: Var,
        /// Single-relation PSX, already ψ'-substituted: references to outer
        /// variables appear as columns of the outer producers.
        inner_source: Psx,
        body: Box<Tpm>,
    },
}

impl Tpm {
    /// Flattening concat constructor (drops `Empty`).
    pub fn concat(parts: Vec<Tpm>) -> Tpm {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Tpm::Empty => {}
                Tpm::Concat(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Tpm::Empty,
            1 => flat.pop().expect("len checked"),
            _ => Tpm::Concat(flat),
        }
    }

    /// Number of relfor operators (merging effectiveness metric).
    pub fn relfor_count(&self) -> usize {
        match self {
            Tpm::Empty | Tpm::Text(_) | Tpm::VarOut(_) => 0,
            Tpm::Concat(parts) => parts.iter().map(Tpm::relfor_count).sum(),
            Tpm::Constr { content, .. } => content.relfor_count(),
            Tpm::RelFor { body, .. } => 1 + body.relfor_count(),
            Tpm::RelForOuter { body, .. } => 1 + body.relfor_count(),
            Tpm::IfFallback { body, .. } => body.relfor_count(),
        }
    }

    /// Renders the operator tree in the indented style of Figures 3–6.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, level: usize) {
        let pad = "  ".repeat(level);
        match self {
            Tpm::Empty => {
                out.push_str(&pad);
                out.push_str("()\n");
            }
            Tpm::Text(t) => {
                out.push_str(&pad);
                out.push_str(&format!("text({t:?})\n"));
            }
            Tpm::Concat(parts) => {
                out.push_str(&pad);
                out.push_str("concat\n");
                for p in parts {
                    p.render_into(out, level + 1);
                }
            }
            Tpm::Constr { label, content } => {
                out.push_str(&pad);
                out.push_str(&format!("constr({label})\n"));
                content.render_into(out, level + 1);
            }
            Tpm::VarOut(v) => {
                out.push_str(&pad);
                out.push_str(&format!("{v}\n"));
            }
            Tpm::RelFor { vars, source, body } => {
                out.push_str(&pad);
                let vartuple = vars
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                out.push_str(&format!("relfor ({vartuple}) in {source}\n"));
                body.render_into(out, level + 1);
            }
            Tpm::RelForOuter {
                outer_vars,
                outer_source,
                label,
                inner_var,
                inner_source,
                body,
            } => {
                out.push_str(&pad);
                let vartuple = outer_vars
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                out.push_str(&format!(
                    "relfor-outer ({vartuple}; {inner_var}) in {outer_source} ⟕ {inner_source} constr({label})\n"
                ));
                body.render_into(out, level + 1);
            }
            Tpm::IfFallback { cond, body } => {
                out.push_str(&pad);
                out.push_str(&format!("if* [{cond}]\n"));
                body.render_into(out, level + 1);
            }
        }
    }
}

impl fmt::Display for Tpm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(alias: &str, attr: Attr) -> Operand {
        Operand::Col(ColRef::new(alias, attr))
    }

    #[test]
    fn pred_aliases() {
        let p = AtomicPred::new(col("J", Attr::In), CmpOp::Lt, col("N2", Attr::In));
        assert_eq!(p.aliases(), vec!["J", "N2"]);
        let p = AtomicPred::new(col("J", Attr::ParentIn), CmpOp::Eq, Operand::Num(1));
        assert_eq!(p.aliases(), vec!["J"]);
        let p = AtomicPred::new(Operand::Num(1), CmpOp::Eq, Operand::Num(1));
        assert!(p.aliases().is_empty());
    }

    #[test]
    fn local_and_join_conjuncts() {
        let psx = Psx {
            cols: vec![ColRef::new("J", Attr::In)],
            conjuncts: vec![
                AtomicPred::new(col("J", Attr::ParentIn), CmpOp::Eq, Operand::Num(1)),
                AtomicPred::new(col("J", Attr::In), CmpOp::Lt, col("N", Attr::In)),
                AtomicPred::new(
                    col("N", Attr::Value),
                    CmpOp::Eq,
                    Operand::Str("name".into()),
                ),
            ],
            relations: vec!["J".into(), "N".into()],
        };
        assert_eq!(psx.local_conjuncts("J").len(), 1);
        assert_eq!(psx.local_conjuncts("N").len(), 1);
        assert_eq!(psx.join_conjuncts().len(), 1);
    }

    #[test]
    fn rename_alias_rewrites_everything() {
        let mut psx = Psx {
            cols: vec![ColRef::new("N1", Attr::In)],
            conjuncts: vec![AtomicPred::new(
                col("N1", Attr::In),
                CmpOp::Lt,
                col("N2", Attr::In),
            )],
            relations: vec!["N1".into(), "N2".into()],
        };
        psx.rename_alias("N1", "J");
        assert_eq!(psx.cols[0].alias, "J");
        assert_eq!(psx.conjuncts[0].aliases(), vec!["J", "N2"]);
        assert_eq!(psx.relations, vec!["N2".to_string()]);
    }

    #[test]
    fn truth_is_nullary() {
        let t = Psx::truth();
        assert!(t.cols.is_empty() && t.relations.is_empty() && t.conjuncts.is_empty());
    }

    #[test]
    fn concat_flattens() {
        let t = Tpm::concat(vec![
            Tpm::Empty,
            Tpm::Concat(vec![Tpm::Text("a".into()), Tpm::Text("b".into())]),
        ]);
        assert_eq!(
            t,
            Tpm::Concat(vec![Tpm::Text("a".into()), Tpm::Text("b".into())])
        );
    }

    #[test]
    fn render_is_stable() {
        let tpm = Tpm::Constr {
            label: "names".into(),
            content: Box::new(Tpm::RelFor {
                vars: vec![Var::named("j")],
                source: Psx {
                    cols: vec![ColRef::new("J", Attr::In)],
                    conjuncts: vec![AtomicPred::new(
                        col("J", Attr::ParentIn),
                        CmpOp::Eq,
                        Operand::Num(1),
                    )],
                    relations: vec!["J".into()],
                },
                body: Box::new(Tpm::VarOut(Var::named("j"))),
            }),
        };
        let rendered = tpm.render();
        assert_eq!(
            rendered,
            "constr(names)\n  relfor ($j) in π(J.in) σ[J.parent_in = 1] ×(XASR[J])\n    $j\n"
        );
    }
}
