//! The XQ→TPM rewrite rules of milestone 3.
//!
//! The two for-loop rules of the paper:
//!
//! ```text
//! for $y in $x/a return α
//!   ⊢ relfor ($y) in PSX(R.in, R.parent_in=$x ∧ R.type=elem ∧ R.value=a,
//!                        XASR[R]) return α
//!
//! for $y in $x//a return α
//!   ⊢ relfor ($y) in PSX(R2.in, R1.in=$x ∧ R1.in<R2.in ∧ R2.out<R1.out ∧
//!                        R2.type=elem ∧ R2.value=a,
//!                        (XASR[R1], XASR[R2])) return α
//! ```
//!
//! and the if-rule `if φ then α else () ⊢ relfor () in ALG(φ) return α`,
//! where `ALG` maps `true()`, equality tests, `some` and `and` to nullary
//! PSX expressions; `or`/`not` are outside the fragment and fall back to
//! the interpreter ([`Tpm::IfFallback`]).

use crate::ir::{AtomicPred, Attr, CmpOp, ColRef, Operand, Psx, Tpm};
use std::collections::HashMap;
use xmldb_xasr::NodeType;
use xmldb_xq::{Axis, Cond, Expr, NodeTest, PathStep, Var};

/// Compiles an XQ query to raw (unoptimized, unmerged) TPM. Apply
/// [`crate::rewrite::optimize`] afterwards for the Figure 4-style merged
/// form.
pub fn compile_query(expr: &Expr) -> Tpm {
    let mut compiler = Compiler::default();
    compiler.compile(expr)
}

#[derive(Default)]
struct Compiler {
    /// Per-letter counters for readable aliases (J, N, N2, T, ...).
    alias_counters: HashMap<char, u32>,
    /// Counter for internal output variables.
    var_counter: u32,
}

impl Compiler {
    fn fresh_alias(&mut self, test: &NodeTest) -> String {
        let letter = match test {
            NodeTest::Label(l) => l
                .chars()
                .next()
                .map(|c| c.to_ascii_uppercase())
                .unwrap_or('R'),
            NodeTest::Star => 'S',
            NodeTest::Text => 'T',
        };
        let n = self.alias_counters.entry(letter).or_insert(0);
        *n += 1;
        if *n == 1 {
            letter.to_string()
        } else {
            format!("{letter}{n}")
        }
    }

    fn fresh_var(&mut self) -> Var {
        let v = Var(format!("$#o{}", self.var_counter));
        self.var_counter += 1;
        v
    }

    fn compile(&mut self, expr: &Expr) -> Tpm {
        match expr {
            Expr::Empty => Tpm::Empty,
            Expr::Text(t) => Tpm::Text(t.clone()),
            Expr::Sequence(parts) => Tpm::concat(parts.iter().map(|e| self.compile(e)).collect()),
            Expr::Element { name, content } => Tpm::Constr {
                label: name.clone(),
                content: Box::new(self.compile(content)),
            },
            Expr::Var(v) => Tpm::VarOut(v.clone()),
            Expr::Step(step) => {
                // A navigation step in output position is an anonymous loop:
                // for $o in step return $o.
                let var = self.fresh_var();
                let (_, source) = self.step_psx(step);
                Tpm::RelFor {
                    vars: vec![var.clone()],
                    source,
                    body: Box::new(Tpm::VarOut(var)),
                }
            }
            Expr::For { var, source, body } => {
                let (_, psx) = self.step_psx(source);
                Tpm::RelFor {
                    vars: vec![var.clone()],
                    source: psx,
                    body: Box::new(self.compile(body)),
                }
            }
            Expr::If { cond, then } => {
                if cond.is_tpm_rewritable() {
                    let source = self.alg_cond(cond);
                    Tpm::RelFor {
                        vars: Vec::new(),
                        source,
                        body: Box::new(self.compile(then)),
                    }
                } else {
                    Tpm::IfFallback {
                        cond: cond.clone(),
                        body: Box::new(self.compile(then)),
                    }
                }
            }
        }
    }

    /// The for-loop rules: returns the target alias (producing the bound
    /// nodes) and the PSX projecting its `in` column.
    fn step_psx(&mut self, step: &PathStep) -> (String, Psx) {
        let mut conjuncts = Vec::new();
        let mut relations = Vec::new();
        let target = match step.axis {
            Axis::Child => {
                let r = self.fresh_alias(&step.test);
                conjuncts.push(AtomicPred::new(
                    Operand::Col(ColRef::new(r.clone(), Attr::ParentIn)),
                    CmpOp::Eq,
                    Operand::ExtVar(step.var.clone(), Attr::In),
                ));
                relations.push(r.clone());
                r
            }
            Axis::Descendant => {
                // The faithful two-relation rule: R1 is bound to $x, R2
                // ranges over its descendants. rewrite::optimize later
                // eliminates R1 via the vartuple-out extension.
                let r1 = self.fresh_alias(&step.test);
                let r2 = self.fresh_alias(&step.test);
                conjuncts.push(AtomicPred::new(
                    Operand::Col(ColRef::new(r1.clone(), Attr::In)),
                    CmpOp::Eq,
                    Operand::ExtVar(step.var.clone(), Attr::In),
                ));
                conjuncts.push(AtomicPred::new(
                    Operand::Col(ColRef::new(r1.clone(), Attr::In)),
                    CmpOp::Lt,
                    Operand::Col(ColRef::new(r2.clone(), Attr::In)),
                ));
                conjuncts.push(AtomicPred::new(
                    Operand::Col(ColRef::new(r2.clone(), Attr::Out)),
                    CmpOp::Lt,
                    Operand::Col(ColRef::new(r1.clone(), Attr::Out)),
                ));
                relations.push(r1);
                relations.push(r2.clone());
                r2
            }
        };
        conjuncts.extend(test_conjuncts(&target, &step.test));
        let psx = Psx {
            cols: vec![ColRef::new(target.clone(), Attr::In)],
            conjuncts,
            relations,
        };
        (target, psx)
    }

    /// `ALG(φ)`: conditions as nullary PSX expressions.
    fn alg_cond(&mut self, cond: &Cond) -> Psx {
        match cond {
            Cond::True => Psx::truth(),
            Cond::VarEqConst(v, s) => {
                let t = self.fresh_alias(&NodeTest::Text);
                Psx {
                    cols: Vec::new(),
                    conjuncts: vec![
                        AtomicPred::new(
                            Operand::Col(ColRef::new(t.clone(), Attr::In)),
                            CmpOp::Eq,
                            Operand::ExtVar(v.clone(), Attr::In),
                        ),
                        AtomicPred::strict(
                            Operand::Col(ColRef::new(t.clone(), Attr::Value)),
                            CmpOp::Eq,
                            Operand::Str(s.clone()),
                        ),
                    ],
                    relations: vec![t],
                }
            }
            Cond::VarEqVar(a, b) => {
                let t1 = self.fresh_alias(&NodeTest::Text);
                let t2 = self.fresh_alias(&NodeTest::Text);
                Psx {
                    cols: Vec::new(),
                    conjuncts: vec![
                        AtomicPred::new(
                            Operand::Col(ColRef::new(t1.clone(), Attr::In)),
                            CmpOp::Eq,
                            Operand::ExtVar(a.clone(), Attr::In),
                        ),
                        AtomicPred::new(
                            Operand::Col(ColRef::new(t2.clone(), Attr::In)),
                            CmpOp::Eq,
                            Operand::ExtVar(b.clone(), Attr::In),
                        ),
                        AtomicPred::strict(
                            Operand::Col(ColRef::new(t1.clone(), Attr::Value)),
                            CmpOp::Eq,
                            Operand::Col(ColRef::new(t2.clone(), Attr::Value)),
                        ),
                    ],
                    relations: vec![t1, t2],
                }
            }
            Cond::Some {
                var,
                source,
                satisfies,
            } => {
                let (target, step) = self.step_psx(source);
                let inner = self.alg_cond(satisfies);
                let inner = substitute_var(inner, var, &target);
                Psx {
                    cols: Vec::new(),
                    conjuncts: step.conjuncts.into_iter().chain(inner.conjuncts).collect(),
                    relations: step.relations.into_iter().chain(inner.relations).collect(),
                }
            }
            Cond::And(a, b) => {
                let pa = self.alg_cond(a);
                let pb = self.alg_cond(b);
                Psx {
                    cols: Vec::new(),
                    conjuncts: pa.conjuncts.into_iter().chain(pb.conjuncts).collect(),
                    relations: pa.relations.into_iter().chain(pb.relations).collect(),
                }
            }
            Cond::Or(..) | Cond::Not(..) => {
                unreachable!("caller checks is_tpm_rewritable before ALG translation")
            }
        }
    }
}

/// The `ν` test as selection conjuncts over `alias`.
fn test_conjuncts(alias: &str, test: &NodeTest) -> Vec<AtomicPred> {
    match test {
        NodeTest::Label(l) => vec![
            AtomicPred::new(
                Operand::Col(ColRef::new(alias, Attr::Type)),
                CmpOp::Eq,
                Operand::Kind(NodeType::Element),
            ),
            AtomicPred::new(
                Operand::Col(ColRef::new(alias, Attr::Value)),
                CmpOp::Eq,
                Operand::Str(l.clone()),
            ),
        ],
        NodeTest::Star => vec![AtomicPred::new(
            Operand::Col(ColRef::new(alias, Attr::Type)),
            CmpOp::Eq,
            Operand::Kind(NodeType::Element),
        )],
        NodeTest::Text => vec![AtomicPred::new(
            Operand::Col(ColRef::new(alias, Attr::Type)),
            CmpOp::Eq,
            Operand::Kind(NodeType::Text),
        )],
    }
}

/// Replaces references to a variable (bound within the same PSX) by columns
/// of the relation that produces it — the `ψ'` substitution of the merging
/// rule.
pub(crate) fn substitute_var(mut psx: Psx, var: &Var, alias: &str) -> Psx {
    let fix = |op: &mut Operand| {
        if let Operand::ExtVar(v, attr) = op {
            if v == var {
                *op = Operand::Col(ColRef::new(alias, *attr));
            }
        }
    };
    for pred in &mut psx.conjuncts {
        fix(&mut pred.lhs);
        fix(&mut pred.rhs);
    }
    psx
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldb_xq::parse;

    /// Example 3 / Figure 3: the un-merged TPM expression for the Example 2
    /// query.
    #[test]
    fn figure3_shape() {
        let q = parse("<names>{ for $j in /journal return for $n in $j//name return $n }</names>")
            .unwrap();
        let tpm = compile_query(&q);
        let rendered = tpm.render();
        assert_eq!(
            rendered,
            "constr(names)\n\
             \x20 relfor ($j) in π(J.in) σ[J.parent_in = $root ∧ J.type = element ∧ J.value = journal] ×(XASR[J])\n\
             \x20   relfor ($n) in π(N2.in) σ[N.in = $j ∧ N.in < N2.in ∧ N2.out < N.out ∧ N2.type = element ∧ N2.value = name] ×(XASR[N], XASR[N2])\n\
             \x20     $n\n"
        );
        assert_eq!(tpm.relfor_count(), 2);
    }

    /// Figure 5: if/some compiles to a nullary relfor between the loops.
    #[test]
    fn figure5_shape() {
        let q = parse(
            "<names>{ for $j in /journal return \
             if (some $t in $j//text() satisfies true()) \
             then for $n in $j//name return $n else () }</names>",
        )
        .unwrap();
        let tpm = compile_query(&q);
        let Tpm::Constr { content, .. } = &tpm else {
            panic!()
        };
        let Tpm::RelFor { vars, body, .. } = content.as_ref() else {
            panic!()
        };
        assert_eq!(vars.len(), 1);
        let Tpm::RelFor {
            vars: cond_vars,
            source,
            body: inner,
        } = body.as_ref()
        else {
            panic!("expected nullary relfor, got:\n{}", tpm.render());
        };
        assert!(cond_vars.is_empty(), "if-relfor has empty vartuple");
        assert!(source.cols.is_empty(), "nullary projection");
        assert_eq!(source.relations.len(), 2, "T1 (binder) and T2 (text)");
        assert!(matches!(inner.as_ref(), Tpm::RelFor { .. }));
        assert_eq!(tpm.relfor_count(), 3);
    }

    #[test]
    fn or_condition_falls_back() {
        let q = parse("for $x in /a return if ($x = \"p\" or $x = \"q\") then $x else ()").unwrap();
        let tpm = compile_query(&q);
        let Tpm::RelFor { body, .. } = &tpm else {
            panic!()
        };
        assert!(matches!(body.as_ref(), Tpm::IfFallback { .. }));
    }

    #[test]
    fn not_condition_falls_back() {
        let q = parse("for $x in /a return if (not(true())) then $x else ()").unwrap();
        let tpm = compile_query(&q);
        let Tpm::RelFor { body, .. } = &tpm else {
            panic!()
        };
        assert!(matches!(body.as_ref(), Tpm::IfFallback { .. }));
    }

    #[test]
    fn var_eq_const_strictness() {
        let q = parse("for $x in /a/text() return if ($x = \"y\") then $x else ()").unwrap();
        let tpm = compile_query(&q);
        // Find the nullary relfor and check the strict flag.
        fn find_nullary(t: &Tpm) -> Option<&Psx> {
            match t {
                Tpm::RelFor { vars, source, body } => {
                    if vars.is_empty() {
                        Some(source)
                    } else {
                        find_nullary(body)
                    }
                }
                Tpm::Constr { content, .. } => find_nullary(content),
                _ => None,
            }
        }
        let psx = find_nullary(&tpm).expect("nullary relfor");
        assert!(psx.conjuncts.iter().any(|p| p.strict_text));
    }

    #[test]
    fn step_in_output_position_becomes_loop() {
        let q = parse("/journal").unwrap();
        let tpm = compile_query(&q);
        let Tpm::RelFor { vars, source, body } = &tpm else {
            panic!()
        };
        assert_eq!(vars.len(), 1);
        assert_eq!(source.relations.len(), 1);
        assert!(matches!(body.as_ref(), Tpm::VarOut(v) if v == &vars[0]));
    }

    #[test]
    fn star_and_text_tests() {
        let q = parse("for $x in /j return for $y in $x/* return $y").unwrap();
        let tpm = compile_query(&q);
        let Tpm::RelFor { body, .. } = &tpm else {
            panic!()
        };
        let Tpm::RelFor { source, .. } = body.as_ref() else {
            panic!()
        };
        // Star: only a type conjunct (besides parent linkage).
        assert_eq!(source.conjuncts.len(), 2);
        assert!(source
            .conjuncts
            .iter()
            .any(|p| matches!(&p.rhs, Operand::Kind(NodeType::Element))));
    }

    #[test]
    fn some_substitutes_bound_var() {
        let q = parse(
            "for $x in //article return \
             if (some $v in $x/volume satisfies true()) then $x else ()",
        )
        .unwrap();
        let tpm = compile_query(&q);
        let Tpm::RelFor { body, .. } = &tpm else {
            panic!()
        };
        let Tpm::RelFor { vars, source, .. } = body.as_ref() else {
            panic!()
        };
        assert!(vars.is_empty());
        // $v must not appear as an external var (it is bound inside).
        assert!(source.external_vars().iter().all(|v| v != &Var::named("v")));
        // $x appears (bound by the outer relfor).
        assert!(source.external_vars().contains(&Var::named("x")));
    }

    #[test]
    fn nested_some_chain() {
        let q = parse(
            "for $x in /a return \
             if (some $b in $x/b satisfies some $c in $b/c satisfies $c = \"z\") \
             then $x else ()",
        )
        .unwrap();
        let tpm = compile_query(&q);
        let Tpm::RelFor { body, .. } = &tpm else {
            panic!()
        };
        let Tpm::RelFor { source, .. } = body.as_ref() else {
            panic!()
        };
        // Relations: B (b step), C (c step), T (text lookup for $c = "z").
        assert_eq!(source.relations.len(), 3);
        // The only external var is $x.
        assert_eq!(source.external_vars(), vec![Var::named("x")]);
    }

    #[test]
    fn var_eq_var_produces_two_lookups() {
        let q = parse(
            "for $a in /x/text() return for $b in /y/text() return \
             if ($a = $b) then $a else ()",
        )
        .unwrap();
        let tpm = compile_query(&q);
        fn find_nullary(t: &Tpm) -> Option<&Psx> {
            match t {
                Tpm::RelFor { vars, source, body } => {
                    if vars.is_empty() {
                        Some(source)
                    } else {
                        find_nullary(body)
                    }
                }
                _ => None,
            }
        }
        let psx = find_nullary(&tpm).expect("nullary relfor");
        assert_eq!(psx.relations.len(), 2);
        assert_eq!(psx.conjuncts.iter().filter(|p| p.strict_text).count(), 1);
    }
}
