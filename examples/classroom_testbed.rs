//! The whole course in one run: five "teams" submit their engines to the
//! testbed, the fair scheduler picks them up, each is tested for
//! correctness and efficiency under budgets, notification e-mails are
//! printed, and the grade book computes final scores.
//!
//! ```text
//! cargo run --release --example classroom_testbed
//! ```

use std::time::Duration;
use xmldb_core::{EngineKind, QueryOptions};
use xmldb_testbed::grading::MilestoneRecord;
use xmldb_testbed::{run_submission, Corpus, CorpusConfig, GradeBook, RunLimits, SubmissionPool};

fn main() {
    println!("generating the test corpus…");
    let corpus = Corpus::generate(&CorpusConfig {
        dblp_scale: 0.3,
        excerpt_scale: 0.05,
        treebank_scale: 0.2,
    });

    // Five teams submit — the Figure 7 lineup.
    let mut pool = SubmissionPool::new();
    pool.submit(
        "team-tuplejuggler",
        EngineKind::M4CostBased,
        QueryOptions::default(),
    );
    pool.submit(
        "team-unluckystats",
        EngineKind::M4CostBased,
        QueryOptions::default(),
    );
    pool.submit(
        "team-heuristics",
        EngineKind::M3Algebraic,
        QueryOptions::default(),
    );
    pool.submit(
        "team-interpreters",
        EngineKind::M2Storage,
        QueryOptions::default(),
    );
    pool.submit(
        "team-scanline",
        EngineKind::NaiveScan,
        QueryOptions::default(),
    );

    let limits = RunLimits {
        efficiency_budget: Duration::from_secs(3),
        correctness_budget: Duration::from_secs(20),
        pool_bytes: 2 << 20,
        // The paper's "only 20 MB of memory", scaled down: every query runs
        // under a working-memory budget and must spill or fail cleanly.
        mem_limit: Some(8 << 20),
    };

    let mut book = GradeBook::new();
    // The tester picks submissions up fairly and mails results back.
    while let Some(submission) = pool.take_next() {
        println!(
            "\n==== testing submission #{} from {} ====",
            submission.id, submission.team
        );
        let report = run_submission(&corpus, &submission, &limits);
        print!("{}", report.render_email());
        let efficiency_total = if report.passed_correctness {
            Some(report.total_charged)
        } else {
            None
        };
        book.register(
            submission.team.clone(),
            MilestoneRecord {
                weeks_late: vec![0, 0, 0, 0],
                runnable_before_exam: report.passed_correctness,
                team_size: 2,
                bonus_features: if submission.engine == EngineKind::M4CostBased {
                    1
                } else {
                    0
                },
            },
            // Everyone aces the exam in this simulation.
            90,
            efficiency_total,
        );
    }

    println!("\n==== final grades ====");
    println!(
        "{:<22}{:>9}{:>12}{:>8}{:>8}{:>8}",
        "team", "admitted", "milestones", "bonus", "exam", "total"
    );
    for grade in book.grade() {
        println!(
            "{:<22}{:>9}{:>12}{:>8}{:>8}{:>8}",
            grade.team,
            if grade.admitted { "yes" } else { "no" },
            grade.milestone_points,
            grade.scalability_bonus,
            grade.exam_points,
            grade.total,
        );
    }
}
