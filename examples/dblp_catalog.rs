//! A bibliography workload on generated DBLP-like data: the Example 6
//! query across engines, with timings, plan output, and buffer-pool
//! statistics.
//!
//! ```text
//! cargo run --release --example dblp_catalog [scale]
//! ```

use std::time::Instant;
use xmldb_core::{Database, EngineKind};
use xmldb_datagen::DblpConfig;
use xmldb_storage::EnvConfig;

const EXAMPLE6: &str = "for $x in //article return \
    if (some $v in $x/volume satisfies true()) \
    then for $y in $x//author return $y else ()";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(0.5);

    // A deliberately small buffer pool, as in the course's efficiency tests.
    let db = Database::in_memory_with(EnvConfig::with_pool_bytes(2 << 20));

    println!("generating DBLP-like data at scale {scale}…");
    let xml = xmldb_datagen::generate_dblp(&DblpConfig::scaled(scale));
    println!("document: {} KiB", xml.len() / 1024);

    let t0 = Instant::now();
    db.load_document("dblp", &xml)?;
    println!("shredded in {:.1} ms", t0.elapsed().as_secs_f64() * 1e3);

    let store = db.store("dblp")?;
    let stats = store.stats();
    println!(
        "nodes: {}, elements: {}, avg depth: {:.2}, labels: {:?}",
        stats.node_count,
        stats.element_count,
        stats.avg_depth(),
        stats.label_counts.keys().collect::<Vec<_>>(),
    );

    println!("\nExample 6: authors of articles that have volume information");
    let mut reference = None;
    for engine in EngineKind::ALL {
        db.env().reset_io_stats();
        let t0 = Instant::now();
        let result = db.query("dblp", EXAMPLE6, engine)?;
        let elapsed = t0.elapsed();
        let io = db.env().io_stats();
        println!(
            "  {engine:<14} {:>9.2} ms   {:>5} items   pool: {} requests, {:.0}% hits",
            elapsed.as_secs_f64() * 1e3,
            result.len(),
            io.requests(),
            io.hit_ratio() * 100.0,
        );
        match &reference {
            None => reference = Some(result),
            Some(r) => assert_eq!(&result, r, "engines disagree!"),
        }
    }

    println!("\n--- milestone 4 plan (the Figure 6 QP2 shape) ---");
    print!("{}", db.explain("dblp", EXAMPLE6, EngineKind::M4CostBased)?);
    Ok(())
}
