//! Deeply nested data: descendant-axis queries on TREEBANK-like parse
//! trees, where the in/out interval encoding and the average-depth
//! statistic earn their keep.
//!
//! ```text
//! cargo run --release --example treebank_nesting [scale]
//! ```

use std::time::Instant;
use xmldb_core::{Database, EngineKind};
use xmldb_datagen::TreebankConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(0.5);

    let db = Database::in_memory();
    println!("generating TREEBANK-like data at scale {scale}…");
    let xml = xmldb_datagen::generate_treebank(&TreebankConfig::scaled(scale));
    db.load_document("treebank", &xml)?;

    let store = db.store("treebank")?;
    println!(
        "nodes: {}, max depth: {}, avg depth: {:.2}",
        store.stats().node_count,
        store.stats().max_depth,
        store.stats().avg_depth(),
    );

    // Deep descendant navigation: noun phrases anywhere under sentences,
    // then nouns anywhere under those.
    let queries = [
        (
            "nouns-in-NPs",
            "for $s in //S return for $np in $s//NP return $np//NN",
        ),
        (
            "sentences-with-sbar",
            "for $s in //S return \
             if (some $x in $s//SBAR satisfies true()) then <deep/> else ()",
        ),
        (
            "np-under-np",
            "for $np in //NP return for $inner in $np//NP return <nested/>",
        ),
    ];

    for (name, query) in queries {
        print!("{name:<22}");
        let mut reference: Option<xmldb_core::QueryResult> = None;
        for engine in [EngineKind::M2Storage, EngineKind::M4CostBased] {
            let t0 = Instant::now();
            let result = db.query("treebank", query, engine)?;
            print!("  {engine}: {:>8.2} ms", t0.elapsed().as_secs_f64() * 1e3);
            match &reference {
                None => reference = Some(result),
                Some(r) => assert_eq!(&result, r),
            }
        }
        println!("   ({} items)", reference.expect("ran").len());
    }

    // The interval property in action: one clustered range scan per
    // descendant step, no tree walking.
    println!("\n--- plan for nouns-in-NPs (milestone 4) ---");
    print!(
        "{}",
        db.explain(
            "treebank",
            "for $s in //S return for $np in $s//NP return $np//NN",
            EngineKind::M4CostBased
        )?
    );
    Ok(())
}
