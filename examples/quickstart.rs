//! Quickstart: load a document, run XQ queries with different engines,
//! inspect a query plan.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use xmldb_core::{Database, EngineKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An in-memory database; `Database::open_dir` persists to disk instead.
    let db = Database::in_memory();

    // The paper's Figure 2 document.
    db.load_document(
        "fig2",
        "<journal><authors><name>Ana</name><name>Bob</name></authors>\
         <title>DB</title></journal>",
    )?;

    // Example 2 of the paper.
    let query = "<names>{ for $j in /journal return for $n in $j//name return $n }</names>";

    // Every milestone engine computes the same answer.
    for engine in EngineKind::ALL {
        let result = db.query("fig2", query, engine)?;
        println!("{engine:<14} → {result}");
    }

    // Conditions, comparisons, and the runtime error the paper permits.
    let with_ana = db.query(
        "fig2",
        "for $n in //name/text() return if ($n = \"Ana\") then <found/> else ()",
        EngineKind::M4CostBased,
    )?;
    println!("\nAna found: {}", !with_ana.is_empty());

    let err = db
        .query(
            "fig2",
            // Comparing element nodes (not text) is the permitted runtime error.
            "for $n in //name return if ($n = \"Ana\") then $n else ()",
            EngineKind::M4CostBased,
        )
        .unwrap_err();
    println!("non-text comparison rejected: {err}");

    // EXPLAIN shows the merged TPM expression and the physical plan.
    println!("\n--- EXPLAIN (milestone 4) ---");
    print!("{}", db.explain("fig2", query, EngineKind::M4CostBased)?);
    Ok(())
}
