//! An interactive XQ shell over saardb.
//!
//! ```text
//! cargo run --example xq_shell [path/to/document.xml]
//! ```
//!
//! Commands:
//! * `\help` — command list
//! * `\docs` — loaded documents
//! * `\load <name> <file>` — shred a document from disk
//! * `\use <name>` — switch the current document
//! * `\engine <m1|naive|m2|m3|m4>` — switch the evaluation engine
//! * `\explain <query>` — show the TPM expression and physical plan
//! * `\q` — quit
//!
//! Anything else is parsed as an XQ query against the current document.

use std::io::{BufRead, Write};
use xmldb_core::{Database, EngineKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::in_memory();
    let mut current = "demo".to_string();
    let mut engine = EngineKind::M4CostBased;

    match std::env::args().nth(1) {
        Some(path) => {
            db.load_document_from_path(&current, &path)?;
            println!("loaded {path} as document {current:?}");
        }
        None => {
            db.load_document(&current, xmldb_datagen::classroom_document().as_str())?;
            println!("loaded the built-in classroom document as {current:?}");
        }
    }
    println!("engine: {engine}. Type \\help for commands, \\q to quit.");

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("xq> ");
        out.flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('\\') {
            let mut parts = rest.split_whitespace();
            match parts.next() {
                Some("q") | Some("quit") => break,
                Some("help") => {
                    println!(
                        "\\docs | \\load <name> <file> | \\use <name> | \
                         \\engine <m1|naive|m2|m3|m4> | \\explain <query> | \\q"
                    );
                }
                Some("docs") => {
                    for doc in db.documents()? {
                        let marker = if doc == current { "*" } else { " " };
                        println!(" {marker} {doc}");
                    }
                }
                Some("load") => match (parts.next(), parts.next()) {
                    (Some(name), Some(path)) => match db.load_document_from_path(name, path) {
                        Ok(()) => println!("loaded {name}"),
                        Err(e) => println!("error: {e}"),
                    },
                    _ => println!("usage: \\load <name> <file>"),
                },
                Some("use") => match parts.next() {
                    Some(name) if db.has_document(name) => {
                        current = name.to_string();
                        println!("using {current}");
                    }
                    Some(name) => println!("no such document: {name}"),
                    None => println!("usage: \\use <name>"),
                },
                Some("engine") => {
                    engine = match parts.next() {
                        Some("m1") => EngineKind::M1InMemory,
                        Some("naive") => EngineKind::NaiveScan,
                        Some("m2") => EngineKind::M2Storage,
                        Some("m3") => EngineKind::M3Algebraic,
                        Some("m4") => EngineKind::M4CostBased,
                        Some("m4p") => EngineKind::M4Pipelined,
                        _ => {
                            println!("usage: \\engine <m1|naive|m2|m3|m4|m4p>");
                            continue;
                        }
                    };
                    println!("engine: {engine}");
                }
                Some("explain") => {
                    let query = rest.trim_start_matches("explain").trim();
                    match db.explain(&current, query, engine) {
                        Ok(text) => print!("{text}"),
                        Err(e) => println!("error: {e}"),
                    }
                }
                other => println!("unknown command {other:?}; try \\help"),
            }
            continue;
        }
        let started = std::time::Instant::now();
        match db.query(&current, line, engine) {
            Ok(result) => {
                println!("{result}");
                println!(
                    "-- {} item(s) in {:.2} ms [{engine}]",
                    result.len(),
                    started.elapsed().as_secs_f64() * 1e3
                );
            }
            Err(e) => println!("error: {e}"),
        }
    }
    Ok(())
}
