//! Cross-crate integration: every engine computes identical answers for
//! the full correctness corpus (the §4 correctness tests), including
//! matching runtime errors.

use xmldb_core::{Database, EngineKind};
use xmldb_testbed::corpus::{correctness_queries, Corpus, CorpusConfig};

fn tiny_corpus() -> Corpus {
    Corpus::generate(&CorpusConfig {
        dblp_scale: 0.05,
        excerpt_scale: 0.02,
        treebank_scale: 0.05,
    })
}

/// The §4 setup: all 16 public queries × all correctness documents × all
/// engines, diffed against milestone 1.
#[test]
fn all_engines_agree_on_the_correctness_corpus() {
    let corpus = tiny_corpus();
    let db = Database::in_memory();
    for (name, xml) in &corpus.documents {
        db.load_document(name, xml).unwrap();
    }
    for doc in corpus.correctness_documents() {
        for (qname, query) in correctness_queries() {
            let reference = db.query(doc, query, EngineKind::M1InMemory);
            for engine in EngineKind::ALL {
                let got = db.query(doc, query, engine);
                match (&reference, &got) {
                    (Ok(expected), Ok(actual)) => assert_eq!(
                        expected, actual,
                        "{engine} diverges from reference on {doc}/{qname}"
                    ),
                    // The non-text comparison error is plan-dependent (see
                    // DESIGN.md §4): either side may raise it.
                    (_, Err(e)) if e.is_non_text_comparison() => {}
                    (Err(e), Ok(_)) if e.is_non_text_comparison() => {}
                    (r, g) => panic!(
                        "{engine} outcome mismatch on {doc}/{qname}: \
                         reference ok={}, engine ok={}",
                        r.is_ok(),
                        g.is_ok()
                    ),
                }
            }
        }
    }
}

/// Efficiency queries also agree across engines (on a small instance).
#[test]
fn engines_agree_on_efficiency_queries() {
    let corpus = tiny_corpus();
    let db = Database::in_memory();
    for (name, xml) in &corpus.documents {
        db.load_document(name, xml).unwrap();
    }
    for (qname, query) in xmldb_testbed::corpus::efficiency_queries() {
        let reference = db.query("dblp", query, EngineKind::M1InMemory).unwrap();
        for engine in EngineKind::ALL {
            let got = db.query("dblp", query, engine).unwrap();
            assert_eq!(got, reference, "{engine} diverges on {qname}");
        }
    }
}

/// The corrupted-statistics configuration (Figure 7 engine 2) changes
/// plans, never answers.
#[test]
fn corrupted_stats_never_change_answers() {
    let corpus = tiny_corpus();
    let db = Database::in_memory();
    for (name, xml) in &corpus.documents {
        db.load_document(name, xml).unwrap();
    }
    let stats = db.store("dblp").unwrap().stats().clone();
    let mut corrupted = stats.clone();
    if let (Some(&max), Some(&min)) = (
        stats.label_counts.values().max(),
        stats.label_counts.values().min(),
    ) {
        for count in corrupted.label_counts.values_mut() {
            *count = max + min - *count;
        }
    }
    let options = xmldb_core::QueryOptions {
        stats_override: Some(corrupted),
        ..Default::default()
    };
    for (qname, query) in xmldb_testbed::corpus::efficiency_queries() {
        let reference = db.query("dblp", query, EngineKind::M4CostBased).unwrap();
        let got = db
            .query_with("dblp", query, EngineKind::M4CostBased, &options)
            .unwrap();
        assert_eq!(
            got, reference,
            "corrupted stats changed the answer of {qname}"
        );
    }
}

/// Queries over documents that lack the referenced labels return empty,
/// not errors — on every engine.
#[test]
fn missing_labels_yield_empty_results() {
    let db = Database::in_memory();
    db.load_document("doc", "<a><b>x</b></a>").unwrap();
    for engine in EngineKind::ALL {
        let r = db
            .query("doc", "for $z in //zzz return $z//www", engine)
            .unwrap();
        assert!(r.is_empty(), "{engine} returned {r}");
    }
}

/// The whole submission pipeline: a milestone-4 submission passes the full
/// testbed run end to end.
#[test]
fn testbed_pipeline_end_to_end() {
    let corpus = tiny_corpus();
    let mut pool = xmldb_testbed::SubmissionPool::new();
    pool.submit("itest", EngineKind::M4CostBased, Default::default());
    let submission = pool.take_next().unwrap();
    let report =
        xmldb_testbed::run_submission(&corpus, &submission, &xmldb_testbed::RunLimits::default());
    assert!(report.passed_correctness, "{}", report.render_email());
    assert_eq!(report.efficiency.len(), 5);
}
