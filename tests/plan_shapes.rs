//! Snapshot tests for the paper's plan figures: the TPM expressions of
//! Figures 3–5 and the Figure 6 QP2 physical plan.

use xmldb_algebra::compile_query;
use xmldb_algebra::rewrite::{optimize, RewriteOptions};
use xmldb_core::{Database, EngineKind};
use xmldb_xq::parse;

const EXAMPLE2: &str = "<names>{ for $j in /journal return for $n in $j//name return $n }</names>";

/// Figure 3: the un-merged TPM expression (two relfors; the descendant
/// step carries its own copy of the binding relation).
#[test]
fn figure3_snapshot() {
    let tpm = compile_query(&parse(EXAMPLE2).unwrap());
    assert_eq!(
        tpm.render(),
        "constr(names)\n\
         \x20 relfor ($j) in π(J.in) σ[J.parent_in = $root ∧ J.type = element ∧ J.value = journal] ×(XASR[J])\n\
         \x20   relfor ($n) in π(N2.in) σ[N.in = $j ∧ N.in < N2.in ∧ N2.out < N.out ∧ N2.type = element ∧ N2.value = name] ×(XASR[N], XASR[N2])\n\
         \x20     $n\n"
    );
}

/// Figure 4: after merging, one relfor over (J, N2); the redundant copy N
/// (the paper's N1) is dropped because N1.in = $j = J.in.
#[test]
fn figure4_snapshot() {
    let tpm = optimize(
        compile_query(&parse(EXAMPLE2).unwrap()),
        &RewriteOptions::default(),
    );
    assert_eq!(
        tpm.render(),
        "constr(names)\n\
         \x20 relfor ($j, $n) in π(J.in, N2.in) σ[J.parent_in = $root ∧ J.type = element ∧ J.value = journal ∧ J.in < N2.in ∧ N2.out < J.out ∧ N2.type = element ∧ N2.value = name] ×(XASR[J], XASR[N2])\n\
         \x20   $n\n"
    );
}

const EXAMPLE5: &str = "<names>{ for $j in /journal return \
     if (some $t in $j//text() satisfies true()) \
     then for $n in $j//name return $n else () }</names>";

/// Figure 5: the if/some condition becomes a nullary relfor between the
/// loops (shown unmerged, as in the figure).
#[test]
fn figure5_snapshot() {
    let tpm = compile_query(&parse(EXAMPLE5).unwrap());
    let rendered = tpm.render();
    // Outer loop over journals, nullary relfor with the two text relations,
    // inner loop over names.
    assert!(rendered.contains("relfor ($j)"), "{rendered}");
    assert!(rendered.contains("relfor () in π()"), "{rendered}");
    assert!(rendered.contains("×(XASR[T], XASR[T2])"), "{rendered}");
    assert!(rendered.contains("relfor ($n)"), "{rendered}");
}

/// After merging, Example 5's three relfors are one, with the text witness
/// as an unprojected relation — the configuration that makes duplicate
/// elimination necessary (the §2 ordering discussion).
#[test]
fn figure5_merged_needs_dedup() {
    let tpm = optimize(
        compile_query(&parse(EXAMPLE5).unwrap()),
        &RewriteOptions::default(),
    );
    assert_eq!(tpm.relfor_count(), 1, "{}", tpm.render());
    let xmldb_algebra::Tpm::Constr { content, .. } = &tpm else {
        panic!()
    };
    let xmldb_algebra::Tpm::RelFor { source, .. } = content.as_ref() else {
        panic!()
    };
    assert!(
        xmldb_algebra::ordering::needs_dedup(source),
        "{}",
        tpm.render()
    );
}

const EXAMPLE6: &str = "for $x in //article return \
     if (some $v in $x/volume satisfies true()) \
     then for $y in $x//author return $y else ()";

/// Figure 6 / plan QP2 on an Example 6-shaped document ("many authors and
/// few articles that have information on volumes"): the milestone 4 plan
/// must (1) check volumes before expanding authors, (2) realize the
/// volume check as a semijoin (dedup projection), and (3) use index
/// nested-loops joins — all order-preserving, no sort.
#[test]
fn figure6_qp2_plan() {
    let db = Database::in_memory();
    let mut xml = String::from("<dblp>");
    for i in 0..60 {
        xml.push_str("<article>");
        if i % 12 == 0 {
            xml.push_str("<volume>9</volume>");
        }
        for a in 0..6 {
            xml.push_str(&format!("<author>a{i}-{a}</author>"));
        }
        xml.push_str("</article>");
    }
    xml.push_str("</dblp>");
    db.load_document("dblp", &xml).unwrap();
    let explain = db
        .explain("dblp", EXAMPLE6, EngineKind::M4CostBased)
        .unwrap();
    // Two index nested-loops joins.
    assert_eq!(explain.matches("inl-join").count(), 2, "{explain}");
    // The volume semijoin happens before the author expansion: in the
    // rendered plan (top-down), the author probe is above the volume probe.
    let author_pos = explain.find("label=author").expect("author probe");
    let volume_pos = explain.find("label=volume").expect("volume probe");
    assert!(
        author_pos < volume_pos,
        "authors must join last:\n{explain}"
    );
    // Order-preserving: no sort operator.
    assert!(!explain.contains("sort keys"), "{explain}");
    // Semijoin: a dedup projection between the joins (two projections
    // total, both dedup).
    assert!(explain.matches("dedup=true").count() >= 2, "{explain}");
}

/// The milestone 3 heuristic plan for the same query keeps the syntactic
/// join order (authors expanded before volumes are checked) — the QP0/QP1
/// flavour the paper improves upon.
#[test]
fn example6_heuristic_plan_is_less_clever() {
    let db = Database::in_memory();
    db.load_document(
        "dblp",
        "<dblp><article><author>a</author><volume>1</volume></article></dblp>",
    )
    .unwrap();
    let explain = db
        .explain("dblp", EXAMPLE6, EngineKind::M3Algebraic)
        .unwrap();
    // No index joins in milestone 3.
    assert_eq!(explain.matches("inl-join").count(), 0, "{explain}");
    assert!(explain.contains("nl-join"), "{explain}");
    // Full scans with pushed-down selections.
    assert!(explain.contains("full-scan"), "{explain}");
    assert!(explain.contains("materialize"), "{explain}");
}

/// The paper's proposed left-outer-join extension: on the milestone-4
/// engines, the constructor-blocked shape plans as a single outer-joined
/// stream ("one solution to this problem is to extend TPM by
/// left-outer-joins"); milestone 3 stays unmerged.
#[test]
fn left_outer_join_extension_plan() {
    let db = Database::in_memory();
    db.load_document(
        "lib",
        "<lib><journal><name>Ana</name></journal><journal><title>t</title></journal></lib>",
    )
    .unwrap();
    let q = "<names>{ for $j in //journal return <j>{ for $n in $j//name return $n }</j> }</names>";
    let m4 = db.explain("lib", q, EngineKind::M4CostBased).unwrap();
    assert!(m4.contains("relfor-outer"), "{m4}");
    assert!(m4.contains("left-outer-inl-join"), "{m4}");
    let m3 = db.explain("lib", q, EngineKind::M3Algebraic).unwrap();
    assert!(!m3.contains("relfor-outer"), "{m3}");
    // And the semantics include the empty element.
    assert_eq!(
        db.query("lib", q, EngineKind::M4CostBased)
            .unwrap()
            .to_xml(),
        "<names><j><name>Ana</name></j><j/></names>"
    );
}

/// EXPLAIN for every engine mentions its strategy.
#[test]
fn explain_covers_all_engines() {
    let db = Database::in_memory();
    db.load_document("d", "<a><b>x</b></a>").unwrap();
    for engine in EngineKind::ALL {
        let text = db.explain("d", "//b", engine).unwrap();
        assert!(!text.is_empty(), "{engine} explain empty");
    }
}
