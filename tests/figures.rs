//! Reproduction of the paper's worked figures and examples: the Figure 2
//! labeling, the Example 1 tuples, and Example 2's binding sequence and
//! result.

use xmldb_core::{Database, EngineKind};
use xmldb_storage::Env;
use xmldb_xasr::shred_document;

const FIGURE2: &str =
    "<journal><authors><name>Ana</name><name>Bob</name></authors><title>DB</title></journal>";

/// Figure 2: the exact in/out assignment of the paper.
#[test]
fn figure2_labels() {
    let doc = xmldb_xml::parse(FIGURE2).unwrap();
    let lab = xmldb_xml::Labeling::compute(&doc);
    let root = doc.root();
    let journal = doc.root_element().unwrap();
    let authors = doc.children(journal)[0];
    let name1 = doc.children(authors)[0];
    let ana = doc.children(name1)[0];
    let name2 = doc.children(authors)[1];
    let bob = doc.children(name2)[0];
    let title = doc.children(journal)[1];
    let db = doc.children(title)[0];
    let expected = [
        (root, 1, 18),
        (journal, 2, 17),
        (authors, 3, 12),
        (name1, 4, 7),
        (ana, 5, 6),
        (name2, 8, 11),
        (bob, 9, 10),
        (title, 13, 16),
        (db, 14, 15),
    ];
    for (node, in_v, out_v) in expected {
        assert_eq!(lab.in_of(node), in_v);
        assert_eq!(lab.out_of(node), out_v);
    }
}

/// Example 1: "the nodes labeled 'journal' and Ana ... are represented in
/// XASR as the tuples (2, 17, 1, element, journal) and (5, 6, 4, text,
/// Ana)".
#[test]
fn example1_tuples() {
    let env = Env::memory();
    let store = shred_document(&env, "fig2", FIGURE2).unwrap();
    assert_eq!(
        store.get(2).unwrap().unwrap().to_string(),
        "(2, 17, 1, element, journal)"
    );
    assert_eq!(
        store.get(5).unwrap().unwrap().to_string(),
        "(5, 6, 4, text, Ana)"
    );
}

/// The structural-join characterizations stated in §2, verified
/// exhaustively over the Figure 2 document.
#[test]
fn structural_join_formulas() {
    let env = Env::memory();
    let store = shred_document(&env, "fig2", FIGURE2).unwrap();
    let all: Vec<_> = store.scan_all().map(|t| t.unwrap()).collect();
    let doc = xmldb_xml::parse(FIGURE2).unwrap();
    let lab = xmldb_xml::Labeling::compute(&doc);
    let nodes: Vec<_> = std::iter::once(doc.root())
        .chain(doc.descendants(doc.root()))
        .collect();
    for (i, &x_node) in nodes.iter().enumerate() {
        for (j, &y_node) in nodes.iter().enumerate() {
            let x = &all[i];
            let y = &all[j];
            assert_eq!(lab.in_of(x_node), x.in_);
            // child ⇔ parent_in linkage
            assert_eq!(
                doc.parent(y_node) == Some(x_node),
                xmldb_xasr::predicates::is_child(x, y)
            );
            // descendant ⇔ interval containment
            let is_desc = doc.descendants(x_node).any(|d| d == y_node);
            assert_eq!(is_desc, xmldb_xasr::predicates::is_descendant(x, y));
        }
    }
}

/// Example 2: the relfor binds ($j, $n) successively to (2, 4) and (2, 8),
/// and the result nodes appear in document order.
#[test]
fn example2_binding_sequence_and_result() {
    let env = Env::memory();
    let store = shred_document(&env, "fig2", FIGURE2).unwrap();
    let journal = store.get(2).unwrap().unwrap();
    let bindings: Vec<(u64, u64)> = store
        .by_label_in_range("name", journal.in_, journal.out)
        .map(|t| (journal.in_, t.unwrap().in_))
        .collect();
    assert_eq!(
        bindings,
        vec![(2, 4), (2, 8)],
        "the Example 2 vartuple sequence"
    );

    let db = Database::in_memory();
    db.load_document("fig2", FIGURE2).unwrap();
    let result = db
        .query(
            "fig2",
            "<names>{ for $j in /journal return for $n in $j//name return $n }</names>",
            EngineKind::M4CostBased,
        )
        .unwrap();
    assert_eq!(
        result.to_xml(),
        "<names><name>Ana</name><name>Bob</name></names>"
    );
}

/// The strict-merging counterexample from §2: with a `<j>` constructor
/// between the loops, empty `<j/>` elements must still be constructed for
/// journals without names.
#[test]
fn strict_merging_counterexample_semantics() {
    let db = Database::in_memory();
    db.load_document(
        "docs",
        "<lib><journal><name>Ana</name></journal><journal><title>no names</title></journal></lib>",
    )
    .unwrap();
    let q = "<names>{ for $j in //journal return <j>{ for $n in $j//name return $n }</j> }</names>";
    for engine in EngineKind::ALL {
        let r = db.query("docs", q, engine).unwrap();
        assert_eq!(
            r.to_xml(),
            "<names><j><name>Ana</name></j><j/></names>",
            "{engine} must construct the empty <j/>"
        );
    }
}

/// Example 5: the if/some query returns all names for journals that
/// contain text.
#[test]
fn example5_semantics() {
    let db = Database::in_memory();
    db.load_document("fig2", FIGURE2).unwrap();
    let q = "<names>{ for $j in /journal return \
             if (some $t in $j//text() satisfies true()) \
             then for $n in $j//name return $n else () }</names>";
    for engine in EngineKind::ALL {
        let r = db.query("fig2", q, engine).unwrap();
        assert_eq!(
            r.to_xml(),
            "<names><name>Ana</name><name>Bob</name></names>",
            "{engine}"
        );
    }
}

/// Example 6 semantics on a document with volume-less articles.
#[test]
fn example6_semantics() {
    let db = Database::in_memory();
    db.load_document(
        "bib",
        "<dblp>\
         <article><author>A</author><volume>1</volume></article>\
         <article><author>B</author></article>\
         <article><author>C</author><author>D</author><volume>2</volume></article>\
         </dblp>",
    )
    .unwrap();
    let q = "for $x in //article return \
             if (some $v in $x/volume satisfies true()) \
             then for $y in $x//author return $y else ()";
    for engine in EngineKind::ALL {
        let r = db.query("bib", q, engine).unwrap();
        assert_eq!(
            r.to_xml(),
            "<author>A</author><author>C</author><author>D</author>",
            "{engine}"
        );
    }
}
