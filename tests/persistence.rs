//! Durability: databases survive close/reopen; documents, indexes,
//! statistics and catalogs all come back.

use xmldb_core::{Database, EngineKind};
use xmldb_storage::EnvConfig;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("saardb-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn full_database_reopen_roundtrip() {
    let dir = temp_dir("roundtrip");
    let query = "<names>{ for $j in //journal return for $n in $j//name return $n }</names>";
    let expected;
    {
        let db = Database::open_dir(&dir, EnvConfig::default()).unwrap();
        db.load_document(
            "lib",
            "<lib><journal><name>Ana</name></journal><journal><name>Bob</name></journal></lib>",
        )
        .unwrap();
        expected = db
            .query("lib", query, EngineKind::M4CostBased)
            .unwrap()
            .to_xml();
        db.flush().unwrap();
    }
    {
        let db = Database::open_dir(&dir, EnvConfig::default()).unwrap();
        assert_eq!(db.documents().unwrap(), vec!["lib".to_string()]);
        // Every engine still answers identically after reopen.
        for engine in xmldb_core::EngineKind::ALL {
            let got = db.query("lib", query, engine).unwrap().to_xml();
            assert_eq!(got, expected, "{engine} after reopen");
        }
        // Statistics were persisted, not recomputed.
        let store = db.store("lib").unwrap();
        assert_eq!(store.stats().label_count("name"), 2);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn multiple_documents_coexist_on_disk() {
    let dir = temp_dir("multi");
    {
        let db = Database::open_dir(&dir, EnvConfig::default()).unwrap();
        db.load_document("a", "<x><y>1</y></x>").unwrap();
        db.load_document("b", "<x><y>2</y></x>").unwrap();
        db.flush().unwrap();
    }
    {
        let db = Database::open_dir(&dir, EnvConfig::default()).unwrap();
        let ra = db.query("a", "//y", EngineKind::M2Storage).unwrap();
        let rb = db.query("b", "//y", EngineKind::M2Storage).unwrap();
        assert_eq!(ra.to_xml(), "<y>1</y>");
        assert_eq!(rb.to_xml(), "<y>2</y>");
        // Drop one; the other survives.
        db.drop_document("a").unwrap();
        assert!(!db.has_document("a"));
        assert!(db.has_document("b"));
    }
    {
        let db = Database::open_dir(&dir, EnvConfig::default()).unwrap();
        assert!(!db.has_document("a"));
        assert_eq!(
            db.query("b", "//y", EngineKind::M4CostBased)
                .unwrap()
                .to_xml(),
            "<y>2</y>"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn tiny_buffer_pool_still_correct() {
    // A pool far smaller than the data forces steady eviction — the 20 MB
    // efficiency-test wall, scaled down. Answers must not change.
    let dir = temp_dir("smallpool");
    let xml = xmldb_datagen::generate_dblp(&xmldb_datagen::DblpConfig::scaled(0.2));
    {
        let db = Database::open_dir(
            &dir,
            EnvConfig {
                page_size: 4096,
                pool_bytes: 16 * 4096,
            },
        )
        .unwrap();
        db.load_document("dblp", &xml).unwrap();
        db.flush().unwrap();
    }
    let db_small = Database::open_dir(
        &dir,
        EnvConfig {
            page_size: 4096,
            pool_bytes: 16 * 4096,
        },
    )
    .unwrap();
    let db_big = Database::in_memory();
    db_big.load_document("dblp", &xml).unwrap();
    let q = "for $x in //article return \
             if (some $v in $x/volume satisfies true()) \
             then for $y in $x//author return $y else ()";
    let small = db_small.query("dblp", q, EngineKind::M4CostBased).unwrap();
    let big = db_big.query("dblp", q, EngineKind::M4CostBased).unwrap();
    assert_eq!(small, big);
    // And the small pool really did evict.
    let io = db_small.env().io_stats();
    assert!(io.physical_reads > 0, "expected physical I/O, got {io:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn load_from_file_path() {
    let dir = temp_dir("loadfile");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("doc.xml");
    std::fs::write(&path, "<r><item>from disk</item></r>").unwrap();
    let db = Database::in_memory();
    db.load_document_from_path("disk", &path).unwrap();
    assert_eq!(
        db.query("disk", "//item", EngineKind::M1InMemory)
            .unwrap()
            .to_xml(),
        "<item>from disk</item>"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
