//! Table-driven XQ semantics: tricky (document, query, expected) cases,
//! each checked on **every** engine. These pin behaviours the denotational
//! semantics implies but that are easy to break in an optimizer: document
//! order across axes, duplicate multiplicity of nested loops, constructor
//! scoping, condition short-circuiting, and whitespace/text handling.

use xmldb_core::{Database, EngineKind};

struct Case {
    name: &'static str,
    doc: &'static str,
    query: &'static str,
    expected: &'static str,
}

const CASES: &[Case] = &[
    Case {
        name: "empty-query",
        doc: "<a/>",
        query: "()",
        expected: "",
    },
    Case {
        name: "root-element",
        doc: "<a><b/></a>",
        query: "/*",
        expected: "<a><b/></a>",
    },
    Case {
        name: "child-vs-descendant",
        doc: "<a><b><c/></b><c/></a>",
        query: "<r>{ /a/c }</r>",
        expected: "<r><c/></r>",
    },
    Case {
        name: "descendant-finds-nested",
        doc: "<a><b><c>1</c></b><c>2</c></a>",
        query: "<r>{ for $c in //c return $c }</r>",
        expected: "<r><c>1</c><c>2</c></r>",
    },
    Case {
        name: "document-order-mixed-depths",
        doc: "<a><x>1</x><b><x>2</x></b><x>3</x></a>",
        query: "for $x in //x return $x",
        expected: "<x>1</x><x>2</x><x>3</x>",
    },
    Case {
        name: "nested-for-multiplicity",
        // Two outer bindings × the same inner nodes: output repeats.
        doc: "<a><b/><b/><c>x</c></a>",
        query: "for $b in /a/b return for $c in /a/c return $c",
        expected: "<c>x</c><c>x</c>",
    },
    Case {
        name: "self-nested-descendant",
        // //b under a b: the outer loop sees both b's; the inner only the
        // nested one (descendant excludes self).
        doc: "<a><b><b>deep</b></b></a>",
        query: "for $outer in //b return <hit>{ for $inner in $outer//b return $inner }</hit>",
        expected: "<hit><b>deep</b></hit><hit/>",
    },
    Case {
        name: "star-is-elements-only",
        doc: "<a>text<b/>more</a>",
        query: "<r>{ for $x in /a/* return $x }</r>",
        expected: "<r><b/></r>",
    },
    Case {
        name: "text-step",
        doc: "<a>one<b>two</b>three</a>",
        query: "<r>{ /a/text() }</r>",
        expected: "<r>onethree</r>",
    },
    Case {
        name: "descendant-text",
        doc: "<a>one<b>two</b>three</a>",
        query: "<r>{ for $t in /a//text() return $t }</r>",
        expected: "<r>onetwothree</r>",
    },
    Case {
        name: "constructor-copies-subtree",
        doc: "<a><b><c>x</c></b></a>",
        query: "<wrap>{ /a/b }</wrap>",
        expected: "<wrap><b><c>x</c></b></wrap>",
    },
    Case {
        name: "empty-constructor-per-binding",
        // The strict-merging counterexample shape.
        doc: "<lib><j><n>1</n></j><j/></lib>",
        query: "for $j in //j return <out>{ for $n in $j/n return $n }</out>",
        expected: "<out><n>1</n></out><out/>",
    },
    Case {
        name: "if-true-condition",
        doc: "<a><b/></a>",
        query: "if (true()) then <yes/> else <no/>",
        expected: "<yes/>",
    },
    Case {
        name: "if-not-true",
        doc: "<a/>",
        query: "if (not(true())) then <yes/> else <no/>",
        expected: "<no/>",
    },
    Case {
        name: "some-exists",
        doc: "<a><b/><c/></a>",
        query: "if (some $x in /a/c satisfies true()) then <found/> else ()",
        expected: "<found/>",
    },
    Case {
        name: "some-empty-axis-is-false",
        doc: "<a><b/></a>",
        query: "if (some $x in /a/zzz satisfies true()) then <found/> else <none/>",
        expected: "<none/>",
    },
    Case {
        name: "eq-const-true",
        doc: "<a><n>Ana</n><n>Bob</n></a>",
        query: "for $t in //n/text() return if ($t = \"Ana\") then <ana/> else ()",
        expected: "<ana/>",
    },
    Case {
        name: "eq-const-char-exact",
        doc: "<a><n>Ana</n><n>Ana </n></a>",
        query: "for $t in //n/text() return if ($t = \"Ana\") then <hit/> else ()",
        expected: "<hit/>",
    },
    Case {
        name: "eq-var-pairs",
        doc: "<a><x>k</x><y>k</y><y>other</y></a>",
        query: "for $x in //x/text() return for $y in //y/text() return \
                if ($x = $y) then <pair/> else ()",
        expected: "<pair/>",
    },
    Case {
        name: "and-short-circuit-structure",
        doc: "<a><b>yes</b></a>",
        query: "if ((some $t in //b/text() satisfies $t = \"yes\") and true()) \
                then <ok/> else ()",
        expected: "<ok/>",
    },
    Case {
        name: "or-right-only",
        doc: "<a><b>x</b></a>",
        query: "for $t in //b/text() return \
                if ($t = \"nope\" or $t = \"x\") then <ok/> else ()",
        expected: "<ok/>",
    },
    Case {
        name: "nested-some",
        doc: "<lib><j><a><t>k</t></a></j><j><a/></j></lib>",
        query: "for $j in //j return \
                if (some $a in $j/a satisfies some $t in $a/t satisfies true()) \
                then <deep/> else <shallow/>",
        expected: "<deep/><shallow/>",
    },
    Case {
        name: "sequence-order",
        doc: "<a><b>1</b></a>",
        query: "(<first/>, //b, <last/>)",
        expected: "<first/><b>1</b><last/>",
    },
    Case {
        name: "literal-text-in-constructor",
        doc: "<a/>",
        // `{ }` is the empty enclosed expression and contributes nothing.
        query: "<msg>hello { } world</msg>",
        expected: "<msg>hello  world</msg>",
    },
    Case {
        name: "variable-rebinding-shadow",
        doc: "<a><b><c>x</c></b></a>",
        query: "for $v in /a/b return for $v in $v/c return $v",
        expected: "<c>x</c>",
    },
    Case {
        name: "multi-step-path-order",
        doc: "<a><b><c>1</c></b><b><c>2</c><c>3</c></b></a>",
        query: "/a/b/c",
        expected: "<c>1</c><c>2</c><c>3</c>",
    },
    Case {
        name: "descendant-duplicates-kept",
        // Bag semantics of the multi-step descendant desugar: nested b's
        // produce the same c twice via different intermediate bindings.
        doc: "<a><b><b><c>x</c></b></b></a>",
        query: "for $c in //b//c return $c",
        expected: "<c>x</c><c>x</c>",
    },
    Case {
        name: "root-var-output",
        doc: "<a>t</a>",
        query: "<copy>{ $root }</copy>",
        expected: "<copy><a>t</a></copy>",
    },
    Case {
        name: "deep-single-spine",
        doc: "<a><b><c><d><e>bottom</e></d></c></b></a>",
        query: "//e",
        expected: "<e>bottom</e>",
    },
    Case {
        name: "ghost-everything",
        doc: "<a><b/></a>",
        query: "<r>{ for $x in //ghost return <never/> }</r>",
        expected: "<r/>",
    },
    Case {
        name: "entities-roundtrip-through-engines",
        doc: "<a><n>x &amp; y &lt; z</n></a>",
        query: "/a/n/text()",
        expected: "x &amp; y &lt; z",
    },
    Case {
        name: "entity-in-comparison",
        doc: "<a><n>x &amp; y</n></a>",
        query: "for $t in //n/text() return if ($t = \"x & y\") then <hit/> else ()",
        expected: "<hit/>",
    },
    Case {
        name: "cdata-content",
        doc: "<a><![CDATA[<raw & text>]]></a>",
        query: "/a/text()",
        expected: "&lt;raw &amp; text&gt;",
    },
    Case {
        name: "condition-on-outer-var-in-inner-loop",
        doc: "<lib><j><v/><n>1</n></j><j><n>2</n></j></lib>",
        query: "for $j in //j return for $n in $j/n return \
                if (some $v in $j/v satisfies true()) then $n else ()",
        expected: "<n>1</n>",
    },
];

#[test]
fn semantics_table_all_engines() {
    for case in CASES {
        let db = Database::in_memory();
        db.load_document("doc", case.doc)
            .unwrap_or_else(|e| panic!("{}: bad doc: {e}", case.name));
        for engine in EngineKind::ALL {
            let got = db
                .query("doc", case.query, engine)
                .unwrap_or_else(|e| panic!("{} failed on {engine}: {e}", case.name));
            assert_eq!(
                got.to_xml(),
                case.expected,
                "{} on {engine} (query: {})",
                case.name,
                case.query
            );
        }
    }
}

/// Whole-document replacement is the supported update model.
#[test]
fn replace_document_updates_answers() {
    let db = Database::in_memory();
    db.load_document("doc", "<a><n>old</n></a>").unwrap();
    assert_eq!(
        db.query("doc", "//n", EngineKind::M4CostBased)
            .unwrap()
            .to_xml(),
        "<n>old</n>"
    );
    db.replace_document("doc", "<a><n>new</n><n>two</n></a>")
        .unwrap();
    for engine in EngineKind::ALL {
        assert_eq!(
            db.query("doc", "//n", engine).unwrap().to_xml(),
            "<n>new</n><n>two</n>",
            "{engine} sees stale data after replace"
        );
    }
    // Statistics were refreshed too.
    assert_eq!(db.store("doc").unwrap().stats().label_count("n"), 2);
}
