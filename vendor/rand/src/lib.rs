//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset this workspace uses: `rngs::StdRng` (and `SmallRng`),
//! `SeedableRng::seed_from_u64`, and the `Rng` methods `gen_range` /
//! `gen_bool` / `gen`. `StdRng` is xoshiro256++ seeded through splitmix64 —
//! statistically solid for data generation, **not** cryptographic (the real
//! `StdRng` is ChaCha12; nothing here relies on that).

// Stand-in code: keep the real workspace lint-clean without polishing stubs.
#![allow(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A source of random u64s plus the derived sampling methods.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform sample from a (half-open or inclusive) integer range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 uniform mantissa bits, same construction as rand's `f64` sampling.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// A uniformly random value of a supported primitive type.
    fn gen<T: Fill>(&mut self) -> T
    where
        Self: Sized,
    {
        T::fill(self)
    }
}

/// Types `Rng::gen` can produce.
pub trait Fill {
    fn fill<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_fill_int {
    ($($t:ty),*) => {$(
        impl Fill for $t {
            fn fill<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_fill_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Fill for bool {
    fn fill<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types `gen_range` can sample uniformly. The blanket
/// [`SampleRange`] impls below mirror rand's shape (one generic impl per
/// range type) so integer-literal ranges infer exactly as with real rand.
pub trait SampleUniform: Copy {
    fn to_i128(self) -> i128;
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "gen_range on empty range");
        let offset = (rng.next_u64() as u128) % ((hi - lo) as u128);
        T::from_i128(lo + offset as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "gen_range on empty range");
        let offset = (rng.next_u64() as u128) % ((hi - lo) as u128 + 1);
        T::from_i128(lo + offset as i128)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256++ core shared by both rng types.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Xoshiro256 {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state is a fixed point; splitmix64 of any seed avoids it,
        // but guard anyway.
        if s == [0; 4] {
            s[0] = 1;
        }
        Xoshiro256 { s }
    }

    fn step(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

pub mod rngs {
    use super::*;

    /// Stand-in for rand's `StdRng` (see crate docs).
    #[derive(Debug, Clone)]
    pub struct StdRng(pub(crate) Xoshiro256);

    /// Stand-in for rand's `SmallRng`; same core as [`StdRng`] here.
    #[derive(Debug, Clone)]
    pub struct SmallRng(pub(crate) Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_u64(seed))
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(seed))
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.step()
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.step()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..=4);
            assert!(w <= 4);
            let s: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rates() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "hits = {hits}");
    }
}
