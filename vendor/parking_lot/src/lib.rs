//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()`, `read()` and `write()` return guards directly. A poisoned
//! std lock (a panic while held) is recovered by taking the inner guard —
//! parking_lot has no poisoning, so neither does this facade.

// Stand-in code: keep the real workspace lint-clean without polishing stubs.
#![allow(clippy::all)]

use std::fmt;
use std::sync::{self, LockResult};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

fn recover<G>(result: LockResult<G>) -> G {
    match result {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A mutual exclusion primitive (non-poisoning facade over `std::sync::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        recover(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        recover(self.0.lock())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        recover(self.0.get_mut())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock (non-poisoning facade over `std::sync::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        recover(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        recover(self.0.read())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        recover(self.0.write())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        recover(self.0.get_mut())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a, *b);
        }
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
