//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the bench targets use — groups, `iter`,
//! `bench_with_input`, throughput annotation — with a plain wall-clock
//! measurement loop and stdout reporting. No statistics, no HTML reports.
//!
//! Under `cargo test` each benchmark body runs exactly once, as a smoke
//! test. Under `cargo bench` (detected via the `--bench` flag cargo passes)
//! a small timed loop runs and the mean iteration time is printed.

// Stand-in code: keep the real workspace lint-clean without polishing stubs.
#![allow(clippy::all)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's traditional name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Whether we're running as a smoke test (`cargo test`) rather than a real
/// benchmark run. Cargo passes `--bench` to `harness = false` targets only
/// under `cargo bench`; anything else (notably `cargo test`, which passes
/// `--test` or nothing) gets the single-iteration smoke mode.
fn test_mode() -> bool {
    !std::env::args().any(|a| a == "--bench")
}

/// Throughput annotation; recorded and echoed, not analyzed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.parameter {
            Some(p) if !self.function.is_empty() => write!(f, "{}/{}", self.function, p),
            Some(p) => f.write_str(p),
            None => f.write_str(&self.function),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// Passed to benchmark closures; `iter` runs the measured body.
pub struct Bencher {
    /// Mean wall time per iteration, filled in by `iter`.
    elapsed: Duration,
    iters: u64,
    measurement_time: Duration,
}

impl Bencher {
    /// Runs `body` and records its mean wall-clock time. In test mode the
    /// body runs exactly once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        if test_mode() {
            black_box(body());
            self.iters = 1;
            self.elapsed = Duration::ZERO;
            return;
        }
        // One warm-up call, then loop until the measurement budget is spent
        // (bounded to keep worst-case runs sane).
        black_box(body());
        let budget = self.measurement_time;
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget && iters < 1_000_000 {
            black_box(body());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = start.elapsed() / self.iters as u32;
    }
}

/// Group-level configuration + reporting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.measurement_time, self.throughput, |b| f(b));
        let _ = &self.criterion;
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.measurement_time, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_one(
    name: &str,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
        measurement_time,
    };
    f(&mut b);
    if test_mode() {
        println!("bench {name}: ok (smoke, 1 iter)");
        return;
    }
    let per_iter = b.elapsed;
    match throughput {
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) if !per_iter.is_zero() => {
            let mib_s = n as f64 / per_iter.as_secs_f64() / (1024.0 * 1024.0);
            println!(
                "bench {name}: {per_iter:?}/iter ({} iters, {mib_s:.1} MiB/s)",
                b.iters
            );
        }
        Some(Throughput::Elements(n)) if !per_iter.is_zero() => {
            let elems_s = n as f64 / per_iter.as_secs_f64();
            println!(
                "bench {name}: {per_iter:?}/iter ({} iters, {elems_s:.0} elem/s)",
                b.iters
            );
        }
        _ => println!("bench {name}: {per_iter:?}/iter ({} iters)", b.iters),
    }
}

/// The top-level harness handle.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let measurement_time = self.measurement_time;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            measurement_time,
            throughput: None,
        }
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let t = self.measurement_time;
        run_one(name, t, None, |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let t = self.measurement_time;
        run_one(&id.to_string(), t, None, |b| f(b, input));
        self
    }

    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_smoke_runs_once_in_test_mode() {
        // Unit tests run with the libtest harness, which doesn't pass
        // --test; emulate bench-mode with a tiny budget instead.
        let mut calls = 0u64;
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            measurement_time: Duration::from_millis(5),
        };
        b.iter(|| calls += 1);
        assert!(calls >= 1);
        assert!(b.iters >= 1);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }
}
