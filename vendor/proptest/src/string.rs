//! Regex-lite string generation: the subset of regex syntax the
//! workspace's string strategies use.
//!
//! Supported: literal chars, character classes `[a-z0-9_]` (ranges and
//! singletons), the printable-character escape `\PC`, the escapes
//! `\d`/`\w`/`\s`, and the quantifiers `{n}`, `{m,n}`, `?`, `*`, `+`.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum CharSet {
    /// Inclusive char ranges.
    Ranges(Vec<(char, char)>),
    /// Any printable (non-control) character — regex `\PC`. Mostly ASCII,
    /// with an occasional multibyte character to exercise UTF-8 paths.
    Printable,
}

#[derive(Debug, Clone)]
struct Atom {
    set: CharSet,
    min: usize,
    max: usize,
}

/// A handful of printable non-ASCII characters mixed into `\PC` output.
const EXOTIC: &[char] = &['é', 'ß', 'λ', 'Ж', '中', '🙂', '†', '±'];

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let inner: Vec<char> = chars[i + 1..i + close].to_vec();
                i += close + 1;
                CharSet::Ranges(parse_class(&inner, pattern))
            }
            '\\' => {
                let (set, consumed) = parse_escape(&chars[i + 1..], pattern);
                i += 1 + consumed;
                set
            }
            '.' => {
                i += 1;
                CharSet::Printable
            }
            c => {
                i += 1;
                CharSet::Ranges(vec![(c, c)])
            }
        };
        let (min, max) = parse_quantifier(&chars, &mut i, pattern);
        atoms.push(Atom { set, min, max });
    }
    atoms
}

fn parse_class(inner: &[char], pattern: &str) -> Vec<(char, char)> {
    assert!(!inner.is_empty(), "empty char class in pattern {pattern:?}");
    let mut ranges = Vec::new();
    let mut j = 0;
    while j < inner.len() {
        if j + 2 < inner.len() && inner[j + 1] == '-' {
            assert!(
                inner[j] <= inner[j + 2],
                "reversed range in pattern {pattern:?}"
            );
            ranges.push((inner[j], inner[j + 2]));
            j += 3;
        } else {
            ranges.push((inner[j], inner[j]));
            j += 1;
        }
    }
    ranges
}

/// Parses the escape after a `\`; returns the set and chars consumed.
fn parse_escape(rest: &[char], pattern: &str) -> (CharSet, usize) {
    match rest {
        ['P', 'C', ..] | ['p', 'C', ..] => (CharSet::Printable, 2),
        ['d', ..] => (CharSet::Ranges(vec![('0', '9')]), 1),
        ['w', ..] => (
            CharSet::Ranges(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
            1,
        ),
        ['s', ..] => (CharSet::Ranges(vec![(' ', ' '), ('\t', '\t')]), 1),
        [c, ..] => (CharSet::Ranges(vec![(*c, *c)]), 1),
        [] => panic!("dangling backslash in pattern {pattern:?}"),
    }
}

fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    match chars.get(*i) {
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let body: String = chars[*i + 1..*i + close].iter().collect();
            *i += close + 1;
            let parse_n = |s: &str| {
                s.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("bad repetition {body:?} in {pattern:?}"))
            };
            match body.split_once(',') {
                Some((lo, hi)) => (parse_n(lo), parse_n(hi)),
                None => {
                    let n = parse_n(&body);
                    (n, n)
                }
            }
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('*') => {
            *i += 1;
            (0, 8)
        }
        Some('+') => {
            *i += 1;
            (1, 8)
        }
        _ => (1, 1),
    }
}

fn sample_char(set: &CharSet, rng: &mut TestRng) -> char {
    match set {
        CharSet::Printable => {
            // 1-in-16 exotic; otherwise printable ASCII (0x20..=0x7e).
            if rng.below(16) == 0 {
                EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
            } else {
                char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap()
            }
        }
        CharSet::Ranges(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| (*hi as u64 - *lo as u64) + 1)
                .sum();
            let mut pick = rng.below(total);
            for (lo, hi) in ranges {
                let size = *hi as u64 - *lo as u64 + 1;
                if pick < size {
                    // Surrogate gaps never occur in the workspace's classes.
                    return char::from_u32(*lo as u32 + pick as u32)
                        .expect("char class crossed a surrogate gap");
                }
                pick -= size;
            }
            unreachable!("class pick out of range")
        }
    }
}

/// Generates a string matching `pattern` (within the supported subset).
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for atom in parse(pattern) {
        let count = if atom.min == atom.max {
            atom.min
        } else {
            rng.range(atom.min, atom.max + 1)
        };
        for _ in 0..count {
            out.push(sample_char(&atom.set, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(11)
    }

    #[test]
    fn class_with_repetition() {
        let mut rng = rng();
        for _ in 0..500 {
            let s = generate("[a-d]{1,3}", &mut rng);
            assert!((1..=3).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='d').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn concatenated_classes() {
        let mut rng = rng();
        for _ in 0..500 {
            let s = generate("[a-z][a-z0-9]{0,6}", &mut rng);
            let mut chars = s.chars();
            let first = chars.next().unwrap();
            assert!(first.is_ascii_lowercase());
            assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            assert!(s.chars().count() <= 7);
        }
    }

    #[test]
    fn printable_space_to_tilde() {
        let mut rng = rng();
        for _ in 0..500 {
            let s = generate("[ -~]{1,12}", &mut rng);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn pc_never_generates_control_chars() {
        let mut rng = rng();
        let mut saw_exotic = false;
        for _ in 0..2000 {
            let s = generate("\\PC{0,40}", &mut rng);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
            saw_exotic |= s.chars().any(|c| !c.is_ascii());
        }
        assert!(saw_exotic, "\\PC should occasionally emit non-ASCII");
    }

    #[test]
    fn fixed_count_and_literals() {
        let mut rng = rng();
        let s = generate("ab[0-9]{3}", &mut rng);
        assert_eq!(s.len(), 5);
        assert!(s.starts_with("ab"));
    }
}
