//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_filter` / `prop_recursive` / `boxed`, range and tuple strategies,
//! regex-lite string strategies, `prop::collection` / `prop::sample`, and
//! the `proptest!` / `prop_oneof!` / `prop_assert*` macros.
//!
//! Differences from upstream (see `vendor/README.md`):
//! - generation is deterministic per test (override with `PROPTEST_SEED`);
//! - no shrinking — failures print the fully generated inputs;
//! - `.proptest-regressions` files are not replayed.

// Stand-in code: keep the real workspace lint-clean without polishing stubs.
#![allow(clippy::all)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The `prop` namespace re-exported by the prelude (`prop::collection::vec`
/// and friends).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {{
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// `prop_assert!` for equality, printing both operands on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "{}\n  both: `{:?}`",
            format!($($fmt)+),
            left
        );
    }};
}

/// Weighted-choice union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests. Mirrors proptest's macro: an optional
/// `#![proptest_config(..)]` inner attribute followed by `#[test]`
/// functions whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)*
                let inputs = format!(
                    concat!($("\n  ", stringify!($arg), " = {:?}",)*),
                    $(&$arg,)*
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} of {} failed: {}\ninputs:{}",
                            _case + 1,
                            config.cases,
                            msg,
                            inputs
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}
