//! The `Strategy` trait and its combinators.

use crate::string;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply produces a value from the deterministic [`TestRng`].
pub trait Strategy {
    type Value: Debug;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<W, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        W: Debug,
        F: Fn(Self::Value) -> W,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy
    /// `f` builds out of it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Regenerates until `pred` accepts (bounded; panics if the filter is
    /// pathologically selective).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Recursive strategies: `self` is the leaf case, `recurse` builds a
    /// branch case from a strategy for the inner level. Implemented by
    /// unrolling `depth` levels, branching with probability 2/3 per level,
    /// which respects the depth bound exactly and approximates upstream's
    /// size-targeted decay.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(current).boxed();
            current = Union::weighted(vec![(1, leaf.clone()), (2, branch)]).boxed();
        }
        current
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe generation, used behind [`BoxedStrategy`].
trait ValueSource<T> {
    fn value_from(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ValueSource<S::Value> for S {
    fn value_from(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn ValueSource<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.value_from(rng)
    }
}

impl<T> Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, W, F> Strategy for Map<S, F>
where
    S: Strategy,
    W: Debug,
    F: Fn(S::Value) -> W,
{
    type Value = W;

    fn new_value(&self, rng: &mut TestRng) -> W {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let candidate = self.inner.new_value(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter rejected 10000 consecutive values: {}",
            self.reason
        );
    }
}

/// Weighted choice among strategies of a common value type
/// (what `prop_oneof!` builds).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T: Debug> Union<T> {
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! of zero strategies");
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! with all-zero weights");
        Union { arms, total }
    }

    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        Union::weighted(arms.into_iter().map(|s| (1, s)).collect())
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as u64) as u32;
        for (weight, strat) in &self.arms {
            if pick < *weight {
                return strat.new_value(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick out of range")
    }
}

// --- primitive strategies ----------------------------------------------------

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy on empty range");
                let span = (hi as i128 - lo as i128) as u64;
                // span + 1 cannot overflow u64 for these types' full ranges
                // only when $t is u64/i128-sized and covers everything; the
                // workspace only uses small ranges, but saturate to be safe.
                (lo as i128 + rng.below(span.saturating_add(1).max(1)) as i128) as $t
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Regex-lite string strategy: `"[a-z]{1,4}"` and friends.
impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        string::generate(self, rng)
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Marker used by `any::<T>()`; see [`crate::arbitrary`].
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn map_filter_flat_map_compose() {
        let mut rng = TestRng::from_seed(1);
        let s = (0u32..10)
            .prop_map(|n| n * 2)
            .prop_filter("even only", |n| n % 2 == 0)
            .prop_flat_map(|n| (Just(n), 0u32..(n + 1)));
        for _ in 0..200 {
            let (n, m) = s.new_value(&mut rng);
            assert!(n % 2 == 0 && n < 20 && m <= n);
        }
    }

    #[test]
    fn union_respects_weights() {
        let mut rng = TestRng::from_seed(2);
        let u = Union::weighted(vec![(1, Just(0u8).boxed()), (9, Just(1u8).boxed())]);
        let ones = (0..1000).filter(|_| u.new_value(&mut rng) == 1).count();
        assert!(ones > 800, "ones = {ones}");
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf,
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = Just(T::Leaf).prop_recursive(4, 32, 3, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(T::Node)
        });
        let mut rng = TestRng::from_seed(3);
        for _ in 0..500 {
            assert!(depth(&strat.new_value(&mut rng)) <= 4);
        }
    }

    #[test]
    fn ranges_inclusive_and_exclusive() {
        let mut rng = TestRng::from_seed(4);
        for _ in 0..1000 {
            assert!((3usize..7).new_value(&mut rng) < 7);
            let v = (1usize..=3).new_value(&mut rng);
            assert!((1..=3).contains(&v));
            let n = (-4i32..4).new_value(&mut rng);
            assert!((-4..4).contains(&n));
        }
    }
}
