//! Test configuration, case errors, and the deterministic RNG.

use std::fmt;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold; the message explains how.
    Fail(String),
    /// The inputs were rejected (e.g. by a filter); not a failure.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic generator driving all strategies (splitmix64).
///
/// Each test seeds from a hash of its module path + name, so runs are
/// reproducible and independent of test execution order. `PROPTEST_SEED`
/// perturbs every test's stream at once for exploratory runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_test(test_path: &str) -> TestRng {
        // FNV-1a over the path, mixed with the optional env seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let extra = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .unwrap_or(0);
        TestRng {
            state: h ^ extra.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounding (Lemire); bias is negligible for test gen.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi} in strategy");
        lo + self.below((hi - lo) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("mod::t1");
        let mut b = TestRng::for_test("mod::t1");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("mod::t2");
        // Overwhelmingly likely to differ.
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_in_bounds() {
        let mut rng = TestRng::from_seed(5);
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
            let v = rng.range(3, 9);
            assert!((3..9).contains(&v));
        }
    }
}
