//! Sampling strategies over fixed collections.

use crate::collection::SizeRange;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;

/// An order-preserving random subsequence of `items`, with a length drawn
/// from `size` (clamped to the number of items).
pub fn subsequence<T: Clone + Debug>(items: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
    Subsequence {
        items,
        size: size.into(),
    }
}

/// See [`subsequence`].
#[derive(Debug, Clone)]
pub struct Subsequence<T> {
    items: Vec<T>,
    size: SizeRange,
}

impl<T: Clone + Debug> Strategy for Subsequence<T> {
    type Value = Vec<T>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<T> {
        let want = if self.items.is_empty() {
            0
        } else {
            self.size.clamp_hi(self.items.len()).sample(rng)
        };
        // Partial Fisher-Yates over the index set, then restore order.
        let mut indices: Vec<usize> = (0..self.items.len()).collect();
        for slot in 0..want {
            let pick = rng.range(slot, indices.len());
            indices.swap(slot, pick);
        }
        let mut chosen = indices[..want].to_vec();
        chosen.sort_unstable();
        chosen.into_iter().map(|i| self.items[i].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsequence_preserves_order_and_bounds() {
        let mut rng = TestRng::from_seed(31);
        let s = subsequence(vec![1, 2, 3, 4, 5], 0..=5);
        for _ in 0..500 {
            let v = s.new_value(&mut rng);
            assert!(v.len() <= 5);
            assert!(v.windows(2).all(|w| w[0] < w[1]), "{v:?}");
        }
    }

    #[test]
    fn subsequence_of_empty() {
        let mut rng = TestRng::from_seed(32);
        let s = subsequence(Vec::<u8>::new(), 0..=0);
        assert!(s.new_value(&mut rng).is_empty());
    }
}
