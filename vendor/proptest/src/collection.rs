//! Collection strategies: `vec` and `btree_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeMap;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// An inclusive size bound for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    pub(crate) fn sample(&self, rng: &mut TestRng) -> usize {
        if self.lo >= self.hi {
            self.lo
        } else {
            rng.range(self.lo, self.hi + 1)
        }
    }

    pub(crate) fn clamp_hi(&self, hi: usize) -> SizeRange {
        SizeRange {
            lo: self.lo.min(hi),
            hi: self.hi.min(hi),
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

/// Vectors of values from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Maps with keys from `keys` and values from `values`. Key collisions
/// may make the map smaller than the drawn size (as upstream allows).
pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        keys,
        values,
        size: size.into(),
    }
}

/// See [`btree_map`].
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn new_value(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let len = self.size.sample(rng);
        let mut map = BTreeMap::new();
        for _ in 0..len {
            map.insert(self.keys.new_value(rng), self.values.new_value(rng));
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = TestRng::from_seed(21);
        let s = vec(0u8..10, 2..5);
        for _ in 0..500 {
            let v = s.new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn btree_map_bounded() {
        let mut rng = TestRng::from_seed(22);
        let s = btree_map(0u8..4, 0u32..100, 0..10);
        for _ in 0..200 {
            let m = s.new_value(&mut rng);
            assert!(m.len() <= 9);
            assert!(m.keys().all(|&k| k < 4));
        }
    }
}
