//! `any::<T>()` for primitive types.

use crate::strategy::Any;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for () {
    fn arbitrary(_rng: &mut TestRng) -> Self {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    #[test]
    fn any_u8_covers_range() {
        let mut rng = TestRng::from_seed(41);
        let strat = any::<u8>();
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[strat.new_value(&mut rng) as usize] = true;
        }
        assert!(seen.iter().filter(|&&b| b).count() > 250);
    }
}
